//! Quickstart: distributed `(k,t)`-median over noisy data.
//!
//! Generates a Gaussian mixture with planted outliers, splits it across
//! sites, runs the 2-round protocol of Algorithm 1, and reports measured
//! communication plus solution quality against the ground truth.
//!
//! Run with: `cargo run --release -p dpc --example quickstart`

use dpc::prelude::*;

fn main() {
    let k = 5;
    let t = 25;
    let sites = 8;

    println!("== distributed (k,t)-median quickstart ==");
    println!("k = {k}, t = {t}, sites = {sites}");

    // A mixture of 5 clusters, 2000 inliers, 25 planted outliers.
    let mix = gaussian_mixture(MixtureSpec {
        clusters: k,
        inliers: 2000,
        outliers: t,
        ..Default::default()
    });
    let shards = partition(
        &mix.points,
        sites,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        42,
    );
    println!(
        "n = {} points in {} dims across {} sites",
        mix.points.len(),
        2,
        shards.len()
    );

    // 2-round distributed (k, (1+eps)t)-median (Theorem 3.6).
    let cfg = MedianConfig::new(k, t);
    let out = run_distributed_median(&shards, cfg, RunOptions::default());
    let sol = &out.output;

    println!("\n-- protocol --");
    println!("rounds:            {}", out.stats.num_rounds());
    println!("total bytes:       {}", out.stats.total_bytes());
    println!("upstream bytes:    {}", out.stats.upstream_bytes());
    println!(
        "shipped outliers:  {} (<= 3t = {})",
        sol.shipped_outliers,
        3 * t
    );
    println!(
        "site critical path: {:?}, coordinator: {:?}",
        out.stats.site_critical_path(),
        out.stats.coordinator_compute()
    );

    // Quality vs doing nothing about outliers.
    let budget = 2 * t; // (1+eps)t with eps = 1
    let (cost, excluded) = evaluate_on_full_data(&shards, &sol.centers, budget, Objective::Median);
    println!("\n-- quality --");
    println!("(k,{budget})-median cost of returned centers: {cost:.2} ({excluded} excluded)");

    // Reference: the same centers but forced to pay for every point.
    let (cost_all, _) = evaluate_on_full_data(&shards, &sol.centers, 0, Objective::Median);
    println!("same centers, no exclusions:                {cost_all:.2}");
    println!(
        "outlier robustness bought a {:.0}x cost reduction",
        cost_all / cost.max(1e-9)
    );

    // Sanity: recovered centers sit near the true ones.
    let mut worst = 0.0f64;
    for c in 0..mix.centers.len() {
        let true_c = mix.centers.point(c);
        let best = (0..sol.centers.len())
            .map(|i| dpc::metric::points::sq_dist(sol.centers.point(i), true_c).sqrt())
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best);
    }
    println!("worst distance from a true center to its recovered center: {worst:.2}");
}
