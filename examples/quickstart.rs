//! Quickstart: distributed `(k,t)`-median over noisy data, through the
//! typed experiment API.
//!
//! Generates a Gaussian mixture with planted outliers, describes the run
//! as a `Job`, validates it, executes it, and reads everything — measured
//! communication, per-round breakdown, solution quality — off the
//! returned `Artifact`.
//!
//! Run with: `cargo run --release -p dpc --example quickstart`

use dpc::prelude::*;

fn main() {
    let k = 5;
    let t = 25;
    let sites = 8;

    println!("== distributed (k,t)-median quickstart ==");
    println!("k = {k}, t = {t}, sites = {sites}");

    // A mixture of 5 clusters, 2000 inliers, 25 planted outliers.
    let mix = gaussian_mixture(MixtureSpec {
        clusters: k,
        inliers: 2000,
        outliers: t,
        ..Default::default()
    });
    let n = mix.points.len();
    println!("n = {n} points in 2 dims across {sites} sites");

    // One front door: build → validate → run. The job partitions the
    // points across the sites and drives the 2-round protocol of
    // Algorithm 1 (Theorem 3.6).
    let data = Dataset::Points(mix.points);
    let artifact = Job::median(k, t)
        .sites(sites)
        .data(data.clone())
        .validate()
        .expect("sound configuration")
        .run();

    println!("\n-- protocol --");
    println!("rounds:            {}", artifact.rounds);
    println!("total bytes:       {}", artifact.bytes);
    println!("upstream bytes:    {}", artifact.upstream_bytes());
    for (i, r) in artifact.round_stats.iter().enumerate() {
        println!(
            "round {i}: up={}B down={}B site={:.2}ms coord={:.2}ms",
            r.up_total(),
            r.down_total(),
            r.max_site_ms,
            r.coordinator_ms
        );
    }

    // The run already evaluated quality at the (1+eps)t budget; compare
    // against the same centers forced to pay for every point.
    println!("\n-- quality --");
    println!(
        "(k,{})-median cost of returned centers: {:.2}",
        artifact.budget, artifact.cost
    );
    let (cost_all, _) = artifact
        .evaluate(&data, 0, Objective::Median)
        .expect("point data");
    println!("same centers, no exclusions:                {cost_all:.2}");
    println!(
        "outlier robustness bought a {:.0}x cost reduction",
        cost_all / artifact.cost.max(1e-9)
    );

    // Sanity: recovered centers sit near the true ones.
    let mut worst = 0.0f64;
    for c in 0..mix.centers.len() {
        let true_c = mix.centers.point(c);
        let best = artifact
            .centers
            .iter()
            .map(|row| dpc::metric::points::sq_dist(row, true_c).sqrt())
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best);
    }
    println!("worst distance from a true center to its recovered center: {worst:.2}");

    // The artifact is one serde-able schema shared with the CLI/benches.
    println!("\nartifact JSON: {} bytes", artifact.to_json().len());
}
