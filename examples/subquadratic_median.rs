//! Theorem 3.10 in action: subquadratic centralized `(k,t)`-median.
//!
//! The same bicriteria guarantee as the quadratic Theorem 3.1 solver, but
//! obtained by *sequentially simulating* the distributed algorithm:
//! split into `s = n^(2/3)` pieces, solve each piece at the geometric
//! outlier grid, water-fill the budget, and solve the merged `O(sk+t)`
//! instance once. This example times both solvers across growing `n` and
//! prints the crossover.
//!
//! Run with: `cargo run --release -p dpc --example subquadratic_median`

use dpc::prelude::*;
use std::time::Instant;

fn main() {
    let k = 4;
    println!("== Theorem 3.10: subquadratic centralized (k,t)-median ==");
    println!(
        "{:>7} {:>5} {:>14} {:>14} {:>10} {:>10}",
        "n", "t", "quadratic(ms)", "subquad(ms)", "cost_q", "cost_s"
    );

    for &n in &[500usize, 1000, 2000, 4000] {
        let t = (n as f64).sqrt() as usize / 2; // within the t <= sqrt(n) regime
        let mix = gaussian_mixture(MixtureSpec {
            clusters: k,
            inliers: n,
            outliers: t,
            seed: n as u64,
            ..Default::default()
        });

        // Quadratic reference: Theorem 3.1 solver on all n points.
        let w = WeightedSet::unit(mix.points.len());
        let metric = EuclideanMetric::new(&mix.points);
        let t0 = Instant::now();
        let quad = median_bicriteria(
            &metric,
            &w,
            k,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        let quad_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Subquadratic self-simulation, through the typed Job API.
        let job = Job::subquadratic(k, t)
            .points(mix.points.clone())
            .validate()
            .expect("sound config");
        let t1 = Instant::now();
        let sub = job.run();
        let sub_ms = t1.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>7} {:>5} {:>14.1} {:>14.1} {:>10.1} {:>10.1}",
            mix.points.len(),
            t,
            quad_ms,
            sub_ms,
            quad.cost,
            sub.cost
        );
    }
    println!("\nexpect: comparable costs, and the subquadratic column growing");
    println!("like ~n^(4/3) while the quadratic column grows like ~n^2.");
}
