//! A declarative experiment matrix: `k × t × transport`, one `Sweep`.
//!
//! The paper's evaluation is a grid of comparisons; this example runs a
//! 2 × 2 × 2 corner of it in parallel and prints the shared CSV table —
//! the same output `dpc sweep median --k 4,8 --t 16,64 --transport
//! channel,tcp data.csv` produces from a file.
//!
//! Run with: `cargo run --release -p dpc --example sweep_grid`

use dpc::prelude::*;

fn main() {
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 8,
        inliers: 1200,
        outliers: 64,
        ..Default::default()
    });

    // The base job carries everything the axes don't sweep: data, sites,
    // seed. Axis values override k/t/transport cell by cell.
    let base = Job::median(0, 0).sites(6).seed(17).points(mix.points);
    let sweep = Sweep::grid(base)
        .k(&[4, 8])
        .t(&[16, 64])
        .transports(&[TransportKind::Channel, TransportKind::Tcp])
        .parallelism(4);
    println!("sweeping {} cells ({} workers max)…\n", sweep.cells(), 4);
    let artifacts = sweep.run().expect("every cell validates");

    // One schema everywhere: the CSV table for spreadsheets…
    print!("{}", dpc::api::csv_table(&artifacts));

    // …and the invariant the runtime guarantees: byte accounting is
    // transport-independent, so channel/tcp pairs agree exactly.
    for pair in artifacts.chunks(2) {
        assert_eq!(
            pair[0].bytes, pair[1].bytes,
            "transport changed the bytes on the wire?!"
        );
    }
    println!("\nchannel/tcp cells are byte-identical, as charged.");
}
