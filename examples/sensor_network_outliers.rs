//! Scenario: aggregating sensor readings across regional hubs.
//!
//! A fleet of sensors reports positions/feature vectors to `s` regional
//! hubs; a fraction of sensors are faulty and report garbage. The operator
//! wants `k` representative "profile centers" for fleet monitoring —
//! `(k,t)`-center with the faulty readings disregarded — while paying as
//! little hub→coordinator bandwidth as possible.
//!
//! Compares three protocols on identical data:
//!   * Algorithm 2 (2 rounds, `O((sk+t)B)` — this paper),
//!   * the 1-round Malkomes-style baseline (`O((sk+st)B)` — each hub ships
//!     its full `k+t` hedge),
//!   * trimmed vs plain k-means as a centralized quality reference.
//!
//! Both protocols run through the typed `Job` API on the same shards —
//! the comparison is two builders differing in one constructor.
//!
//! Run with: `cargo run --release -p dpc --example sensor_network_outliers`

use dpc::prelude::*;

fn main() {
    let k = 6;
    let t = 40; // faulty sensors fleet-wide
    let sites = 12;

    println!("== sensor network with faulty readings ==");
    let mix = gaussian_mixture(MixtureSpec {
        clusters: k,
        inliers: 3000,
        outliers: t,
        dim: 4, // e.g. (x, y, battery, temperature)
        sigma: 1.5,
        separation: 120.0,
        ..Default::default()
    });
    // Adversarial split: all faulty readings funnel through hub 0 (a bad
    // region), stressing the outlier allocation.
    let shards = partition(
        &mix.points,
        sites,
        PartitionStrategy::OutlierSkew,
        &mix.outlier_ids,
        99,
    );
    let data = Dataset::Shards(shards.clone());

    // --- Algorithm 2 (this paper) vs the 1-round baseline ---
    let two = Job::center(k, t)
        .data(data.clone())
        .validate()
        .expect("sound config")
        .run();
    let one = Job::one_round(Objective::Center, k, t)
        .data(data)
        .validate()
        .expect("sound config")
        .run();

    println!(
        "\n{:<28} {:>12} {:>10} {:>12}",
        "protocol", "bytes", "rounds", "(k,t) cost"
    );
    for (label, artifact) in [
        ("Algorithm 2 (2-round)", &two),
        ("1-round (k+t per hub)", &one),
    ] {
        println!(
            "{:<28} {:>12} {:>10} {:>12.3}",
            label, artifact.bytes, artifact.rounds, artifact.cost
        );
    }
    println!(
        "\ncommunication saving: {:.2}x with comparable cost",
        one.bytes as f64 / two.bytes as f64
    );

    // --- why partial clustering at all: plain k-means melts down ---
    let all = merge_shards(&shards);
    let w = WeightedSet::unit(all.len());
    let plain = lloyd_kmeans(&all, &w, k, LloydParams::default());
    let trimmed = lloyd_kmeans(
        &all,
        &w,
        k,
        LloydParams {
            trim: t as f64,
            ..Default::default()
        },
    );
    println!("\ncentralized reference (sum-of-squares objective):");
    println!(
        "  plain k-means cost:   {:>14.1}  (outliers drag centers away)",
        plain.cost
    );
    println!("  trimmed k-means cost: {:>14.1}", trimmed.cost);
    println!(
        "  sensors the operator would mis-profile without partial clustering: ~{}",
        t
    );
}
