//! Streaming `(k,t)`-median over a drifting stream with bursty outliers.
//!
//! Generates a drifting-stream workload (cluster centers move over time,
//! outliers arrive in bursts), then exercises all three streaming modes:
//!
//! 1. insertion-only merge-and-reduce — `O((k+t) log n)` live points;
//! 2. sliding window — only the recent past matters;
//! 3. continuous distributed — sites ingest independently and the 2-round
//!    sync protocol keeps a fleet-wide clustering current, with every
//!    byte charged.
//!
//! Run with: `cargo run --release -p dpc --example streaming_drift`

use dpc::prelude::*;
use std::time::Instant;

fn main() {
    let (k, t) = (4, 24);
    let spec = DriftSpec {
        clusters: k,
        points: 6000,
        drift: 0.8,
        burst_len: 6,
        burst_every: 1500,
        ..Default::default()
    };
    let stream = drifting_stream(spec);
    let n = stream.points.len();
    println!("== streaming (k,t)-median over a drifting stream ==");
    println!(
        "k = {k}, t = {t}, n = {n} ({} burst outliers, drift {} x separation)",
        stream.outlier_ids.len(),
        spec.drift
    );

    // 1. Insertion-only engine.
    let cfg = StreamConfig::new(k, t).block(256);
    let mut engine = StreamEngine::new(spec.dim, cfg);
    let t0 = Instant::now();
    for (_, p) in stream.points.iter() {
        engine.push(p);
    }
    engine.flush();
    let ingest = t0.elapsed();
    let sol = engine.solve();
    println!("\n-- insertion-only merge-and-reduce --");
    println!("live summaries:    {}", engine.live_summaries());
    println!(
        "live points:       {} of {} ingested ({:.1}x compression)",
        sol.live_points,
        n,
        n as f64 / sol.live_points as f64
    );
    println!(
        "throughput:        {:.0} points/sec",
        n as f64 / ingest.as_secs_f64().max(1e-9)
    );
    let (cost, _) = evaluate_on_full_data(
        std::slice::from_ref(&stream.points),
        &sol.centers,
        2 * t,
        Objective::Median,
    );
    println!("true (k,2t)-median cost of streamed centers: {cost:.2}");

    // Reference: the batch 2-round protocol on the full prefix, through
    // the typed Job API.
    let batch = Job::median(k, t)
        .sites(4)
        .seed(7)
        .points(stream.points.clone())
        .validate()
        .expect("sound config")
        .run();
    println!(
        "batch 2-round protocol on the same prefix:   {:.2} (stream/batch = {:.2})",
        batch.cost,
        cost / batch.cost.max(1e-9)
    );

    // 2. Sliding window: after heavy drift, old cluster positions are stale.
    let mut window = SlidingWindowEngine::new(spec.dim, 1500, cfg);
    for (_, p) in stream.points.iter() {
        window.push(p);
    }
    let wsol = window.solve();
    let (covered_from, covered_to) = window.covered_range();
    println!("\n-- sliding window (last 1500 points) --");
    println!(
        "buckets: {}, live points: {}, covering [{covered_from}, {covered_to})",
        window.live_buckets(),
        wsol.live_points
    );
    println!("window cost (on live instance): {:.2}", wsol.cost);

    // 3. Continuous distributed: 4 sites, sync every 1000 points.
    let ccfg = ContinuousConfig {
        stream: cfg,
        ..ContinuousConfig::new(k, t)
    }
    .sync_every(1000);
    let mut fleet = ContinuousCluster::new(spec.dim, 4, ccfg);
    for (i, p) in stream.points.iter() {
        fleet.ingest(i % 4, p);
    }
    fleet.sync_if_stale();
    println!("\n-- continuous distributed (4 sites, sync every 1000) --");
    println!("syncs: {}", fleet.history.len());
    for rec in &fleet.history {
        println!(
            "  sync at {:>5} points: {:>6}B over {} rounds, cost {:.2}",
            rec.at,
            rec.stats.total_bytes(),
            rec.stats.num_rounds(),
            rec.cost
        );
    }
    println!(
        "total sync communication: {}B (vs {}B to ship every raw point once)",
        fleet.total_comm_bytes(),
        n * spec.dim * 8
    );
    let latest = fleet.latest().expect("synced");
    let (ccost, _) = evaluate_on_full_data(
        std::slice::from_ref(&stream.points),
        &latest.centers,
        2 * t,
        Objective::Median,
    );
    println!("true (k,2t)-median cost of the latest sync: {ccost:.2}");
}
