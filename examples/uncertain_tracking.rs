//! Scenario: clustering uncertain object tracks.
//!
//! Each tracked object produces several noisy position fixes — a discrete
//! distribution over where it might actually be. Regional trackers (sites)
//! must agree on `k` rendezvous points while ignoring `t` ghost tracks
//! (sensor artifacts with wildly scattered fixes), without shipping whole
//! distributions to the fusion center.
//!
//! Demonstrates Algorithm 3 (uncertain `(k,t)`-median via the compressed
//! graph of Figure 1) and Algorithm 4 (`(k,t)`-center-g with truncated
//! distances), validated against exact expected costs and a Monte-Carlo
//! estimate of `E[max]` — all through the typed `Job` API. (The
//! center-pp variant of Algorithm 3 has no Job kind yet, so it calls the
//! crate-level entry point directly.)
//!
//! Run with: `cargo run --release -p dpc --example uncertain_tracking`

use dpc::prelude::*;
use dpc::uncertain::run_uncertain_median;

fn main() {
    println!("== uncertain object tracking ==");
    let spec = UncertainSpec {
        clusters: 4,
        nodes_per_site: 30,
        sites: 5,
        noise_nodes: 6,
        support: 4,
        jitter: 2.0,
        separation: 150.0,
        seed: 2024,
    };
    let shards = uncertain_mixture(spec);
    let n: usize = shards.iter().map(|s| s.len()).sum();
    let k = spec.clusters;
    let t = spec.noise_nodes;
    println!(
        "{n} uncertain tracks ({} fixes each) on {} trackers; k = {k}, t = {t}",
        4, 5
    );
    let data = Dataset::NodeShards(shards.clone());

    // --- Algorithm 3: uncertain (k,t)-median ---
    let med = Job::uncertain_median(k, t)
        .data(data.clone())
        .validate()
        .expect("sound config")
        .run();
    println!("\n-- Algorithm 3: uncertain (k,t)-median --");
    println!("bytes: {}, rounds: {}", med.bytes, med.rounds);
    println!(
        "expected assignment cost (budget {}): {:.2}",
        med.budget, med.cost
    );

    // Per-point center variant on the same data (crate-level call: the
    // Job enum covers the median objective only for now).
    let pp = run_uncertain_median(
        &shards,
        UncertainConfig::new(k, t).center_pp(),
        RunOptions::default(),
    );
    let pp_cost = estimate_expected_cost(&shards, &pp.output.centers, 2 * t, false, true);
    println!("\n-- Algorithm 3: uncertain (k,t)-center-pp --");
    println!(
        "bytes: {}, rounds: {}",
        pp.stats.total_bytes(),
        pp.stats.num_rounds()
    );
    println!("max expected assignment distance (budget 2t): {pp_cost:.2}");

    // --- Algorithm 4: the global objective E[max] ---
    let g = Job::center_g(k, t)
        .data(data)
        .validate()
        .expect("sound config")
        .run();
    let g_centers = PointSet::from_rows(&g.centers);
    let g_cost = estimate_center_g_cost(&shards, &g_centers, t, 2000, 7);
    println!("\n-- Algorithm 4: uncertain (k,t)-center-g --");
    println!("bytes: {}, rounds: {}", g.bytes, g.rounds);
    println!("Monte-Carlo E[max d(sigma(j), pi(j))] (2000 samples): {g_cost:.2}");

    // E[max] >= max-of-expectations always; report the gap the global
    // objective captures.
    let g_pp = estimate_expected_cost(&shards, &g_centers, t, false, true);
    println!("max-of-expectations with the same centers: {g_pp:.2}");
    println!(
        "stochastic inflation E[max]/max-E: {:.3}",
        g_cost / g_pp.max(1e-12)
    );

    // What a naive pipeline would do: collapse each track to its most
    // likely fix and run the deterministic algorithm — then evaluate on
    // the true uncertain objective.
    let mut det_shards = Vec::new();
    for shard in &shards {
        let mut ps = PointSet::new(2);
        for node in &shard.nodes {
            // most probable support point
            let (mut best, mut bp) = (0usize, -1.0);
            for (i, &p) in node.probs.iter().enumerate() {
                if p > bp {
                    bp = p;
                    best = i;
                }
            }
            ps.push(shard.ground.point(node.support[best]));
        }
        det_shards.push(ps);
    }
    let det = Job::median(k, t)
        .shards(det_shards)
        .validate()
        .expect("sound config")
        .run();
    let det_cost = estimate_expected_cost(
        &shards,
        &PointSet::from_rows(&det.centers),
        2 * t,
        false,
        false,
    );
    println!("\n-- naive baseline: cluster the MAP fixes, ignore uncertainty --");
    println!(
        "expected assignment cost: {det_cost:.2} (Algorithm 3: {:.2})",
        med.cost
    );
}
