//! End-to-end tests of the distributed `(k,t)`-center protocol
//! (Algorithm 2 / Theorem 4.3) and its baselines.

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::{run_distributed_center, run_one_round_center};

mod test_util;

fn shards(
    sites: usize,
    t: usize,
    strategy: PartitionStrategy,
    seed: u64,
) -> (Vec<PointSet>, Mixture) {
    test_util::mixture_shards(3, sites, 600, t, strategy, seed, 7)
}

/// Strong centralized reference: Charikar on the merged data.
fn centralized_center_cost(all_shards: &[PointSet], k: usize, t: usize) -> f64 {
    let all = merge_shards(all_shards);
    let w = WeightedSet::unit(all.len());
    let m = EuclideanMetric::new(&all);
    let sol = charikar_center(&m, &w, k, t as f64, CenterParams::default());
    sol.cost
}

#[test]
fn center_constant_factor_vs_centralized() {
    let (k, t) = (3, 10);
    for strategy in [
        PartitionStrategy::Random,
        PartitionStrategy::ByBlock,
        PartitionStrategy::OutlierSkew,
    ] {
        let (sh, _) = shards(5, t, strategy, 5);
        let out = run_distributed_center(&sh, CenterConfig::new(k, t), RunOptions::default());
        let (dist, _) = evaluate_on_full_data(&sh, &out.output.centers, t, Objective::Center);
        let cen = centralized_center_cost(&sh, k, t);
        assert!(
            dist <= 6.0 * cen.max(0.1),
            "{strategy:?}: distributed {dist} vs centralized {cen}"
        );
    }
}

#[test]
fn exactly_t_outliers_excluded_at_coordinator() {
    let (k, t) = (3, 12);
    let (sh, _) = shards(4, t, PartitionStrategy::Random, 9);
    let out = run_distributed_center(&sh, CenterConfig::new(k, t), RunOptions::default());
    assert!(out.output.excluded_weight <= t as f64 + 1e-9);
}

#[test]
fn communication_independent_of_site_size() {
    // Same k, t, s; 4x the points per site: bytes must stay ~constant.
    let (k, t, sites) = (3, 8, 4);
    let default_seed = MixtureSpec::default().seed;
    let small = {
        let mix = test_util::mixture(5, 400, t, default_seed);
        test_util::shard(&mix, sites, PartitionStrategy::Random, 1)
    };
    let big = {
        let mix = test_util::mixture(5, 1600, t, default_seed);
        test_util::shard(&mix, sites, PartitionStrategy::Random, 1)
    };
    let cfg = CenterConfig::new(k, t);
    let a = run_distributed_center(&small, cfg, RunOptions::default());
    let b = run_distributed_center(&big, cfg, RunOptions::default());
    let (sa, sb) = (
        a.stats.upstream_bytes() as f64,
        b.stats.upstream_bytes() as f64,
    );
    assert!(sb <= 1.15 * sa, "comm grew with n: {sa} -> {sb}");
}

#[test]
fn beats_one_round_in_bytes_at_scale() {
    let (k, t) = (3, 40);
    let (sh, _) = shards(10, t, PartitionStrategy::Random, 13);
    let cfg = CenterConfig::new(k, t);
    let two = run_distributed_center(&sh, cfg, RunOptions::default());
    let one = run_one_round_center(&sh, cfg, RunOptions::default());
    assert!(
        (two.stats.upstream_bytes() as f64) < 0.6 * one.stats.upstream_bytes() as f64,
        "2-round {} vs 1-round {}",
        two.stats.upstream_bytes(),
        one.stats.upstream_bytes()
    );
    // ... at no real quality cost.
    let (c2, _) = evaluate_on_full_data(&sh, &two.output.centers, t, Objective::Center);
    let (c1, _) = evaluate_on_full_data(&sh, &one.output.centers, t, Objective::Center);
    assert!(
        c2 <= 3.0 * c1.max(0.1) + 1e-9,
        "2-round {c2} vs 1-round {c1}"
    );
}

#[test]
fn t_zero_is_plain_distributed_k_center() {
    let (sh, _) = shards(4, 0, PartitionStrategy::Random, 17);
    let out = run_distributed_center(&sh, CenterConfig::new(3, 0), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&sh, &out.output.centers, 0, Objective::Center);
    let cen = centralized_center_cost(&sh, 3, 0);
    assert!(
        cost <= 6.0 * cen.max(0.1),
        "cost {cost} vs centralized {cen}"
    );
}

#[test]
fn parallel_and_sequential_agree() {
    let (sh, _) = shards(6, 10, PartitionStrategy::Random, 19);
    let cfg = CenterConfig::new(3, 10);
    let a = run_distributed_center(
        &sh,
        cfg,
        RunOptions {
            parallel: true,
            ..Default::default()
        },
    );
    let b = run_distributed_center(
        &sh,
        cfg,
        RunOptions {
            parallel: false,
            ..Default::default()
        },
    );
    assert_eq!(a.output.centers, b.output.centers);
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
}

#[test]
fn gonzalez_marginals_monotone_on_all_sites() {
    // White-box-ish invariant via the public API: profiles are convex, so
    // shipped byte counts in round 0 stay O(log t) regardless of data.
    let (sh, _) = shards(5, 64, PartitionStrategy::ByBlock, 29);
    let out = run_distributed_center(&sh, CenterConfig::new(4, 64), RunOptions::default());
    for &bytes in &out.stats.rounds[0].sites_to_coordinator {
        assert!(bytes < 400, "round-0 profile message too big: {bytes}B");
    }
}
