//! Cross-backend equivalence of the real protocols: every distributed
//! algorithm in the workspace must produce the same solution and
//! byte-identical per-round charges whether its messages ride the
//! persistent channel workers, a real loopback TCP socket, or the
//! multiplexed event-loop backend.

use dpc::coordinator::CommStats;
use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::{
    run_distributed_center, run_distributed_median, run_one_round_center, run_one_round_median,
};
use dpc::uncertain::run_uncertain_median;
use std::time::Duration;

mod test_util;

fn assert_charges_identical(label: &str, a: &CommStats, b: &CommStats) {
    assert_eq!(a.num_rounds(), b.num_rounds(), "{label}: round count");
    for (i, (ra, rb)) in a.rounds.iter().zip(&b.rounds).enumerate() {
        assert_eq!(
            ra.coordinator_to_sites, rb.coordinator_to_sites,
            "{label}: round {i} downstream"
        );
        assert_eq!(
            ra.sites_to_coordinator, rb.sites_to_coordinator,
            "{label}: round {i} upstream"
        );
    }
}

fn options_matrix() -> [RunOptions; 4] {
    [
        RunOptions::sequential(),
        RunOptions::new(), // parallel persistent channel workers
        RunOptions::new().transport(TransportKind::Tcp),
        // Two event-loop shards exercise the round-robin scatter/gather.
        RunOptions::new().transport(TransportKind::Mux).shards(2),
    ]
}

/// Runs one protocol under every backend and checks outputs + charges
/// against the deterministic sequential baseline.
fn check<F>(label: &str, run: F)
where
    F: Fn(RunOptions) -> (PointSet, f64, CommStats),
{
    let [baseline, channel, tcp, mux] = options_matrix();
    let (base_centers, base_cost, base_stats) = run(baseline);
    for options in [channel, tcp, mux] {
        let (centers, cost, stats) = run(options);
        assert_eq!(centers, base_centers, "{label}: centers diverged");
        assert_eq!(cost, base_cost, "{label}: cost diverged");
        assert_charges_identical(label, &base_stats, &stats);
    }
}

#[test]
fn median_center_and_one_round_protocols_are_backend_invariant() {
    let (shards, _) = test_util::mixture_shards(3, 4, 600, 6, PartitionStrategy::Random, 11, 0);
    let mcfg = MedianConfig::new(3, 6);
    check("algo1 median", |o| {
        let out = run_distributed_median(&shards, mcfg, o);
        (out.output.centers, out.output.coordinator_cost, out.stats)
    });
    check("algo1 means", |o| {
        let out = run_distributed_median(&shards, mcfg.means(), o);
        (out.output.centers, out.output.coordinator_cost, out.stats)
    });
    let ccfg = CenterConfig::new(3, 6);
    check("algo2 center", |o| {
        let out = run_distributed_center(&shards, ccfg, o);
        (out.output.centers, out.output.coordinator_cost, out.stats)
    });
    check("one-round median", |o| {
        let out = run_one_round_median(&shards, mcfg, o);
        (out.output.centers, out.output.coordinator_cost, out.stats)
    });
    check("one-round center", |o| {
        let out = run_one_round_center(&shards, ccfg, o);
        (out.output.centers, out.output.coordinator_cost, out.stats)
    });
}

#[test]
fn uncertain_protocol_is_backend_invariant() {
    let nodes = test_util::uncertain_shards_sized(7, 3, 6);
    let cfg = UncertainConfig::new(2, 2);
    check("algo3 uncertain median", |o| {
        let out = run_uncertain_median(&nodes, cfg, o);
        (out.output.centers, out.output.coordinator_cost, out.stats)
    });
}

#[test]
fn link_model_is_deterministic_and_additive_across_backends() {
    // The simulated network column depends only on the charged bytes and
    // the link parameters — so it too must be backend-invariant, unlike
    // the measured compute columns.
    let (shards, _) = test_util::mixture_shards(3, 3, 300, 4, PartitionStrategy::Random, 5, 0);
    let link = LinkModel::new(Duration::from_millis(3), 1e6);
    let nets: Vec<Duration> = options_matrix()
        .into_iter()
        .map(|o| {
            run_distributed_median(&shards, MedianConfig::new(2, 4), o.link(link))
                .stats
                .network_time()
        })
        .collect();
    assert!(nets[0] >= Duration::from_millis(12), "2 rounds x 2 x 3ms");
    assert!(nets.iter().all(|&n| n == nets[0]), "{nets:?}");
}

#[test]
fn wire_encodings_are_backend_invariant_and_raw_stays_byte_identical() {
    let (shards, _) = test_util::mixture_shards(3, 4, 400, 6, PartitionStrategy::Random, 23, 0);
    let cfg = MedianConfig::new(3, 6);
    // The pre-codec wire format: default config (encoding unset).
    let base = run_distributed_median(&shards, cfg, RunOptions::sequential());
    for options in options_matrix() {
        // `encoding=raw` must leave every per-round, per-site charge
        // byte-identical to that baseline on every backend.
        let raw = run_distributed_median(&shards, cfg.encoding(Encoding::Raw), options.clone());
        assert_eq!(raw.output.centers, base.output.centers, "raw centers");
        assert_charges_identical("explicit raw", &base.stats, &raw.stats);
        assert_eq!(raw.stats.raw_bytes(), raw.stats.total_bytes(), "raw ratio");
        // Every other mode decodes successfully on every backend and
        // reports the exact uncompressed byte total it stands in for.
        for enc in [Encoding::F32, Encoding::F16, Encoding::Delta, Encoding::Rlz] {
            let out = run_distributed_median(&shards, cfg.encoding(enc), options.clone());
            assert!(out.output.coordinator_cost.is_finite(), "{enc}");
            assert_eq!(out.stats.raw_bytes(), base.stats.total_bytes(), "{enc}");
            if enc.is_lossless() {
                assert_eq!(out.output.centers, base.output.centers, "{enc}");
                assert_eq!(
                    out.output.coordinator_cost, base.output.coordinator_cost,
                    "{enc}"
                );
            }
        }
    }
}
