//! End-to-end tests of the typed experiment API: every protocol through
//! `Job::...().validate()?.run()`, the pinned `Artifact` JSON schema, and
//! sweep grids whose per-cell accounting matches standalone runs.

use dpc::prelude::*;

mod test_util;

fn points(n: usize, t: usize, seed: u64) -> PointSet {
    test_util::mixture(3, n, t, seed).points
}

/// Acceptance: every protocol the CLI exposes runs through the one front
/// door and produces a coherent artifact.
#[test]
fn every_protocol_runs_through_job() {
    let pts = points(240, 4, 11);
    let nodes = uncertain_mixture(UncertainSpec {
        clusters: 2,
        nodes_per_site: 8,
        sites: 2,
        noise_nodes: 2,
        ..Default::default()
    });
    let jobs: Vec<(JobBuilder, &str, bool)> = vec![
        (Job::median(3, 4).points(pts.clone()), "median", true),
        (Job::means(3, 4).points(pts.clone()), "means", true),
        (Job::center(3, 4).points(pts.clone()), "center", true),
        (
            Job::one_round(Objective::Median, 3, 4).points(pts.clone()),
            "one-round-median",
            true,
        ),
        (
            Job::one_round(Objective::Means, 3, 4).points(pts.clone()),
            "one-round-means",
            true,
        ),
        (
            Job::one_round(Objective::Center, 3, 4).points(pts.clone()),
            "one-round-center",
            true,
        ),
        (
            Job::uncertain_median(2, 2).data(nodes.clone()),
            "uncertain-median",
            true,
        ),
        (Job::center_g(2, 2).data(nodes), "center-g", true),
        (
            Job::stream(3, 4).block(64).points(pts.clone()),
            "stream",
            false,
        ),
        (
            Job::stream(3, 4).block(32).window(128).points(pts.clone()),
            "stream-window",
            false,
        ),
        (
            Job::continuous(3, 4)
                .block(32)
                .sync_every(100)
                .points(pts.clone()),
            "continuous",
            true,
        ),
        (
            Job::subquadratic(3, 4).points(pts.clone()),
            "subquadratic",
            false,
        ),
    ];
    for (job, name, moves_bytes) in jobs {
        let artifact = job.validate().expect(name).run();
        assert_eq!(artifact.job, name);
        assert!(!artifact.centers.is_empty(), "{name}: no centers");
        assert!(artifact.cost.is_finite(), "{name}: bad cost");
        assert_eq!(
            artifact.bytes > 0,
            moves_bytes,
            "{name}: bytes {}",
            artifact.bytes
        );
        // The JSON schema is total: every artifact survives a round trip.
        let back = Artifact::from_json(&artifact.to_json()).expect(name);
        assert_eq!(back.to_json(), artifact.to_json(), "{name}");
    }
}

/// Golden-file pin of the artifact JSON schema: serialize a fixed
/// artifact, compare byte-for-byte against the checked-in snapshot, and
/// read it back. CLI and bench consumers share this schema; any drift
/// has to show up here as a reviewed diff.
#[test]
fn artifact_json_schema_is_pinned() {
    let artifact = Artifact {
        job: "median".into(),
        k: 2,
        t: 1,
        eps: 0.5,
        sites: 3,
        seed: 42,
        n: 41,
        centers: vec![vec![1.0, 2.0], vec![-3.25, 0.0]],
        cost: 3.5,
        budget: 2,
        bytes: 100,
        rounds: 2,
        round_stats: vec![RoundBreakdown {
            bytes_down: vec![5, 5, 5],
            bytes_up: vec![20, 30, 35],
            max_site_ms: 1.5,
            coordinator_ms: 0.5,
            network_ms: 2.25,
            dropouts: 1,
            retries: 2,
            degraded: true,
        }],
        transport: Some("tcp".into()),
        network_ms: 2.25,
        live_points: Some(7),
        syncs: None,
        points_per_sec: Some(1000.0),
        metrics: None,
        encoding: None,
        bytes_raw: None,
        quality_delta: None,
    };
    let golden = include_str!("golden/artifact.json");
    assert_eq!(
        artifact.to_json(),
        golden.trim_end(),
        "artifact JSON schema drifted from tests/golden/artifact.json"
    );
    // Deserialize → reserialize is the identity on the golden document.
    let back = Artifact::from_json(golden.trim_end()).unwrap();
    assert_eq!(back.to_json(), golden.trim_end());
    assert_eq!(back.centers, artifact.centers);
    assert_eq!(back.round_stats, artifact.round_stats);
}

/// Acceptance: a sweep over ≥2 parameters × 2 transports returns
/// per-cell artifacts whose communication accounting is byte-identical
/// to the equivalent single runs.
#[test]
fn sweep_cells_match_standalone_runs() {
    let pts = points(300, 4, 23);
    let ks = [2usize, 3];
    let ts = [1usize, 4];
    let transports = [TransportKind::Channel, TransportKind::Tcp];
    let artifacts = Sweep::grid(Job::median(0, 0).sites(3).seed(9).points(pts.clone()))
        .k(&ks)
        .t(&ts)
        .transports(&transports)
        .parallelism(4)
        .run()
        .unwrap();
    assert_eq!(artifacts.len(), 8);
    let mut i = 0;
    for &k in &ks {
        for &t in &ts {
            for &tr in &transports {
                let cell = &artifacts[i];
                i += 1;
                assert_eq!((cell.k, cell.t), (k, t));
                assert_eq!(cell.transport.as_deref(), Some(tr.name()));
                let single = Job::median(k, t)
                    .sites(3)
                    .seed(9)
                    .transport(tr)
                    .points(pts.clone())
                    .validate()
                    .unwrap()
                    .run();
                // Byte-identical accounting, identical outputs.
                assert_eq!(cell.rounds, single.rounds);
                for (a, b) in cell.round_stats.iter().zip(&single.round_stats) {
                    assert_eq!(a.bytes_down, b.bytes_down, "k={k} t={t} {tr:?}");
                    assert_eq!(a.bytes_up, b.bytes_up, "k={k} t={t} {tr:?}");
                }
                assert_eq!(cell.centers, single.centers, "k={k} t={t} {tr:?}");
                assert_eq!(cell.cost, single.cost);
            }
        }
    }
    // The table writers carry one row per cell.
    let table = dpc::api::csv_table(&artifacts);
    assert_eq!(table.trim_end().lines().count(), 9);
    assert!(table.starts_with("job,k,t,eps,sites,seed,transport,"));
}

/// Regression (promoted footgun): invalid configs are hard errors at
/// validate time, while no-effect flags stay structured warnings.
#[test]
fn hard_errors_and_structured_warnings_split_correctly() {
    // eps = 0 streaming: refused, with the failure mode spelled out.
    let err = Job::stream(2, 1).eps(0.0).validate().unwrap_err();
    assert_eq!(err, ConfigError::ExactOutlierQueries);
    assert!(err.to_string().contains("unexcludable"));
    let err = Job::continuous(2, 1).eps(0.0).validate().unwrap_err();
    assert_eq!(err, ConfigError::ExactOutlierQueries);
    // Batch jobs keep accepting eps = 0.
    assert!(Job::median(2, 1).eps(0.0).validate().is_ok());

    // No-effect transport flags: surfaced, structured, non-fatal.
    for job in [Job::subquadratic(2, 1), Job::stream(2, 1)] {
        let vj = job.transport(TransportKind::Tcp).validate().unwrap();
        assert!(
            vj.warnings()
                .iter()
                .any(|w| matches!(w, ConfigWarning::TransportUnused { .. })),
            "{:?}",
            vj.warnings()
        );
    }
    // Runtime-driving jobs do not warn on the same flags.
    for job in [Job::median(2, 1), Job::continuous(2, 1)] {
        let vj = job.transport(TransportKind::Tcp).validate().unwrap();
        assert!(vj.warnings().is_empty(), "{:?}", vj.warnings());
    }
}

/// `Artifact::evaluate` re-scores centers at any budget on demand.
#[test]
fn artifact_quality_evaluation_on_demand() {
    let pts = points(300, 6, 31);
    let data = Dataset::Points(pts.clone());
    let artifact = Job::median(3, 6)
        .sites(3)
        .points(pts)
        .validate()
        .unwrap()
        .run();
    let (strict, excluded_strict) = artifact.evaluate(&data, 0, Objective::Median).unwrap();
    let (relaxed, _) = artifact.evaluate(&data, 2 * 6, Objective::Median).unwrap();
    assert_eq!(excluded_strict, 0);
    assert!(strict >= relaxed, "budget can only reduce cost");
    // The run's own cost is the relaxed evaluation at the job budget.
    assert!((relaxed - artifact.cost).abs() < 1e-9);
}

/// Acceptance for the bulk-kernel layer: a thread budget changes
/// wall-clock only. Per-round per-site wire bytes, the selected centers,
/// and the evaluated cost are identical between a serial run and a
/// `threads(4)` run, across the median / center / uncertain families and
/// a streaming session.
#[test]
fn thread_budget_never_changes_bytes_or_answers() {
    let pts = points(260, 5, 47);
    let round_bytes = |a: &Artifact| -> Vec<(Vec<usize>, Vec<usize>)> {
        a.round_stats
            .iter()
            .map(|r| (r.bytes_down.clone(), r.bytes_up.clone()))
            .collect()
    };
    let builders: Vec<JobBuilder> = vec![
        Job::median(3, 5).sites(3).points(pts.clone()),
        Job::means(3, 5).sites(3).points(pts.clone()),
        Job::center(3, 5).sites(3).points(pts.clone()),
        Job::one_round(Objective::Center, 3, 5)
            .sites(3)
            .points(pts.clone()),
        Job::subquadratic(3, 5).points(pts.clone()),
        Job::stream(3, 5).block(64).points(pts.clone()),
    ];
    for b in builders {
        let serial = b.clone().sequential().validate().unwrap().run();
        let threaded = b.threads(4).sequential().validate().unwrap().run();
        assert_eq!(serial.centers, threaded.centers, "{}", serial.job);
        assert_eq!(serial.cost, threaded.cost, "{}", serial.job);
        assert_eq!(serial.bytes, threaded.bytes, "{}", serial.job);
        assert_eq!(
            round_bytes(&serial),
            round_bytes(&threaded),
            "{}",
            serial.job
        );
    }
    // Uncertain nodes too (expected-distance loops run on the bulk path).
    let nodes = uncertain_mixture(UncertainSpec {
        clusters: 2,
        nodes_per_site: 10,
        sites: 2,
        noise_nodes: 2,
        ..Default::default()
    });
    let b = Job::uncertain_median(2, 2).data(nodes);
    let serial = b.clone().sequential().validate().unwrap().run();
    let threaded = b.threads(4).sequential().validate().unwrap().run();
    assert_eq!(serial.centers, threaded.centers);
    assert_eq!(serial.cost, threaded.cost);
    assert_eq!(serial.bytes, threaded.bytes);
}

/// The high-dimensional blob workload exercises the kernels end to end:
/// a 64-dimensional imbalanced instance still recovers its planted
/// structure through the full protocol.
#[test]
fn gaussian_blobs_run_through_job() {
    let spec = BlobsSpec {
        clusters: 4,
        points: 600,
        outliers: 6,
        dim: 64,
        imbalance: 1.0,
        seed: 91,
        ..Default::default()
    };
    let blobs = gaussian_blobs(spec);
    let artifact = Job::median(4, 6)
        .sites(3)
        .threads(2)
        .gaussian_blobs(spec)
        .validate()
        .unwrap()
        .run();
    assert_eq!(artifact.n, 606);
    assert_eq!(artifact.centers.len(), 4);
    assert_eq!(artifact.centers[0].len(), 64);
    // Every planted center has a chosen center nearby (σ√d ≈ 8 scale).
    for c in 0..blobs.centers.len() {
        let target = blobs.centers.point(c);
        let near = artifact
            .centers
            .iter()
            .any(|ch| dpc::metric::points::sq_dist(ch, target).sqrt() < 40.0);
        assert!(near, "no center near planted blob {c}");
    }
}
