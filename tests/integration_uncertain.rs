//! End-to-end tests of the uncertain-data algorithms (Algorithms 3–4)
//! against exact expected costs, the compressed-graph sandwich, and
//! Monte-Carlo estimates of the global objective.

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::run_distributed_median;
use dpc::uncertain::{run_center_g, run_uncertain_median};

mod test_util;

fn shards(seed: u64, noise: usize) -> Vec<NodeSet> {
    test_util::uncertain_shards(seed, noise)
}

#[test]
fn uncertain_median_beats_paying_for_noise() {
    let t = 5;
    let sh = shards(101, t);
    let out = run_uncertain_median(&sh, UncertainConfig::new(3, t), RunOptions::default());
    let cost = estimate_expected_cost(&sh, &out.output.centers, 2 * t, false, false);
    // Honest nodes: 60 of them at jitter ~1.5; any solution serving a
    // noise node pays > 1e4.
    assert!(cost < 600.0, "uncertain median cost {cost}");
}

#[test]
fn uncertain_means_and_center_pp() {
    let t = 4;
    let sh = shards(103, t);
    let means = run_uncertain_median(
        &sh,
        UncertainConfig::new(3, t).means(),
        RunOptions::default(),
    );
    let mc = estimate_expected_cost(&sh, &means.output.centers, 2 * t, true, false);
    assert!(mc < 5_000.0, "uncertain means cost {mc}");

    let pp = run_uncertain_median(
        &sh,
        UncertainConfig::new(3, t).center_pp(),
        RunOptions::default(),
    );
    let pc = estimate_expected_cost(&sh, &pp.output.centers, 2 * t, false, true);
    assert!(pc < 50.0, "uncertain center-pp cost {pc}");
}

#[test]
fn compressed_graph_sandwich_on_random_instances() {
    // Lemma 5.4 on generated data: translating a graph solution back to
    // the uncertain instance at most doubles the cost.
    for seed in [7u64, 8, 9] {
        let sh = shards(seed, 3);
        // Build one big local instance (single site) to compare graph
        // cost vs true cost directly.
        let all = &sh[0];
        let (graph, demands) = CompressedGraph::from_nodes(all, false);
        let sol = median_bicriteria(
            &graph,
            &demands,
            3,
            2.0,
            Objective::Median,
            BicriteriaParams {
                eps: 0.0,
                ..Default::default()
            },
        );
        let mut centers = PointSet::new(2);
        for &c in &sol.centers {
            centers.push(graph.y_coords(c));
        }
        let true_cost =
            estimate_expected_cost(std::slice::from_ref(all), &centers, 2, false, false);
        assert!(
            true_cost <= 2.0 * sol.cost + 1e-9,
            "seed {seed}: Lemma 5.4 violated — true {true_cost} > 2·graph {}",
            sol.cost
        );
    }
}

#[test]
fn communication_scales_with_sk_t_not_n() {
    let t = 4;
    let small = shards(301, t);
    let big = test_util::uncertain_shards_sized(301, t, 60); // 4x nodes
    let cfg = UncertainConfig::new(3, t);
    let a = run_uncertain_median(&small, cfg, RunOptions::default());
    let b = run_uncertain_median(&big, cfg, RunOptions::default());
    let (sa, sb) = (
        a.stats.upstream_bytes() as f64,
        b.stats.upstream_bytes() as f64,
    );
    assert!(sb <= 1.2 * sa, "uncertain comm grew with n: {sa} -> {sb}");
}

#[test]
fn center_g_tracks_monte_carlo_objective() {
    let t = 3;
    let sh = shards(401, t);
    let out = run_center_g(&sh, CenterGConfig::new(3, t), RunOptions::default());
    let emax = estimate_center_g_cost(&sh, &out.output.centers, t, 1500, 11);
    // Cluster jitter 1.5 with 3-point support: per-node E[max] ~ few
    // units; noise nodes excluded. Paying for noise means > 1e4.
    assert!(emax < 100.0, "E[max] {emax}");
    // And the global objective dominates the per-point one.
    let pp = estimate_expected_cost(&sh, &out.output.centers, t, false, true);
    assert!(emax >= pp - 0.5, "E[max] {emax} < max-E {pp}");
}

#[test]
fn center_g_communication_contains_tau_sweep() {
    let t = 3;
    let sh = shards(403, t);
    let out = run_center_g(&sh, CenterGConfig::new(2, t), RunOptions::default());
    // Round 1 carries |T| = O(log Delta) hulls per site — more than a
    // single-hull message but far less than shipping distributions.
    assert_eq!(out.stats.num_rounds(), 3);
    let profile_bytes: usize = out.stats.rounds[1].sites_to_coordinator.iter().sum();
    let final_bytes: usize = out.stats.rounds[2].sites_to_coordinator.iter().sum();
    assert!(profile_bytes > 0 && final_bytes > 0);
}

#[test]
fn deterministic_nodes_reduce_to_deterministic_problem() {
    // All nodes are point masses: Algorithm 3's output should be within a
    // constant of running Algorithm 1 on the realizations.
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 3,
        inliers: 120,
        outliers: 4,
        ..Default::default()
    });
    let det_shards = partition(
        &mix.points,
        3,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        5,
    );
    let unc_shards: Vec<NodeSet> = det_shards
        .iter()
        .map(|ps| {
            let mut ns = NodeSet::new(2);
            for (_, p) in ps.iter() {
                let id = ns.ground.push(p);
                ns.nodes.push(UncertainNode::deterministic(id));
            }
            ns
        })
        .collect();
    let unc = run_uncertain_median(
        &unc_shards,
        UncertainConfig::new(3, 4),
        RunOptions::default(),
    );
    let det = run_distributed_median(&det_shards, MedianConfig::new(3, 4), RunOptions::default());
    let cu = estimate_expected_cost(&unc_shards, &unc.output.centers, 8, false, false);
    let (cd, _) = evaluate_on_full_data(&det_shards, &det.output.centers, 8, Objective::Median);
    assert!(
        cu <= 4.0 * cd.max(1.0),
        "uncertain-on-deterministic {cu} vs deterministic {cd}"
    );
}
