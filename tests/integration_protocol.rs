//! Protocol-level invariants: byte accounting, round structure, and the
//! communication *shapes* of Tables 1–2 measured on real message buffers.

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::{run_distributed_center, run_distributed_median, run_one_round_median};

mod test_util;

fn shards_with(sites: usize, inliers: usize, t: usize, seed: u64) -> Vec<PointSet> {
    test_util::mixture_shards(3, sites, inliers, t, PartitionStrategy::Random, seed, 0).0
}

/// Least-squares slope of log(y) against log(x).
fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let sx: f64 = lx.iter().sum();
    let sy: f64 = ly.iter().sum();
    let sxx: f64 = lx.iter().map(|v| v * v).sum();
    let sxy: f64 = lx.iter().zip(&ly).map(|(a, b)| a * b).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[test]
fn two_round_median_comm_sublinear_in_t_times_s() {
    // Grow s at fixed k, t: 2-round bytes should grow ~ s (the sk term),
    // while 1-round grows ~ s·(k+t) — measure both slopes in log-log.
    let (k, t) = (3, 48);
    let sites_list = [4usize, 8, 16, 32];
    let mut two_bytes = Vec::new();
    let mut one_bytes = Vec::new();
    for &s in &sites_list {
        let sh = shards_with(s, 1200, t, 77);
        let cfg = MedianConfig::new(k, t);
        two_bytes.push(
            run_distributed_median(&sh, cfg, RunOptions::default())
                .stats
                .upstream_bytes() as f64,
        );
        one_bytes.push(
            run_one_round_median(&sh, cfg, RunOptions::default())
                .stats
                .upstream_bytes() as f64,
        );
    }
    let xs: Vec<f64> = sites_list.iter().map(|&s| s as f64).collect();
    let slope_two = loglog_slope(&xs, &two_bytes);
    let slope_one = loglog_slope(&xs, &one_bytes);
    // 1-round is ~linear in s with a large t-coefficient; 2-round's
    // t-term does NOT scale with s, so at t >> k its slope is much
    // smaller.
    assert!(
        slope_two < slope_one - 0.2,
        "slopes: two-round {slope_two:.2}, one-round {slope_one:.2} ({two_bytes:?} vs {one_bytes:?})"
    );
}

#[test]
fn median_comm_grows_linearly_in_t_not_st() {
    // Grow t at fixed s: 2-round upstream ~ sk + c·t with c independent
    // of s. Compare t-slopes at s = 4 and s = 16 — they should be close
    // (the t term is shared), unlike the 1-round protocol where the
    // t-coefficient is s itself.
    let k = 3;
    let ts = [16usize, 32, 64];
    let slope_at = |s: usize, one_round: bool| {
        let mut ys = Vec::new();
        for &t in &ts {
            let sh = shards_with(s, 900, t, 83);
            let cfg = MedianConfig::new(k, t);
            let b = if one_round {
                run_one_round_median(&sh, cfg, RunOptions::default())
                    .stats
                    .upstream_bytes()
            } else {
                run_distributed_median(&sh, cfg, RunOptions::default())
                    .stats
                    .upstream_bytes()
            };
            ys.push(b as f64);
        }
        // absolute growth per unit t
        (ys[2] - ys[0]) / ((ts[2] - ts[0]) as f64)
    };
    let two_s4 = slope_at(4, false);
    let two_s16 = slope_at(16, false);
    let one_s4 = slope_at(4, true);
    let one_s16 = slope_at(16, true);
    // 1-round t-coefficient quadruples with s; 2-round must not.
    assert!(
        one_s16 > 2.5 * one_s4,
        "one-round t-coefficient should scale with s: {one_s4} -> {one_s16}"
    );
    assert!(
        two_s16 < 2.0 * two_s4.max(8.0),
        "two-round t-coefficient must be ~s-independent: {two_s4} -> {two_s16}"
    );
}

#[test]
fn downstream_messages_are_tiny() {
    // The coordinator only ever sends configs and thresholds: O(s) small
    // messages, independent of n and t.
    let sh = shards_with(8, 2000, 64, 91);
    let out = run_distributed_median(&sh, MedianConfig::new(4, 64), RunOptions::default());
    assert!(
        out.stats.downstream_bytes() < 8 * 64,
        "downstream {}B",
        out.stats.downstream_bytes()
    );
}

#[test]
fn site_times_reported_per_round() {
    let sh = shards_with(4, 800, 16, 97);
    let out = run_distributed_median(&sh, MedianConfig::new(3, 16), RunOptions::default());
    for round in &out.stats.rounds {
        assert_eq!(round.site_compute.len(), 4);
    }
    // Round 0 (profile building, O(n_i^2) solves) dominates round 1.
    let r0 = out.stats.rounds[0].max_site_compute();
    assert!(r0.as_nanos() > 0);
}

#[test]
fn center_comm_matches_sk_plus_t_shape() {
    let k = 3;
    let t = 60;
    // At fixed t, growing s: upstream ≈ s·(k·B) + ~rho·t·B + profiles.
    let mut ys = Vec::new();
    let ss = [4usize, 8, 16];
    for &s in &ss {
        let sh = shards_with(s, 1500, t, 103);
        let out = run_distributed_center(&sh, CenterConfig::new(k, t), RunOptions::default());
        ys.push(out.stats.upstream_bytes() as f64);
    }
    // Fit bytes = a·s + b: residual t-term b must dominate at small s
    // (t >> k) — i.e. doubling s from 4 to 8 must far less than double
    // bytes.
    assert!(
        ys[1] < 1.6 * ys[0],
        "center comm nearly doubled when s doubled: {ys:?}"
    );
}

#[test]
fn empty_message_rounds_still_accounted() {
    let sh = shards_with(3, 120, 4, 107);
    let out = run_one_round_median(&sh, MedianConfig::new(2, 4), RunOptions::default());
    assert_eq!(out.stats.num_rounds(), 1);
    assert_eq!(out.stats.rounds[0].coordinator_to_sites, vec![0, 0, 0]);
}
