//! End-to-end streaming suite: quality vs the batch 2-round protocol,
//! live-summary size bounds, sliding-window recency, and continuous-mode
//! communication accounting — the ISSUE 2 acceptance criteria.

mod test_util;

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::run_distributed_median;

fn drift_workload(points: usize, seed: u64) -> DriftStream {
    drifting_stream(DriftSpec {
        clusters: 4,
        points,
        drift: 0.6,
        burst_len: 5,
        burst_every: 500,
        seed,
        ..Default::default()
    })
}

/// Acceptance: on the drifting-stream workload the streaming engine's
/// `(k,t)`-median cost is within 2x of rerunning the batch 2-round
/// protocol on the full prefix.
#[test]
fn streaming_cost_within_2x_of_batch() {
    let (k, t) = (4, 20);
    for seed in [1u64, 2, 3] {
        let stream = drift_workload(4000, seed);
        let mut engine = StreamEngine::new(2, StreamConfig::new(k, t).block(256));
        for (_, p) in stream.points.iter() {
            engine.push(p);
        }
        engine.flush();
        let sol = engine.solve();

        let shards = partition(&stream.points, 4, PartitionStrategy::Random, &[], seed ^ 99);
        let batch = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());

        let budget = 2 * t; // (1+eps)t at eps = 1
        let full = std::slice::from_ref(&stream.points);
        let (stream_cost, _) = evaluate_on_full_data(full, &sol.centers, budget, Objective::Median);
        let (batch_cost, _) =
            evaluate_on_full_data(&shards, &batch.output.centers, budget, Objective::Median);
        assert!(
            stream_cost <= 2.0 * batch_cost,
            "seed {seed}: stream {stream_cost:.1} > 2x batch {batch_cost:.1}"
        );
    }
}

/// Acceptance: the engine keeps at most `O(k + t) · log n` live summary
/// points — concretely `(2k + t + 1)` per level over at most
/// `⌈log₂(n / block)⌉ + 1` levels, plus one partial buffer.
#[test]
fn live_summary_size_bound() {
    let (k, t, block) = (4, 20, 128);
    let n = 5000usize;
    let stream = drift_workload(n, 7);
    let mut engine = StreamEngine::new(2, StreamConfig::new(k, t).block(block));
    for (_, p) in stream.points.iter() {
        engine.push(p);
    }
    let blocks = n.div_ceil(block);
    let levels = (blocks as f64).log2().ceil() as usize + 1;
    let per_summary = 2 * k + t + 1;
    let bound = per_summary * levels + block;
    assert!(
        engine.live_points() <= bound,
        "{} live points exceed bound {bound}",
        engine.live_points()
    );
    // Weights conserve the exact input count through every merge.
    assert!((engine.live_weight() - n as f64).abs() < 1e-6);
}

/// The streaming quality also holds against a *centralized* reference on
/// an undrifting mixture (sanity that the factor is not drift luck).
#[test]
fn streaming_matches_batch_on_static_mixture() {
    let (k, t) = (3, 10);
    let (shards, mix) =
        test_util::mixture_shards(3, 4, 1500, t, PartitionStrategy::Random, 41, 0x5eed);
    let mut engine = StreamEngine::new(2, StreamConfig::new(k, t).block(200));
    for (_, p) in mix.points.iter() {
        engine.push(p);
    }
    engine.flush();
    let sol = engine.solve();
    let batch = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    let budget = 2 * t;
    let full = std::slice::from_ref(&mix.points);
    let (stream_cost, _) = evaluate_on_full_data(full, &sol.centers, budget, Objective::Median);
    let (batch_cost, _) =
        evaluate_on_full_data(&shards, &batch.output.centers, budget, Objective::Median);
    assert!(
        stream_cost <= 2.0 * batch_cost,
        "stream {stream_cost:.1} > 2x batch {batch_cost:.1}"
    );
}

/// Sliding window: once the stream has drifted away, windowed centers
/// track the *current* cluster positions, while the full-stream engine
/// averages over the whole drift path.
#[test]
fn sliding_window_tracks_current_positions() {
    let spec = DriftSpec {
        clusters: 2,
        points: 4000,
        drift: 3.0,
        burst_every: 0,
        sigma: 0.5,
        seed: 11,
        ..Default::default()
    };
    let stream = drifting_stream(spec);
    let cfg = StreamConfig::new(2, 0).block(100);
    let mut window = SlidingWindowEngine::new(2, 600, cfg);
    for (_, p) in stream.points.iter() {
        window.push(p);
    }
    let wsol = window.solve();
    // Each window center must be close to some point from the last 600
    // arrivals, and far from where the clusters started.
    let recent_start = stream.points.len() - 600;
    for i in 0..wsol.centers.len() {
        let c = wsol.centers.point(i);
        let d_recent = (recent_start..stream.points.len())
            .map(|j| dpc::metric::points::sq_dist(c, stream.points.point(j)).sqrt())
            .fold(f64::INFINITY, f64::min);
        let d_early = (0..600)
            .map(|j| dpc::metric::points::sq_dist(c, stream.points.point(j)).sqrt())
            .fold(f64::INFINITY, f64::min);
        assert!(
            d_recent < 20.0,
            "center {i} not near recent data: {d_recent}"
        );
        assert!(
            d_early > d_recent,
            "center {i} closer to the expired prefix ({d_early} vs {d_recent})"
        );
    }
    // Bucketed expiry keeps the live weight near one window.
    assert!(window.live_weight() <= 2.0 * 600.0 + 100.0);
}

/// Continuous distributed mode: syncs are real 2-round protocol runs with
/// per-round byte accounting, and their cost stays flat as the stream
/// grows (summaries, not raw points, cross the wire).
#[test]
fn continuous_mode_charges_flat_sync_communication() {
    let (k, t) = (3, 8);
    let stream = drift_workload(3000, 23);
    let cfg = ContinuousConfig {
        stream: StreamConfig::new(k, t).block(128),
        ..ContinuousConfig::new(k, t)
    }
    .sync_every(750);
    let mut fleet = ContinuousCluster::new(2, 3, cfg);
    for (i, p) in stream.points.iter() {
        fleet.ingest(i % 3, p);
    }
    assert_eq!(fleet.history.len(), 4); // 750, 1500, 2250, 3000
    let raw_bytes = stream.points.len() * 2 * 8;
    for rec in &fleet.history {
        assert_eq!(
            rec.stats.num_rounds(),
            2,
            "each sync is the 2-round protocol"
        );
        // Per-round split present and consistent.
        let per_round: usize = rec.stats.rounds.iter().map(|r| r.total_bytes()).sum();
        assert_eq!(per_round, rec.stats.total_bytes());
        assert!(
            rec.stats.total_bytes() < raw_bytes / 4,
            "a sync shipped {}B, close to raw data {}B",
            rec.stats.total_bytes(),
            raw_bytes
        );
    }
    // Later syncs do not grow with the stream prefix length.
    let first = fleet.history.first().unwrap().stats.total_bytes();
    let last = fleet.history.last().unwrap().stats.total_bytes();
    assert!(
        last <= 3 * first,
        "sync bytes grew with the stream: {first}B -> {last}B"
    );
    // And the final sync still clusters well.
    let latest = fleet.latest().unwrap();
    let full = std::slice::from_ref(&stream.points);
    let (cost, _) = evaluate_on_full_data(full, &latest.centers, 2 * t, Objective::Median);
    let shards = partition(&stream.points, 3, PartitionStrategy::Random, &[], 5);
    let batch = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    let (batch_cost, _) =
        evaluate_on_full_data(&shards, &batch.output.centers, 2 * t, Objective::Median);
    assert!(
        cost <= 2.0 * batch_cost,
        "continuous {cost:.1} > 2x batch {batch_cost:.1}"
    );
}

/// Continuous mode under seeded dropout: a site missing a sync only
/// mutes its summary for that one sync (its points return at the next
/// one, faults are re-seeded per sync), so the fleet keeps answering and
/// the final centers stay within the same ≤2x-of-batch quality bound the
/// fault-free engine is held to.
#[test]
fn continuous_sync_tolerates_dropout() {
    let (k, t) = (3, 8);
    let stream = drift_workload(3000, 23);
    let cfg = ContinuousConfig {
        stream: StreamConfig::new(k, t).block(128),
        ..ContinuousConfig::new(k, t)
    }
    .sync_every(750)
    .faults(FaultPlan::with_dropout(3, 0.25));
    let mut fleet = ContinuousCluster::new(2, 3, cfg.clone());
    for (i, p) in stream.points.iter() {
        fleet.ingest(i % 3, p);
    }
    assert_eq!(fleet.history.len(), 4, "every sync completed");
    let dropped: usize = fleet
        .history
        .iter()
        .map(|rec| rec.stats.total_dropouts())
        .sum();
    assert!(dropped > 0, "seed 3 at p=0.25 silences someone");
    // Dropped sites are never charged: a muted site moves zero bytes.
    for rec in &fleet.history {
        for round in &rec.stats.rounds {
            for (i, (&down, &up)) in round
                .coordinator_to_sites
                .iter()
                .zip(&round.sites_to_coordinator)
                .enumerate()
            {
                assert_eq!(down == 0, up == 0, "half-charged site {i}");
            }
        }
    }
    // Quality: the latest (possibly degraded) sync still lands within 2x
    // of the batch protocol on the full stream.
    let latest = fleet.latest().unwrap();
    let full = std::slice::from_ref(&stream.points);
    let (cost, _) = evaluate_on_full_data(full, &latest.centers, 2 * t, Objective::Median);
    let shards = partition(&stream.points, 3, PartitionStrategy::Random, &[], 5);
    let batch = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    let (batch_cost, _) =
        evaluate_on_full_data(&shards, &batch.output.centers, 2 * t, Objective::Median);
    assert!(
        cost <= 2.0 * batch_cost,
        "degraded continuous {cost:.1} > 2x batch {batch_cost:.1}"
    );
    // Replay: the same config reproduces the same sync transcripts.
    let mut again = ContinuousCluster::new(2, 3, cfg);
    for (i, p) in stream.points.iter() {
        again.ingest(i % 3, p);
    }
    for (a, b) in fleet.history.iter().zip(&again.history) {
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
        assert_eq!(a.stats.total_dropouts(), b.stats.total_dropouts());
        assert_eq!(a.centers, b.centers);
    }
}

/// Means and center engines summarize and solve without violating the
/// weight/size invariants.
#[test]
fn means_and_center_streaming_invariants() {
    let stream = drift_workload(1500, 31);
    for cfg in [
        StreamConfig::new(3, 6).block(128).means(),
        StreamConfig::new(3, 6).block(128).center(),
    ] {
        let mut engine = StreamEngine::new(2, cfg);
        for (_, p) in stream.points.iter() {
            engine.push(p);
        }
        engine.flush();
        assert!((engine.live_weight() - 1500.0).abs() < 1e-6);
        let sol = engine.solve();
        assert!(!sol.centers.is_empty());
        assert!(sol.cost.is_finite());
        // Every objective honors the (1+eps)t query budget.
        assert!(sol.excluded_weight <= (1.0 + cfg.eps) * 6.0 + 1e-9);
    }
}
