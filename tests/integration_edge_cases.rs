//! Failure injection and degenerate-input coverage across the whole stack.

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::{
    run_distributed_center, run_distributed_median, run_one_round_median, subquadratic_median,
};
use dpc::uncertain::{run_center_g, run_uncertain_median};

mod test_util;

#[test]
fn high_dimensional_data() {
    // dim = 16: B = 128 bytes/point; everything must still work.
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 3,
        inliers: 240,
        outliers: 5,
        dim: 16,
        ..Default::default()
    });
    let shards = partition(
        &mix.points,
        4,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        1,
    );
    let out = run_distributed_median(&shards, MedianConfig::new(3, 5), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 10, Objective::Median);
    assert!(cost.is_finite() && cost < 1e5, "cost {cost}");
    // Wire size reflects the dimension: round-2 center messages carry
    // 2k * (16*8 + 8) bytes each at minimum.
    let last = out.stats.rounds.last().unwrap();
    assert!(last.sites_to_coordinator.iter().all(|&b| b > 100));
}

#[test]
fn one_dimensional_data() {
    let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64]).collect();
    let ps = PointSet::from_rows(&rows);
    let shards = partition(&ps, 3, PartitionStrategy::RoundRobin, &[], 0);
    let out = run_distributed_center(&shards, CenterConfig::new(2, 3), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 3, Objective::Center);
    assert!(cost <= 9.0);
}

#[test]
fn huge_coordinates_no_overflow() {
    // Coordinates near 1e150: squared distances overflow to inf if the
    // implementation squares before subtracting; ours must stay finite for
    // the median objective and must not panic for means.
    let rows = vec![
        vec![1e150, 0.0],
        vec![1e150 + 1.0, 0.0],
        vec![-1e150, 0.0],
        vec![-1e150 - 1.0, 0.0],
    ];
    let ps = PointSet::from_rows(&rows);
    let shards = partition(&ps, 2, PartitionStrategy::RoundRobin, &[], 0);
    let out = run_distributed_median(&shards, MedianConfig::new(2, 0), RunOptions::default());
    assert_eq!(out.output.centers.len(), 2);
}

#[test]
fn t_equals_n_minus_k() {
    // Everything except the centers can be discarded: cost must be ~0.
    let mix = test_util::mixture(2, 20, 0, MixtureSpec::default().seed);
    let shards = partition(&mix.points, 2, PartitionStrategy::Random, &[], 3);
    let k = 2;
    let t = 18;
    let out = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 2 * t, Objective::Median);
    assert!(cost <= 1e-9, "cost {cost}");
}

#[test]
fn duplicate_heavy_data() {
    // 90% duplicates of two locations + junk: hulls and allocations must
    // tolerate zero marginals everywhere.
    let mut rows = Vec::new();
    for _ in 0..45 {
        rows.push(vec![1.0, 1.0]);
        rows.push(vec![9.0, 9.0]);
    }
    for i in 0..10 {
        rows.push(vec![1000.0 + i as f64, -1000.0]);
    }
    let ps = PointSet::from_rows(&rows);
    let shards = partition(&ps, 4, PartitionStrategy::Random, &[], 7);
    let out = run_distributed_median(&shards, MedianConfig::new(2, 10), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 20, Objective::Median);
    assert!(cost <= 1e-9, "cost {cost}");
}

#[test]
fn k_one_median_is_weighted_medoid_regime() {
    let mix = test_util::mixture(1, 200, 4, MixtureSpec::default().seed);
    let shards = test_util::shard(&mix, 4, PartitionStrategy::Random, 9);
    let out = run_distributed_median(&shards, MedianConfig::new(1, 4), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 8, Objective::Median);
    // 200 points with sigma 1 in 2d: sum of distances to the medoid is
    // ~200 * 1.25.
    assert!(cost < 500.0, "cost {cost}");
}

#[test]
fn more_sites_than_points() {
    let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
    let shards = partition(&ps, 8, PartitionStrategy::RoundRobin, &[], 0);
    assert!(shards.iter().filter(|s| s.is_empty()).count() >= 5);
    let out = run_distributed_median(&shards, MedianConfig::new(1, 1), RunOptions::default());
    assert!(out.output.centers.len() == 1);
    let c = run_distributed_center(&shards, CenterConfig::new(1, 1), RunOptions::default());
    assert!(c.output.centers.len() == 1);
}

#[test]
fn uncertain_single_support_everywhere() {
    // All nodes are point masses with m = 1: T-time is trivial, tentacles
    // are zero, and the protocols must not divide by zero anywhere.
    let mut ns = NodeSet::new(2);
    for i in 0..12 {
        let p = ns.ground.push(&[i as f64, 0.0]);
        ns.nodes.push(UncertainNode::deterministic(p));
    }
    let shards = vec![ns];
    let out = run_uncertain_median(&shards, UncertainConfig::new(2, 1), RunOptions::default());
    let cost = estimate_expected_cost(&shards, &out.output.centers, 2, false, false);
    assert!(cost.is_finite());
    let g = run_center_g(&shards, CenterGConfig::new(2, 1), RunOptions::default());
    assert!(g.output.centers.len() <= 2);
}

#[test]
fn zero_points_one_site_among_many_all_protocols() {
    let mix = test_util::mixture(2, 60, 2, MixtureSpec::default().seed);
    let mut shards = test_util::shard(&mix, 3, PartitionStrategy::Random, 11);
    shards.push(PointSet::new(2));
    let m = run_distributed_median(&shards, MedianConfig::new(2, 2), RunOptions::default());
    assert!(m.output.coordinator_cost.is_finite());
    let c = run_distributed_center(&shards, CenterConfig::new(2, 2), RunOptions::default());
    assert!(c.output.coordinator_cost.is_finite());
    let o = run_one_round_median(&shards, MedianConfig::new(2, 2), RunOptions::default());
    assert!(o.output.coordinator_cost.is_finite());
}

#[test]
fn subquadratic_t_zero_and_tiny_n() {
    let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![5.0], vec![6.0]]);
    let sol = subquadratic_median(&ps, 2, 0, SubquadraticParams::default());
    assert!(sol.cost <= 2.0 + 1e-9);
    assert_eq!(sol.excluded, 0);
}

#[test]
fn unstructured_random_points_never_panic() {
    // No planted structure at all — uniform noise through every protocol.
    use rand::Rng;
    let mut rng = test_util::rng(0xedce);
    let rows: Vec<Vec<f64>> = (0..120)
        .map(|_| vec![rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)])
        .collect();
    let ps = PointSet::from_rows(&rows);
    let shards = partition(&ps, 5, PartitionStrategy::RoundRobin, &[], 0);
    let m = run_distributed_median(&shards, MedianConfig::new(3, 6), RunOptions::default());
    let (mc, _) = evaluate_on_full_data(&shards, &m.output.centers, 12, Objective::Median);
    assert!(mc.is_finite());
    let c = run_distributed_center(&shards, CenterConfig::new(3, 6), RunOptions::default());
    let (cc, _) = evaluate_on_full_data(&shards, &c.output.centers, 6, Objective::Center);
    assert!(cc.is_finite());
}
