//! Property: `Job`-driven runs are indistinguishable from the legacy
//! free functions — byte-identical `CommStats` and identical outputs —
//! for Algorithm 1 (median/means), Algorithm 2 (center), the 1-round
//! baselines, and the uncertain protocol, across the Inline and Channel
//! transports.
//!
//! This is the contract that lets the deprecated shims delegate safely:
//! the API is a front door, not a different building.

use dpc::core::{
    run_distributed_center, run_distributed_median, run_one_round_center, run_one_round_median,
};
use dpc::prelude::*;
use dpc::uncertain::run_uncertain_median as legacy_uncertain_median;
use proptest::prelude::*;

mod test_util;

/// The two in-process execution modes: Inline (sequential) and the
/// persistent-worker Channel backend.
fn options_for(parallel: bool) -> RunOptions {
    if parallel {
        RunOptions::new()
    } else {
        RunOptions::sequential()
    }
}

fn apply_mode(builder: JobBuilder, parallel: bool) -> JobBuilder {
    if parallel {
        builder
    } else {
        builder.sequential()
    }
}

/// Per-round, per-site byte vectors of a legacy run.
fn legacy_bytes(stats: &CommStats) -> Vec<(Vec<usize>, Vec<usize>)> {
    stats
        .rounds
        .iter()
        .map(|r| {
            (
                r.coordinator_to_sites.clone(),
                r.sites_to_coordinator.clone(),
            )
        })
        .collect()
}

/// Same view over an artifact.
fn artifact_bytes(a: &Artifact) -> Vec<(Vec<usize>, Vec<usize>)> {
    a.round_stats
        .iter()
        .map(|r| (r.bytes_down.clone(), r.bytes_up.clone()))
        .collect()
}

fn centers_rows(ps: &PointSet) -> Vec<Vec<f64>> {
    (0..ps.len()).map(|i| ps.point(i).to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn median_and_means_match_legacy(
        k in 2usize..4,
        t in 0usize..6,
        sites in 2usize..5,
        means in any::<bool>(),
        parallel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mix = test_util::mixture(k, 150, t, seed);
        let shards = partition(&mix.points, sites, PartitionStrategy::Random, &mix.outlier_ids, seed ^ 0xa5);

        let mut cfg = MedianConfig::new(k, t);
        if means {
            cfg = cfg.means();
        }
        let legacy = run_distributed_median(&shards, cfg, options_for(parallel));

        let builder = if means { Job::means(k, t) } else { Job::median(k, t) };
        let artifact = apply_mode(builder.shards(shards.clone()), parallel)
            .validate()
            .unwrap()
            .run();

        prop_assert_eq!(artifact.rounds, legacy.stats.num_rounds());
        prop_assert_eq!(artifact_bytes(&artifact), legacy_bytes(&legacy.stats));
        prop_assert_eq!(&artifact.centers, &centers_rows(&legacy.output.centers));
        let objective = if means { Objective::Means } else { Objective::Median };
        let (cost, excluded) = evaluate_on_full_data(&shards, &legacy.output.centers, 2 * t, objective);
        prop_assert_eq!(artifact.cost, cost);
        prop_assert_eq!(artifact.budget, excluded);
    }

    #[test]
    fn center_matches_legacy(
        k in 2usize..4,
        t in 0usize..6,
        sites in 2usize..5,
        parallel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mix = test_util::mixture(k, 150, t, seed);
        let shards = partition(&mix.points, sites, PartitionStrategy::Random, &mix.outlier_ids, seed ^ 0x5a);
        let legacy = run_distributed_center(&shards, CenterConfig::new(k, t), options_for(parallel));
        let artifact = apply_mode(Job::center(k, t).shards(shards.clone()), parallel)
            .validate()
            .unwrap()
            .run();
        prop_assert_eq!(artifact_bytes(&artifact), legacy_bytes(&legacy.stats));
        prop_assert_eq!(&artifact.centers, &centers_rows(&legacy.output.centers));
    }

    #[test]
    fn one_round_baselines_match_legacy(
        k in 2usize..4,
        t in 0usize..5,
        sites in 2usize..4,
        center in any::<bool>(),
        parallel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mix = test_util::mixture(k, 120, t, seed);
        let shards = partition(&mix.points, sites, PartitionStrategy::Random, &mix.outlier_ids, seed ^ 0x77);
        let (legacy_bytes_v, legacy_centers, objective) = if center {
            let out = run_one_round_center(&shards, CenterConfig::new(k, t), options_for(parallel));
            (legacy_bytes(&out.stats), centers_rows(&out.output.centers), Objective::Center)
        } else {
            let out = run_one_round_median(&shards, MedianConfig::new(k, t), options_for(parallel));
            (legacy_bytes(&out.stats), centers_rows(&out.output.centers), Objective::Median)
        };
        let artifact = apply_mode(
            Job::one_round(objective, k, t).shards(shards.clone()),
            parallel,
        )
        .validate()
        .unwrap()
        .run();
        prop_assert_eq!(artifact.rounds, 1);
        prop_assert_eq!(artifact_bytes(&artifact), legacy_bytes_v);
        prop_assert_eq!(&artifact.centers, &legacy_centers);
    }

    #[test]
    fn uncertain_matches_legacy(
        k in 2usize..4,
        t in 0usize..4,
        sites in 2usize..4,
        parallel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let shards = uncertain_mixture(UncertainSpec {
            clusters: k,
            nodes_per_site: 10,
            sites,
            noise_nodes: t,
            seed,
            ..Default::default()
        });
        let mut cfg = UncertainConfig::new(k, t);
        cfg.eps = 1.0;
        let legacy = legacy_uncertain_median(&shards, cfg, options_for(parallel));
        let artifact = apply_mode(Job::uncertain_median(k, t).data(shards.clone()), parallel)
            .validate()
            .unwrap()
            .run();
        prop_assert_eq!(artifact_bytes(&artifact), legacy_bytes(&legacy.stats));
        prop_assert_eq!(&artifact.centers, &centers_rows(&legacy.output.centers));
        let budget = 2 * t;
        let cost = estimate_expected_cost(&shards, &legacy.output.centers, budget, false, false);
        prop_assert_eq!(artifact.cost, cost);
    }
}
