//! End-to-end tests of Theorem 3.10's subquadratic centralized solver.

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::subquadratic_median;
use std::time::Instant;

mod test_util;

fn instance(n: usize, t: usize, seed: u64) -> Mixture {
    test_util::mixture(4, n, t, seed)
}

#[test]
fn quality_within_constant_of_quadratic() {
    let mix = instance(900, 12, 211);
    let k = 4;
    let sub = subquadratic_median(&mix.points, k, 12, SubquadraticParams::default());
    // Quadratic reference at the same exclusion budget.
    let w = WeightedSet::unit(mix.points.len());
    let m = EuclideanMetric::new(&mix.points);
    let quad = median_bicriteria(
        &m,
        &w,
        k,
        12.0,
        Objective::Median,
        BicriteriaParams::default(),
    );
    assert!(
        sub.cost <= 8.0 * quad.cost.max(1.0),
        "subquadratic {} vs quadratic {}",
        sub.cost,
        quad.cost
    );
}

#[test]
fn excludes_planted_outliers() {
    let t = 10;
    let mix = instance(700, t, 223);
    let sol = subquadratic_median(&mix.points, 4, t, SubquadraticParams::default());
    for &o in &mix.outlier_ids {
        let op = mix.points.point(o);
        for c in 0..sol.centers.len() {
            let d = dpc::metric::points::sq_dist(sol.centers.point(c), op).sqrt();
            assert!(d > 1000.0, "center on planted outlier");
        }
    }
    assert!(sol.excluded <= 2 * t);
}

#[test]
fn faster_than_quadratic_at_scale() {
    // Wall-clock crossover: by n = 6000 the self-simulation must beat the
    // direct quadratic solver (both in debug-ish test profile, same
    // machine, same instance).
    let n = 6000;
    let t = 30;
    let mix = instance(n, t, 227);
    let k = 4;

    let t0 = Instant::now();
    let _sub = subquadratic_median(&mix.points, k, t, SubquadraticParams::default());
    let sub_time = t0.elapsed();

    let w = WeightedSet::unit(mix.points.len());
    let m = EuclideanMetric::new(&mix.points);
    let t1 = Instant::now();
    let _quad = median_bicriteria(
        &m,
        &w,
        k,
        t as f64,
        Objective::Median,
        BicriteriaParams::default(),
    );
    let quad_time = t1.elapsed();

    assert!(
        sub_time < quad_time,
        "subquadratic {sub_time:?} !< quadratic {quad_time:?} at n={n}"
    );
}

#[test]
fn deeper_recursion_still_correct() {
    let mix = instance(1200, 8, 229);
    let params = SubquadraticParams {
        levels: 2,
        base_threshold: 100,
        ..Default::default()
    };
    let sol = subquadratic_median(&mix.points, 4, 8, params);
    assert!(sol.cost < 1e5, "cost {}", sol.cost);
}

#[test]
fn means_objective_supported() {
    let mix = instance(600, 8, 233);
    let params = SubquadraticParams {
        means: true,
        ..Default::default()
    };
    let sol = subquadratic_median(&mix.points, 4, 8, params);
    assert!(sol.cost < 1e7, "means cost {}", sol.cost);
}
