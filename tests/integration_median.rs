//! End-to-end tests of the distributed `(k,t)`-median/means protocols
//! against centralized references and the paper's guarantees.

use dpc::prelude::*;
// This suite pins the legacy entry points at their crate-level paths
// (not the deprecated facade shims); Job-driven equivalence is covered
// by proptest_api.rs.
use dpc::core::{run_distributed_median, run_one_round_median};

mod test_util;

fn mixture_shards(
    sites: usize,
    inliers: usize,
    outliers: usize,
    strategy: PartitionStrategy,
    seed: u64,
) -> (Vec<PointSet>, Mixture) {
    test_util::mixture_shards(4, sites, inliers, outliers, strategy, seed, 1)
}

/// The centralized bicriteria cost on the merged data — the quality
/// reference every distributed run must be within a constant factor of.
fn centralized_cost(shards: &[PointSet], k: usize, t: usize, budget: usize) -> f64 {
    let all = merge_shards(shards);
    let w = WeightedSet::unit(all.len());
    let m = EuclideanMetric::new(&all);
    let sol = median_bicriteria(
        &m,
        &w,
        k,
        t as f64,
        Objective::Median,
        BicriteriaParams::default(),
    );
    // Re-evaluate at the same budget used for the distributed solution.
    let ids: Vec<usize> = sol.centers.clone();
    let centers = all.subset(&ids);
    let (c, _) = evaluate_on_full_data(&[all], &centers, budget, Objective::Median);
    c
}

#[test]
fn median_within_constant_of_centralized_across_partitions() {
    let (k, t) = (4, 12);
    for strategy in [
        PartitionStrategy::Random,
        PartitionStrategy::RoundRobin,
        PartitionStrategy::ByBlock,
        PartitionStrategy::OutlierSkew,
    ] {
        let (shards, _) = mixture_shards(6, 600, t, strategy, 11);
        let out = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
        let budget = 2 * t;
        let (dist_cost, _) =
            evaluate_on_full_data(&shards, &out.output.centers, budget, Objective::Median);
        let cen_cost = centralized_cost(&shards, k, t, budget);
        assert!(
            dist_cost <= 8.0 * cen_cost.max(1.0),
            "{strategy:?}: distributed {dist_cost} vs centralized {cen_cost}"
        );
    }
}

#[test]
fn planted_outliers_are_excluded() {
    let (k, t) = (4, 10);
    let (shards, mix) = mixture_shards(5, 500, t, PartitionStrategy::Random, 23);
    let out = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    // No returned center may sit anywhere near a planted outlier.
    for &o in &mix.outlier_ids {
        let op = mix.points.point(o);
        for c in 0..out.output.centers.len() {
            let d = dpc::metric::points::sq_dist(out.output.centers.point(c), op).sqrt();
            assert!(d > 1000.0, "center {c} sits on planted outlier {o}");
        }
    }
}

#[test]
fn outlier_budget_bound_sigma_ti_le_3t() {
    // Lemma 3.5: with rho = 2, sum of shipped t_i is at most 3t.
    let (k, t) = (3, 16);
    for seed in [1u64, 2, 3] {
        let (shards, _) = mixture_shards(4, 400, t, PartitionStrategy::OutlierSkew, seed);
        let out = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
        assert!(
            out.output.shipped_outliers <= (3 * t) as u64,
            "seed {seed}: shipped {} > 3t = {}",
            out.output.shipped_outliers,
            3 * t
        );
    }
}

#[test]
fn means_protocol_quality() {
    let (k, t) = (4, 8);
    let (shards, _) = mixture_shards(4, 400, t, PartitionStrategy::Random, 31);
    let out = run_distributed_median(
        &shards,
        MedianConfig::new(k, t).means(),
        RunOptions::default(),
    );
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 2 * t, Objective::Means);
    // 400 inliers with sigma=1 in 2d: per-point E d^2 ~ 2, so ~800 plus
    // slack; paying for even one planted outlier costs > 1e8.
    assert!(cost < 10_000.0, "means cost {cost}");
}

#[test]
fn delta_variant_comm_decreases_with_delta_quality_holds() {
    let (k, t) = (3, 24);
    let (shards, _) = mixture_shards(6, 600, t, PartitionStrategy::Random, 41);
    let ship = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    let counts = run_distributed_median(
        &shards,
        MedianConfig::new(k, t).counts_only(0.25),
        RunOptions::default(),
    );
    assert!(
        counts.stats.upstream_bytes() < ship.stats.upstream_bytes(),
        "counts-only {}B !< ship {}B",
        counts.stats.upstream_bytes(),
        ship.stats.upstream_bytes()
    );
    // Quality with the (2+eps+delta)t budget.
    let budget = ((2.0 + 1.0 + 0.25) * t as f64) as usize;
    let (cost, _) =
        evaluate_on_full_data(&shards, &counts.output.centers, budget, Objective::Median);
    let cen = centralized_cost(&shards, k, t, budget);
    assert!(
        cost <= 10.0 * cen.max(1.0),
        "delta-variant {cost} vs centralized {cen}"
    );
}

#[test]
fn one_round_vs_two_round_communication_scaling() {
    // Fix k, grow s with t: 1-round comm grows ~ s*t, 2-round ~ sk + t.
    let (k, t) = (3, 32);
    let mut ratios = Vec::new();
    for &sites in &[4usize, 16] {
        let (shards, _) = mixture_shards(sites, 800, t, PartitionStrategy::Random, 53);
        let cfg = MedianConfig::new(k, t);
        let one = run_one_round_median(&shards, cfg, RunOptions::default());
        let two = run_distributed_median(&shards, cfg, RunOptions::default());
        ratios.push(one.stats.upstream_bytes() as f64 / two.stats.upstream_bytes() as f64);
    }
    // The advantage must widen as s grows.
    assert!(
        ratios[1] > ratios[0],
        "1-round/2-round byte ratio should grow with s: {ratios:?}"
    );
    assert!(
        ratios[1] > 1.5,
        "at s=16 the 2-round protocol must win clearly: {ratios:?}"
    );
}

#[test]
fn deterministic_given_seeds() {
    let (k, t) = (3, 8);
    let (shards, _) = mixture_shards(4, 300, t, PartitionStrategy::Random, 67);
    let a = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    let b = run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default());
    assert_eq!(a.output.centers, b.output.centers);
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
}

#[test]
fn degenerate_all_points_identical() {
    let rows = vec![vec![3.0, 3.0]; 40];
    let ps = PointSet::from_rows(&rows);
    let shards = partition(&ps, 4, PartitionStrategy::RoundRobin, &[], 0);
    let out = run_distributed_median(&shards, MedianConfig::new(2, 4), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 8, Objective::Median);
    assert_eq!(cost, 0.0);
}

#[test]
fn sites_fewer_points_than_k() {
    // 10 sites, 3 points each, k = 5.
    let mix = test_util::mixture(5, 30, 2, MixtureSpec::default().seed);
    let shards = test_util::shard(&mix, 10, PartitionStrategy::RoundRobin, 3);
    let out = run_distributed_median(&shards, MedianConfig::new(5, 2), RunOptions::default());
    let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 4, Objective::Median);
    assert!(cost.is_finite());
}
