//! End-to-end observability: `Job::trace`/`Job::metrics` through the
//! front door, the golden-pinned `dpc.trace/v1` JSONL schema, trace
//! byte-identity across all three transports, exact reconciliation of
//! the metrics digest with the artifact's byte accounting, the Chrome
//! export, and the no-effect-flag warnings.

use dpc::obs::{json, Trace};
use dpc::prelude::*;

mod test_util;

/// The pinned chaos run: faults on, every transport knob explicit, a
/// fixed thread budget so kernel counters don't vary with the machine.
fn traced_job(path: &std::path::Path) -> JobBuilder {
    Job::median(3, 4)
        .sites(3)
        .seed(11)
        .threads(2)
        .points(test_util::mixture(3, 240, 4, 11).points)
        .dropout(0.25)
        .fault_seed(0x5eed)
        .timeout(std::time::Duration::from_millis(5))
        .retries(1)
        .trace(path)
        .metrics(true)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dpc_obs_{}_{name}", std::process::id()))
}

/// Golden-file pin of the JSONL trace schema, plus the tentpole
/// acceptance: the trace of a seeded faulted run is *byte-identical*
/// on the inline, channel-worker, and loopback TCP transports.
#[test]
fn trace_schema_is_pinned_and_transport_invariant() {
    let path = temp_path("golden.jsonl");
    let artifact = traced_job(&path).validate().unwrap().run();
    let actual = std::fs::read_to_string(&path).unwrap();

    // Pin against the checked-in snapshot. Run with DPC_BLESS=1 to
    // regenerate after a reviewed schema change.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/trace.jsonl"
    );
    if std::env::var_os("DPC_BLESS").is_some() {
        std::fs::write(golden_path, &actual).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("tests/golden/trace.jsonl missing; run with DPC_BLESS=1 to create it");
    assert_eq!(
        actual, golden,
        "trace JSONL drifted from tests/golden/trace.jsonl (DPC_BLESS=1 regenerates)"
    );

    // The run must actually have been chaotic, or the pin proves little.
    assert!(artifact.round_stats.iter().any(|r| r.degraded));
    assert!(actual.lines().any(|l| l.contains("\"ev\":\"fault\"")));

    // Every line is one standalone JSON object.
    for line in actual.lines() {
        json::parse(line).unwrap();
    }

    // Identical runs over the worker and socket backends record the
    // same bytes; only wall-clock (which the schema omits) may differ.
    for transport in [TransportKind::Channel, TransportKind::Tcp] {
        let p = temp_path(&format!("golden_{}.jsonl", transport.name()));
        traced_job(&p)
            .transport(transport)
            .validate()
            .unwrap()
            .run();
        let other = std::fs::read_to_string(&p).unwrap();
        assert_eq!(other, actual, "trace diverged on {transport:?}");
        std::fs::remove_file(&p).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}

/// The artifact's metrics digest reconciles bit-for-bit with both the
/// replayed trace and the artifact's own communication accounting.
#[test]
fn metrics_digest_reconciles_with_artifact_accounting() {
    let path = temp_path("metrics.jsonl");
    let artifact = traced_job(&path).validate().unwrap().run();
    let m = artifact.metrics.as_ref().expect("metrics(true) requested");

    // Digest vs the artifact's own roll-up.
    assert_eq!(m.total_bytes, artifact.bytes as u64);
    assert_eq!(m.rounds, artifact.rounds as u64);
    let sum = |f: fn(&RoundBreakdown) -> usize| -> u64 {
        artifact.round_stats.iter().map(f).sum::<usize>() as u64
    };
    assert_eq!(m.dropouts, sum(|r| r.dropouts));
    assert_eq!(m.retries, sum(|r| r.retries));
    assert_eq!(
        m.degraded_rounds,
        artifact.round_stats.iter().filter(|r| r.degraded).count() as u64
    );

    // Digest vs the trace replayed from disk.
    let replay = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let replayed = replay.metrics().summary();
    assert_eq!(replayed.total_bytes, m.total_bytes);
    assert_eq!(replayed.down_bytes, m.down_bytes);
    assert_eq!(replayed.up_bytes, m.up_bytes);
    assert_eq!(replayed.rounds, m.rounds);
    assert_eq!(replayed.dropouts, m.dropouts);
    assert_eq!(replayed.retries, m.retries);
    assert_eq!(replayed.counters, m.counters);

    // The digest survives the artifact's own JSON round trip.
    let back = Artifact::from_json(&artifact.to_json()).unwrap();
    assert_eq!(back.metrics.as_ref(), Some(m));
    assert!(artifact.text().contains("metrics:"));
    std::fs::remove_file(&path).unwrap();
}

/// The Chrome export is one JSON document Perfetto can load.
#[test]
fn chrome_export_is_valid_json() {
    let path = temp_path("chrome.json");
    traced_job(&path)
        .trace_format(TraceFormat::Chrome)
        .validate()
        .unwrap()
        .run();
    let doc = std::fs::read_to_string(&path).unwrap();
    let v = json::parse(doc.trim()).unwrap();
    let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!evs.is_empty());
    std::fs::remove_file(&path).unwrap();
}

/// No-effect observability flags surface as structured warnings, and
/// jobs that drive no protocol rounds still get a run-span trace.
#[test]
fn observability_flags_warn_when_inert() {
    let pts = test_util::mixture(3, 120, 4, 7).points;

    // A trace on a protocol-free job warns but still writes the file.
    let path = temp_path("subq.jsonl");
    let vj = Job::subquadratic(3, 4)
        .points(pts.clone())
        .trace(&path)
        .validate()
        .unwrap();
    assert!(vj
        .warnings()
        .iter()
        .any(|w| matches!(w, ConfigWarning::TraceWithoutProtocol { .. })));
    vj.run();
    let trace = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(!trace
        .events
        .iter()
        .any(|e| matches!(e, dpc::obs::Event::RoundEnd { .. })));
    std::fs::remove_file(&path).unwrap();

    // A format without a path is a no-op worth flagging.
    let vj = Job::median(3, 4)
        .points(pts.clone())
        .trace_format(TraceFormat::Chrome)
        .validate()
        .unwrap();
    assert!(vj
        .warnings()
        .iter()
        .any(|w| matches!(w, ConfigWarning::TraceFormatWithoutTrace)));

    // Fully configured observability on a protocol job: no warnings.
    let vj = Job::median(3, 4)
        .points(pts)
        .trace(temp_path("ok.jsonl"))
        .metrics(true)
        .validate()
        .unwrap();
    assert!(vj.warnings().is_empty(), "{:?}", vj.warnings());
}

/// A continuous streaming session traces its syncs and counts them in
/// the metrics digest.
#[test]
fn continuous_session_traces_syncs() {
    let path = temp_path("continuous.jsonl");
    let artifact = Job::continuous(3, 4)
        .block(32)
        .sync_every(100)
        .threads(2)
        .points(test_util::mixture(3, 240, 4, 13).points)
        .trace(&path)
        .metrics(true)
        .validate()
        .unwrap()
        .run();
    assert_eq!(
        artifact.syncs,
        Some(artifact.metrics.as_ref().unwrap().syncs as usize)
    );
    let trace = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let syncs = trace
        .events
        .iter()
        .filter(|e| matches!(e, dpc::obs::Event::SyncEnd { .. }))
        .count();
    assert!(syncs > 0, "sync_every(100) over 240 points must sync");
    assert_eq!(syncs as u64, artifact.metrics.unwrap().syncs);
    std::fs::remove_file(&path).unwrap();
}
