//! Shared fixtures for the root integration suites.
//!
//! Every suite needs the same shape of setup: a seeded Gaussian mixture
//! with planted outliers, partitioned across simulated sites. Each test
//! binary compiles this module separately (`mod test_util;`), so the
//! helpers are duplicated in object code but written once.

// Each binary uses only a subset of these helpers.
#![allow(dead_code)]

use dpc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for ad-hoc randomness inside tests.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The standard point fixture: `clusters` well-separated Gaussians with
/// `inliers` total points and `outliers` planted far away; all other
/// mixture knobs stay at their defaults.
pub fn mixture(clusters: usize, inliers: usize, outliers: usize, seed: u64) -> Mixture {
    gaussian_mixture(MixtureSpec {
        clusters,
        inliers,
        outliers,
        seed,
        ..Default::default()
    })
}

/// Partitions a mixture across `sites` simulated sites.
pub fn shard(mix: &Mixture, sites: usize, strategy: PartitionStrategy, seed: u64) -> Vec<PointSet> {
    partition(&mix.points, sites, strategy, &mix.outlier_ids, seed)
}

/// Generate-and-partition in one step — the setup almost every end-to-end
/// test starts from. The partition is seeded independently (`seed ^ salt`)
/// so shard boundaries decorrelate from point positions.
pub fn mixture_shards(
    clusters: usize,
    sites: usize,
    inliers: usize,
    outliers: usize,
    strategy: PartitionStrategy,
    seed: u64,
    salt: u64,
) -> (Vec<PointSet>, Mixture) {
    let mix = mixture(clusters, inliers, outliers, seed);
    let shards = shard(&mix, sites, strategy, seed ^ salt);
    (shards, mix)
}

/// The standard uncertain-node fixture: 3 clusters of honest nodes plus
/// `noise` nodes with scattered support, spread over 4 sites.
pub fn uncertain_shards(seed: u64, noise: usize) -> Vec<NodeSet> {
    uncertain_shards_sized(seed, noise, 15)
}

/// [`uncertain_shards`] with an explicit per-site node count, for tests
/// that scale the data while holding everything else fixed.
pub fn uncertain_shards_sized(seed: u64, noise: usize, nodes_per_site: usize) -> Vec<NodeSet> {
    uncertain_mixture(UncertainSpec {
        clusters: 3,
        nodes_per_site,
        sites: 4,
        noise_nodes: noise,
        support: 3,
        jitter: 1.5,
        separation: 120.0,
        seed,
    })
}
