//! Chaos suite for the fault-injected transport runtime: seeded dropout,
//! crashes, stragglers, and timeout/retry schedules driven through the
//! real protocols. Faults are decided by a pure hash of
//! `(seed, site, round, attempt)` and all time is simulated, so every
//! test here is bit-for-bit reproducible — "chaos" with a replay button.

mod test_util;

use dpc::prelude::*;
use std::time::Duration;

/// Two runs' communication accounting, compared round by round: bytes in
/// both directions, fault counters, and the simulated clock.
fn assert_stats_identical(a: &CommStats, b: &CommStats) {
    assert_eq!(a.num_rounds(), b.num_rounds());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.coordinator_to_sites, rb.coordinator_to_sites);
        assert_eq!(ra.sites_to_coordinator, rb.sites_to_coordinator);
        assert_eq!(ra.dropouts, rb.dropouts);
        assert_eq!(ra.retries, rb.retries);
        assert_eq!(ra.degraded, rb.degraded);
        assert_eq!(ra.network, rb.network);
    }
}

/// Acceptance: an identical fault seed reproduces an identical execution
/// — same dropped sites, same centers, same byte charges — on the
/// inline, channel-worker, and TCP backends alike.
#[test]
fn median_chaos_run_is_identical_across_backends() {
    let (shards, _) = test_util::mixture_shards(3, 6, 360, 6, PartitionStrategy::Random, 17, 0xab);
    let faults = FaultPlan::with_dropout(11, 0.3);
    let base = RunOptions::sequential().faults(faults.clone());
    let inline = dpc::core::run_distributed_median(&shards, MedianConfig::new(3, 6), base.clone());
    assert_eq!(inline.output.centers.len(), 3);
    assert!(
        inline.stats.degraded_rounds() > 0,
        "seed 11 at p=0.3 over 6 sites drops someone"
    );
    for options in [
        RunOptions::new().faults(faults.clone()),
        RunOptions::new()
            .faults(faults.clone())
            .transport(TransportKind::Tcp),
    ] {
        let run = dpc::core::run_distributed_median(&shards, MedianConfig::new(3, 6), options);
        assert_eq!(run.output.centers, inline.output.centers);
        assert_stats_identical(&run.stats, &inline.stats);
    }
    // Replay: the same options give the same execution again.
    let again = dpc::core::run_distributed_median(&shards, MedianConfig::new(3, 6), base);
    assert_eq!(again.output.centers, inline.output.centers);
    assert_stats_identical(&again.stats, &inline.stats);
}

/// Acceptance: with ≤ f sites silenced per round, Algorithms 1 and 2
/// both complete over the responders, still return `k` centers, and the
/// degraded solution stays comparable to the fault-free one.
#[test]
fn protocols_degrade_gracefully_under_dropout() {
    let (shards, mix) =
        test_util::mixture_shards(3, 6, 360, 6, PartitionStrategy::Random, 29, 0xcd);
    let full = std::slice::from_ref(&mix.points);
    let faults = FaultPlan::with_dropout(11, 0.3);

    let clean = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 6),
        RunOptions::sequential(),
    );
    let faulty = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 6),
        RunOptions::sequential().faults(faults.clone()),
    );
    assert_eq!(faulty.output.centers.len(), 3);
    assert!(faulty.stats.total_dropouts() > 0);
    let (clean_cost, _) = evaluate_on_full_data(full, &clean.output.centers, 12, Objective::Median);
    let (faulty_cost, _) =
        evaluate_on_full_data(full, &faulty.output.centers, 12, Objective::Median);
    assert!(
        faulty_cost <= 5.0 * clean_cost.max(1.0),
        "degraded median cost {faulty_cost:.1} vs clean {clean_cost:.1}"
    );

    let center = dpc::core::run_distributed_center(
        &shards,
        CenterConfig::new(3, 6),
        RunOptions::sequential().faults(faults),
    );
    assert_eq!(center.output.centers.len(), 3);
    assert!(center.stats.degraded_rounds() > 0);
    let (center_cost, _) =
        evaluate_on_full_data(full, &center.output.centers, 12, Objective::Center);
    assert!(center_cost.is_finite());
}

/// A planned crash silences exactly the planned site from its crash
/// round on: zero bytes charged in either direction afterwards.
#[test]
fn crashed_site_charges_nothing_from_its_round() {
    let (shards, _) = test_util::mixture_shards(3, 4, 240, 4, PartitionStrategy::Random, 7, 0xef);
    let faults = FaultPlan::none().crash(2, 1);
    let run = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 4),
        RunOptions::sequential().faults(faults),
    );
    assert_eq!(run.output.centers.len(), 3);
    let rounds = &run.stats.rounds;
    // Round 0 is clean; from round 1 on, site 2 is gone.
    assert_eq!(rounds[0].dropouts, 0);
    assert!(rounds[0].coordinator_to_sites[2] > 0);
    for r in &rounds[1..] {
        assert_eq!(r.coordinator_to_sites[2], 0);
        assert_eq!(r.sites_to_coordinator[2], 0);
        assert_eq!(r.dropouts, 1);
        assert!(r.degraded);
    }
}

/// Timeout/retry semantics: every failed attempt charges its timeout to
/// the simulated clock, and retries can rescue a straggler the base
/// schedule would have timed out.
#[test]
fn timeouts_charge_simulated_time_and_retries_are_counted() {
    let (shards, _) = test_util::mixture_shards(3, 6, 300, 5, PartitionStrategy::Random, 41, 0x11);
    let timeout = Duration::from_millis(50);
    let faults = FaultPlan::with_dropout(11, 0.3).with_timeout(timeout, 2);
    let run = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 5),
        RunOptions::sequential().faults(faults),
    );
    assert_eq!(run.output.centers.len(), 3);
    let retries = run.stats.total_retries();
    assert!(retries > 0, "p=0.3 with 2 retries re-attempts something");
    // Each round with a failed attempt owes at least one 50 ms timeout.
    for r in &run.stats.rounds {
        if r.retries > 0 || r.dropouts > 0 {
            assert!(
                r.network >= timeout,
                "round with failures finished in {:?}",
                r.network
            );
        }
    }
    // Retries strictly help attempt-0 failures: the no-retry run at the
    // same seed drops at least as many sites in round 0.
    let no_retry = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 5),
        RunOptions::sequential().faults(FaultPlan::with_dropout(11, 0.3)),
    );
    assert!(no_retry.stats.rounds[0].dropouts >= run.stats.rounds[0].dropouts);
}

/// Stragglers below the timeout only slow the simulated round down;
/// nothing is dropped and the transcript stays byte-identical to the
/// straggler-free run.
#[test]
fn stragglers_slow_rounds_without_changing_bytes() {
    let (shards, _) = test_util::mixture_shards(3, 4, 240, 4, PartitionStrategy::Random, 53, 0x22);
    let clean = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 4),
        RunOptions::sequential(),
    );
    let slowed = dpc::core::run_distributed_median(
        &shards,
        MedianConfig::new(3, 4),
        RunOptions::sequential().faults(
            // Always straggle, up to 5 ms, no timeout: all delivered.
            FaultPlan::none().stragglers(0.999, Duration::from_millis(5)),
        ),
    );
    assert_eq!(clean.output.centers, slowed.output.centers);
    assert_eq!(clean.stats.total_bytes(), slowed.stats.total_bytes());
    assert_eq!(slowed.stats.total_dropouts(), 0);
    for (c, s) in clean.stats.rounds.iter().zip(&slowed.stats.rounds) {
        assert_eq!(c.coordinator_to_sites, s.coordinator_to_sites);
        assert_eq!(c.sites_to_coordinator, s.sites_to_coordinator);
        assert!(s.network >= c.network, "straggling never speeds a round up");
    }
    assert!(slowed.stats.network_time() > clean.stats.network_time());
}

/// The typed front door carries the whole story: fault knobs in, a
/// degraded-round record out, surviving a JSON round trip.
#[test]
fn job_artifact_records_chaos() {
    let mix = test_util::mixture(3, 360, 6, 67);
    let artifact = Job::median(3, 6)
        .sites(6)
        .dropout(0.3)
        .fault_seed(11)
        .timeout(Duration::from_millis(20))
        .retries(1)
        .points(mix.points)
        .validate()
        .expect("fault knobs validate")
        .run();
    assert_eq!(artifact.centers.len(), 3);
    assert!(artifact.degraded_rounds() > 0);
    assert!(artifact.total_dropouts() > 0);
    let back = Artifact::from_json(&artifact.to_json()).unwrap();
    assert_eq!(back.to_json(), artifact.to_json());
    assert_eq!(back.degraded_rounds(), artifact.degraded_rounds());
    for (a, b) in artifact.round_stats.iter().zip(&back.round_stats) {
        assert_eq!(
            (a.dropouts, a.retries, a.degraded),
            (b.dropouts, b.retries, b.degraded)
        );
    }
}
