//! The round-based protocol driver.
//!
//! Algorithms implement [`Site`] (per-site logic) and [`Coordinator`]
//! (central logic); [`run_protocol`] picks a [`Transport`] backend from
//! [`RunOptions`], then alternates coordinator and sites until the
//! coordinator finishes, charging every payload byte, timing every
//! compute phase, and folding the [`LinkModel`] into simulated network
//! time.

use crate::channel::ChannelTransport;
use crate::fault::{Attempt, FaultPlan};
use crate::mux::MuxTransport;
use crate::stats::{CommStats, RoundStats};
use crate::tcp::TcpTransport;
use crate::transport::{InlineTransport, LinkModel, Transport, TransportKind};
use bytes::Bytes;
use dpc_codec::Encoding;
use dpc_obs::json::dur_to_ns;
use dpc_obs::{Counter, Event, FaultKind, RecorderHandle};
use std::time::{Duration, Instant};

/// Per-site protocol logic.
///
/// `Send` so sites can run on worker threads; each site owns its shard of
/// the input.
pub trait Site: Send {
    /// Handles the coordinator's message for `round` and produces the reply.
    ///
    /// Round numbering starts at 0. An empty message is a legal "kick".
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes;
}

/// What the coordinator wants to do next.
pub enum CoordinatorStep {
    /// Send the same message to every site.
    Broadcast(Bytes),
    /// Send an individual message to each site (length must equal the
    /// number of sites).
    Messages(Vec<Bytes>),
    /// Terminate the protocol.
    Finish,
}

/// Central protocol logic.
pub trait Coordinator {
    /// The protocol's result type.
    type Output;

    /// Consumes the site replies of the previous round (empty on the
    /// first call) and decides the next step. A `None` entry is a site
    /// the [`FaultPlan`] failed that round: fault-tolerant coordinators
    /// proceed over the responders, others should panic with a clear
    /// message rather than silently mis-merge.
    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep;

    /// Produces the final output after [`CoordinatorStep::Finish`].
    fn finish(self) -> Self::Output;
}

/// Runner knobs.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Execute sites concurrently (`true`, the realistic mode) or
    /// sequentially on the caller's thread (deterministic timing, useful
    /// under test). Only meaningful for [`TransportKind::Channel`]; the
    /// TCP backend always runs real site workers.
    pub parallel: bool,
    /// Safety cap on rounds (a protocol that exceeds it panics — all
    /// algorithms in this workspace finish in 1–2 rounds plus the kick).
    pub max_rounds: usize,
    /// Which backend carries the messages.
    pub transport: TransportKind,
    /// Simulated link folded into [`RoundStats::network`].
    pub link: LinkModel,
    /// Seed-deterministic fault schedule (dropout, crashes, stragglers,
    /// timeout/retry). [`FaultPlan::none`] by default.
    pub faults: FaultPlan,
    /// Structured-event sink the driver reports rounds, per-site
    /// accounting, and fault decisions to. The no-op default keeps the
    /// driver free of recording overhead (one cached-bool branch per
    /// round).
    pub recorder: RecorderHandle,
    /// Wire encoding the protocol's messages were framed with. The
    /// driver itself never encodes or decodes — algorithms frame their
    /// own payloads — but it needs the configured encoding to read raw
    /// payload sizes out of codec frame headers for the
    /// [`RoundStats::raw_bytes_down`]/[`RoundStats::raw_bytes_up`]
    /// accounting. [`Encoding::Raw`] (the default) charges raw ==
    /// compressed and skips the header peek entirely.
    pub encoding: Encoding,
    /// Event-loop shard budget for [`TransportKind::Mux`] (ignored by
    /// every other backend). `None` (the default) derives the pool size
    /// from [`std::thread::available_parallelism`]; whatever the
    /// source, [`MuxTransport::start`] clamps it to `1..=sites`. Shard
    /// count never affects results — only coordinator-side thread
    /// count and wall clock.
    pub shards: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl RunOptions {
    /// The default: persistent-worker channel backend, parallel sites,
    /// ideal link, 64-round cap.
    pub fn new() -> Self {
        Self {
            parallel: true,
            max_rounds: 64,
            transport: TransportKind::Channel,
            link: LinkModel::ideal(),
            faults: FaultPlan::none(),
            recorder: RecorderHandle::noop(),
            encoding: Encoding::Raw,
            shards: None,
        }
    }

    /// Deterministic sequential execution (test/debug mode).
    pub fn sequential() -> Self {
        Self {
            parallel: false,
            ..Self::new()
        }
    }

    /// Switches the backend.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the simulated link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Sets the fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a structured-event recorder.
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Declares the wire encoding the protocol frames its messages with.
    pub fn encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Sets the mux backend's event-loop shard budget.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }
}

/// Result of a protocol execution.
pub struct ProtocolOutput<O> {
    /// The coordinator's answer.
    pub output: O,
    /// Full communication/compute accounting.
    pub stats: CommStats,
}

/// Runs the protocol to completion on the backend selected by `options`.
///
/// Round `r` consists of: the coordinator consumes round `r-1` replies
/// (none for `r = 0`) and emits round `r` messages — timed as round `r`
/// coordinator compute — the transport delivers them, sites handle them
/// concurrently (timed per site), and the replies feed round `r+1`. The
/// final `Finish` decision is timed into the last executed round.
///
/// # Panics
/// Panics if the coordinator returns a `Messages` vector of the wrong
/// length, or exceeds `max_rounds`.
pub fn run_protocol<C: Coordinator>(
    sites: &mut [Box<dyn Site + '_>],
    coordinator: C,
    options: RunOptions,
) -> ProtocolOutput<C::Output> {
    match options.transport {
        // One site (or sequential mode) gains nothing from workers.
        TransportKind::Channel if !options.parallel || sites.len() <= 1 => {
            drive(&mut InlineTransport::new(sites), coordinator, options)
        }
        TransportKind::Channel => std::thread::scope(|scope| {
            let mut transport = ChannelTransport::start(scope, sites);
            drive(&mut transport, coordinator, options)
        }),
        TransportKind::Tcp => std::thread::scope(|scope| {
            let mut transport = TcpTransport::start(scope, sites);
            drive(&mut transport, coordinator, options)
        }),
        TransportKind::Mux => std::thread::scope(|scope| {
            let shards = options.shards.unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
            let recorder = options.recorder.clone();
            let mut transport = MuxTransport::start(scope, sites, shards, recorder);
            drive(&mut transport, coordinator, options)
        }),
    }
}

/// The transport-agnostic driver loop.
///
/// Public so external runtimes (or benches) can drive custom
/// [`Transport`] implementations; most callers want [`run_protocol`].
///
/// Fault injection happens here, *before* each exchange: the
/// [`FaultPlan`] decides which sites participate as a pure function of
/// `(seed, site, round, attempt)`, so the responder set, byte charges,
/// and simulated time are identical on every backend. A site that
/// misses a round is failed for the rest of the execution (crash-stop):
/// every protocol in this workspace derives round-`r` state from round
/// `r-1` messages, so a late rejoin would answer from a stale round.
pub fn drive<T: Transport + ?Sized, C: Coordinator>(
    transport: &mut T,
    mut coordinator: C,
    options: RunOptions,
) -> ProtocolOutput<C::Output> {
    let s = transport.num_sites();
    let plan = &options.faults;
    let rec = &options.recorder;
    let on = rec.enabled();
    let mut stats = CommStats::default();
    let mut replies: Vec<Option<Bytes>> = Vec::new();
    let mut alive = vec![true; s];

    for round in 0..=options.max_rounds {
        let t0 = Instant::now();
        let step = coordinator.step(round, std::mem::take(&mut replies));
        let coord_time = t0.elapsed();

        let msgs: Vec<Bytes> = match step {
            CoordinatorStep::Broadcast(m) => vec![m; s],
            CoordinatorStep::Messages(ms) => {
                assert_eq!(ms.len(), s, "one message per site required");
                ms
            }
            CoordinatorStep::Finish => {
                // The finish decision consumed the last round's replies;
                // charge it there (a protocol that finishes on its first
                // step executed zero rounds and has nowhere to charge).
                if let Some(last) = stats.rounds.last_mut() {
                    last.coordinator_compute += coord_time;
                }
                return ProtocolOutput {
                    output: coordinator.finish(),
                    stats,
                };
            }
        };

        // The round is real (not a bare Finish): open its span. The plan
        // event carries the coordinator's wall-clock planning time — a
        // wall-only field the JSONL schema drops.
        if on {
            rec.record(Event::RoundStart { round });
            rec.record(Event::Plan {
                round,
                wall_ns: dur_to_ns(coord_time),
            });
        }

        // Simulate the delivery schedule. `waits[i]` accumulates the
        // simulated time site `i`'s slot spends on failed-attempt
        // timeouts and straggler delays; `delivery[i] = None` marks a
        // site that misses the round entirely.
        let mut delivery: Vec<Option<Bytes>> = Vec::with_capacity(s);
        let mut waits: Vec<Duration> = vec![Duration::ZERO; s];
        let mut retries = 0usize;
        if plan.is_none() {
            delivery.extend(msgs.iter().cloned().map(Some));
        } else {
            for (i, msg) in msgs.iter().enumerate() {
                if !alive[i] {
                    // Known-failed site: the coordinator skips it without
                    // paying another detection timeout.
                    delivery.push(None);
                    continue;
                }
                let mut delivered = None;
                for attempt in 0..=plan.retries {
                    match plan.sample_attempt(i, round, attempt) {
                        Attempt::Delivered { delay } => match plan.timeout_for(attempt) {
                            Some(timeout) if delay > timeout => {
                                // Straggled past the timeout: the reply is
                                // abandoned, the coordinator waited in vain.
                                waits[i] += timeout;
                                retries += 1;
                                if on {
                                    rec.record(Event::Fault {
                                        round,
                                        site: i,
                                        attempt: attempt as usize,
                                        kind: FaultKind::Straggler,
                                        wait_ns: dur_to_ns(timeout),
                                    });
                                }
                            }
                            _ => {
                                delivered = Some(delay);
                                if on && delay > Duration::ZERO {
                                    // Accepted late: a straggler within the
                                    // timeout.
                                    rec.record(Event::Fault {
                                        round,
                                        site: i,
                                        attempt: attempt as usize,
                                        kind: FaultKind::Straggler,
                                        wait_ns: dur_to_ns(delay),
                                    });
                                }
                                break;
                            }
                        },
                        Attempt::Failed => {
                            // With no timeout configured, detection is free
                            // (a perfect failure detector).
                            let timeout = plan.timeout_for(attempt);
                            if let Some(timeout) = timeout {
                                waits[i] += timeout;
                            }
                            retries += 1;
                            if on {
                                rec.record(Event::Fault {
                                    round,
                                    site: i,
                                    attempt: attempt as usize,
                                    kind: FaultKind::Retry,
                                    wait_ns: dur_to_ns(timeout.unwrap_or(Duration::ZERO)),
                                });
                            }
                        }
                    }
                }
                match delivered {
                    Some(delay) => {
                        waits[i] += delay;
                        delivery.push(Some(msg.clone()));
                    }
                    None => {
                        alive[i] = false;
                        delivery.push(None);
                        if on {
                            // The site misses the round (crash-stop from
                            // here on); later rounds skip it silently.
                            rec.record(Event::Fault {
                                round,
                                site: i,
                                attempt: plan.retries as usize,
                                kind: FaultKind::Dropout,
                                wait_ns: 0,
                            });
                        }
                    }
                }
            }
        }

        let site_replies = transport.exchange(round, &delivery);
        debug_assert_eq!(site_replies.len(), s);

        // Byte accounting charges only what was actually delivered: a
        // dropped site moves zero bytes in both directions.
        let down: Vec<usize> = delivery
            .iter()
            .map(|m| m.as_ref().map_or(0, Bytes::len))
            .collect();
        let up: Vec<usize> = site_replies
            .iter()
            .map(|r| r.as_ref().map_or(0, |r| r.payload.len()))
            .collect();
        // Raw (pre-codec) payload sizes come from the codec frame
        // headers; under `Raw` no header exists and raw == compressed.
        let (raw_down, raw_up) = if options.encoding == Encoding::Raw {
            (down.iter().sum::<usize>(), up.iter().sum::<usize>())
        } else {
            let raw_down = delivery
                .iter()
                .flatten()
                .map(|m| dpc_codec::peek_raw_len(m))
                .sum::<usize>();
            let raw_up = site_replies
                .iter()
                .flatten()
                .map(|r| dpc_codec::peek_raw_len(&r.payload))
                .sum::<usize>();
            (raw_down, raw_up)
        };
        if on && options.encoding != Encoding::Raw {
            rec.add(Counter::BytesRaw, (raw_down + raw_up) as u64);
            rec.add(
                Counter::BytesCompressed,
                (down.iter().sum::<usize>() + up.iter().sum::<usize>()) as u64,
            );
        }
        let dropouts = delivery.iter().filter(|m| m.is_none()).count();
        // Per-site simulated time: fault waits plus, for responders, the
        // link's down-then-up exchange; the round costs the slowest slot
        // (all star links run in parallel). With no faults this reduces
        // to the plain `LinkModel::round_network_time`.
        let network = (0..s)
            .map(|i| {
                let link = if delivery[i].is_some() {
                    options.link.one_way(down[i]) + options.link.one_way(up[i])
                } else {
                    Duration::ZERO
                };
                waits[i] + link
            })
            .max()
            .unwrap_or_default();

        stats.rounds.push(RoundStats {
            coordinator_to_sites: down,
            sites_to_coordinator: up,
            site_compute: site_replies
                .iter()
                .map(|r| r.as_ref().map_or(Duration::ZERO, |r| r.compute))
                .collect(),
            // Planning this round's messages — including the round-0
            // kick, which the pre-runtime simulator silently dropped.
            coordinator_compute: coord_time,
            network,
            dropouts,
            retries,
            degraded: dropouts > 0,
            raw_bytes_down: raw_down,
            raw_bytes_up: raw_up,
        });
        if on {
            let last = stats.rounds.last().expect("round just recorded");
            for i in 0..s {
                rec.record(Event::Site {
                    round,
                    site: i,
                    delivered: delivery[i].is_some(),
                    down_bytes: last.coordinator_to_sites[i] as u64,
                    up_bytes: last.sites_to_coordinator[i] as u64,
                    compute_ns: dur_to_ns(last.site_compute[i]),
                    wait_ns: dur_to_ns(waits[i]),
                });
            }
            rec.record(Event::RoundEnd {
                round,
                dropouts: last.dropouts,
                retries: last.retries,
                degraded: last.degraded,
                network_ns: dur_to_ns(last.network),
            });
        }
        replies = site_replies
            .into_iter()
            .map(|r| r.map(|r| r.payload))
            .collect();
    }
    panic!("protocol exceeded max_rounds = {}", options.max_rounds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};
    use std::time::Duration;

    /// Toy protocol: coordinator broadcasts a factor, each site replies with
    /// factor * its value, coordinator sums; second round echoes the sum
    /// back and sites ack with one byte.
    struct ToySite {
        value: u64,
    }

    impl Site for ToySite {
        fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
            match round {
                0 => {
                    let factor = u64::from_le_bytes(msg[..8].try_into().unwrap());
                    let mut b = BytesMut::new();
                    b.put_u64_le(factor * self.value);
                    b.freeze()
                }
                _ => Bytes::from_static(b"k"),
            }
        }
    }

    struct ToyCoordinator {
        factor: u64,
        sum: u64,
    }

    impl Coordinator for ToyCoordinator {
        type Output = u64;

        fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
            match round {
                0 => {
                    let mut b = BytesMut::new();
                    b.put_u64_le(self.factor);
                    CoordinatorStep::Broadcast(b.freeze())
                }
                1 => {
                    self.sum = replies
                        .iter()
                        .map(|r| {
                            let r = r.as_ref().expect("no faults injected");
                            u64::from_le_bytes(r[..8].try_into().unwrap())
                        })
                        .sum();
                    CoordinatorStep::Broadcast(Bytes::new())
                }
                _ => CoordinatorStep::Finish,
            }
        }

        fn finish(self) -> u64 {
            self.sum
        }
    }

    fn run_with(options: RunOptions) -> ProtocolOutput<u64> {
        let mut sites: Vec<Box<dyn Site>> = (1..=4u64)
            .map(|v| Box::new(ToySite { value: v }) as Box<dyn Site>)
            .collect();
        run_protocol(&mut sites, ToyCoordinator { factor: 3, sum: 0 }, options)
    }

    fn run(parallel: bool) -> ProtocolOutput<u64> {
        run_with(RunOptions {
            parallel,
            max_rounds: 8,
            ..Default::default()
        })
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let a = run(false);
        let b = run(true);
        assert_eq!(a.output, 3 * (1 + 2 + 3 + 4));
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats.num_rounds(), 2);
        assert_eq!(b.stats.num_rounds(), 2);
    }

    #[test]
    fn all_transports_agree_on_output_and_bytes() {
        let base = run(false);
        for options in [
            RunOptions::new(),
            RunOptions::new().transport(TransportKind::Tcp),
            RunOptions::new().transport(TransportKind::Mux),
            RunOptions::new().transport(TransportKind::Mux).shards(2),
        ] {
            let out = run_with(options);
            assert_eq!(out.output, base.output);
            assert_eq!(out.stats.num_rounds(), base.stats.num_rounds());
            for (a, b) in base.stats.rounds.iter().zip(&out.stats.rounds) {
                assert_eq!(a.coordinator_to_sites, b.coordinator_to_sites);
                assert_eq!(a.sites_to_coordinator, b.sites_to_coordinator);
            }
        }
    }

    #[test]
    fn byte_charges_match_messages() {
        let out = run(false);
        let r0 = &out.stats.rounds[0];
        // broadcast of 8 bytes to 4 sites; replies of 8 bytes each
        assert_eq!(r0.coordinator_to_sites, vec![8, 8, 8, 8]);
        assert_eq!(r0.sites_to_coordinator, vec![8, 8, 8, 8]);
        let r1 = &out.stats.rounds[1];
        assert_eq!(r1.coordinator_to_sites, vec![0, 0, 0, 0]);
        assert_eq!(r1.sites_to_coordinator, vec![1, 1, 1, 1]);
        assert_eq!(out.stats.total_bytes(), 4 * 8 * 2 + 4);
        assert_eq!(out.stats.upstream_bytes(), 36);
    }

    #[test]
    fn kick_round_coordinator_compute_is_charged() {
        // Regression: the pre-runtime simulator charged `step` time to the
        // *previous* round's stats, so the round-0 planning time hit
        // `rounds.last_mut() == None` and vanished.
        struct SlowKick;
        impl Coordinator for SlowKick {
            type Output = ();
            fn step(&mut self, round: usize, _replies: Vec<Option<Bytes>>) -> CoordinatorStep {
                if round == 0 {
                    std::thread::sleep(Duration::from_millis(25));
                    CoordinatorStep::Broadcast(Bytes::new())
                } else {
                    CoordinatorStep::Finish
                }
            }
            fn finish(self) {}
        }
        struct Ack;
        impl Site for Ack {
            fn handle(&mut self, _round: usize, _msg: &Bytes) -> Bytes {
                Bytes::new()
            }
        }
        let mut sites: Vec<Box<dyn Site>> = vec![Box::new(Ack)];
        let out = run_protocol(&mut sites, SlowKick, RunOptions::sequential());
        assert_eq!(out.stats.num_rounds(), 1);
        assert!(
            out.stats.rounds[0].coordinator_compute >= Duration::from_millis(25),
            "kick-round planning time dropped: {:?}",
            out.stats.rounds[0].coordinator_compute
        );
        assert_eq!(
            out.stats.coordinator_compute(),
            out.stats.rounds[0].coordinator_compute
        );
    }

    #[test]
    fn link_model_accumulates_network_time() {
        // 2 rounds, 1 ms one-way latency, 1000 B/s. Round 0 moves 8 B each
        // way per site; round 1 moves 0 down / 1 B up.
        let link = LinkModel::new(Duration::from_millis(1), 1000.0);
        let out = run_with(RunOptions::sequential().link(link));
        assert_eq!(out.stats.num_rounds(), 2);
        assert_eq!(
            out.stats.rounds[0].network,
            Duration::from_millis(2) + Duration::from_millis(16)
        );
        assert_eq!(
            out.stats.rounds[1].network,
            Duration::from_millis(2) + Duration::from_millis(1)
        );
        assert_eq!(out.stats.network_time(), Duration::from_millis(21));
        // The ideal link charges nothing.
        assert_eq!(run(false).stats.network_time(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "max_rounds")]
    fn runaway_protocol_trips_guard() {
        struct Loopy;
        impl Coordinator for Loopy {
            type Output = ();
            fn step(&mut self, _round: usize, _replies: Vec<Option<Bytes>>) -> CoordinatorStep {
                CoordinatorStep::Broadcast(Bytes::new())
            }
            fn finish(self) {}
        }
        struct Echo;
        impl Site for Echo {
            fn handle(&mut self, _round: usize, _msg: &Bytes) -> Bytes {
                Bytes::new()
            }
        }
        let mut sites: Vec<Box<dyn Site>> = vec![Box::new(Echo)];
        let _ = run_protocol(
            &mut sites,
            Loopy,
            RunOptions {
                parallel: false,
                max_rounds: 3,
                ..Default::default()
            },
        );
    }

    /// A fault-tolerant toy: sites reply with their value, the
    /// coordinator sums whatever arrives over two collection rounds.
    struct TolerantSum {
        sum: u64,
        responders: Vec<usize>,
    }

    impl Coordinator for TolerantSum {
        type Output = (u64, Vec<usize>);

        fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
            self.responders
                .push(replies.iter().filter(|r| r.is_some()).count());
            self.sum += replies
                .iter()
                .flatten()
                .map(|r| u64::from_le_bytes(r[..8].try_into().unwrap()))
                .sum::<u64>();
            if round < 2 {
                CoordinatorStep::Broadcast(Bytes::from_static(b"go"))
            } else {
                CoordinatorStep::Finish
            }
        }

        fn finish(self) -> (u64, Vec<usize>) {
            (self.sum, self.responders)
        }
    }

    struct ValueSite {
        value: u64,
    }

    impl Site for ValueSite {
        fn handle(&mut self, _round: usize, _msg: &Bytes) -> Bytes {
            let mut b = BytesMut::new();
            b.put_u64_le(self.value);
            b.freeze()
        }
    }

    fn run_tolerant(options: RunOptions) -> ProtocolOutput<(u64, Vec<usize>)> {
        let mut sites: Vec<Box<dyn Site>> = (0..4u64)
            .map(|v| Box::new(ValueSite { value: 1 << v }) as Box<dyn Site>)
            .collect();
        run_protocol(
            &mut sites,
            TolerantSum {
                sum: 0,
                responders: Vec::new(),
            },
            options,
        )
    }

    #[test]
    fn fault_schedule_is_identical_on_every_backend() {
        let plan = FaultPlan::with_dropout(0x5eed, 0.4);
        let base = run_tolerant(RunOptions::sequential().faults(plan.clone()));
        for options in [
            RunOptions::new().faults(plan.clone()),
            RunOptions::new()
                .transport(TransportKind::Tcp)
                .faults(plan.clone()),
            RunOptions::new().transport(TransportKind::Mux).faults(plan),
        ] {
            let out = run_tolerant(options);
            assert_eq!(out.output, base.output);
            assert_eq!(out.stats.num_rounds(), base.stats.num_rounds());
            for (a, b) in base.stats.rounds.iter().zip(&out.stats.rounds) {
                assert_eq!(a.coordinator_to_sites, b.coordinator_to_sites);
                assert_eq!(a.sites_to_coordinator, b.sites_to_coordinator);
                assert_eq!(a.dropouts, b.dropouts);
                assert_eq!(a.retries, b.retries);
                assert_eq!(a.degraded, b.degraded);
            }
        }
    }

    #[test]
    fn crashed_site_moves_no_bytes_and_rounds_degrade() {
        let plan = FaultPlan::none().crash(2, 1);
        let out = run_tolerant(RunOptions::sequential().faults(plan));
        // Round 0: everyone answers. Round 1: site 2 is gone.
        assert_eq!(out.output.1, vec![0, 4, 3]);
        assert_eq!(out.output.0, (1 + 2 + 4 + 8) + (1 + 2 + 8));
        let r0 = &out.stats.rounds[0];
        assert!(!r0.degraded);
        assert_eq!(r0.dropouts, 0);
        for r in &out.stats.rounds[1..] {
            assert!(r.degraded);
            assert_eq!(r.dropouts, 1);
            assert_eq!(r.coordinator_to_sites[2], 0);
            assert_eq!(r.sites_to_coordinator[2], 0);
            assert_eq!(r.site_compute[2], Duration::ZERO);
        }
    }

    #[test]
    fn dropout_is_monotone_crash_stop() {
        // Once a site misses a round it must stay out, whatever the
        // later coin flips say.
        for seed in 0..16 {
            let plan = FaultPlan::with_dropout(seed, 0.5);
            let out = run_tolerant(RunOptions::sequential().faults(plan));
            let alive_per_round: Vec<Vec<bool>> = out
                .stats
                .rounds
                .iter()
                .map(|r| r.coordinator_to_sites.iter().map(|&b| b > 0).collect())
                .collect();
            for w in alive_per_round.windows(2) {
                for (prev, cur) in w[0].iter().zip(&w[1]) {
                    assert!(
                        *prev || !*cur,
                        "a failed site rejoined: {alive_per_round:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn retries_rescue_sites_the_first_attempt_dropped() {
        // With a generous retry budget a 50% dropout plan should still
        // deliver every round for at least one seed — and the retry
        // counter must record the failed first attempts. Cross-check
        // drive() against the plan's own pure sampling.
        let plan = FaultPlan::with_dropout(9, 0.5).with_timeout(Duration::from_millis(5), 8);
        let out = run_tolerant(RunOptions::sequential().faults(plan.clone()));
        let mut expected_retries = 0usize;
        let mut expected_drops = vec![0usize; out.stats.num_rounds()];
        let mut alive = [true; 4];
        for (round, drops) in expected_drops.iter_mut().enumerate() {
            for (site, alive) in alive.iter_mut().enumerate() {
                if !*alive {
                    *drops += 1;
                    continue;
                }
                let mut ok = false;
                for attempt in 0..=plan.retries {
                    match plan.sample_attempt(site, round, attempt) {
                        Attempt::Delivered { delay }
                            if delay <= plan.timeout_for(attempt).unwrap() =>
                        {
                            ok = true;
                            break;
                        }
                        _ => expected_retries += 1,
                    }
                }
                if !ok {
                    *alive = false;
                    *drops += 1;
                }
            }
        }
        assert_eq!(out.stats.total_retries(), expected_retries);
        assert!(expected_retries > 0, "0.5 dropout must fail some attempts");
        let drops: Vec<usize> = out.stats.rounds.iter().map(|r| r.dropouts).collect();
        assert_eq!(drops, expected_drops);
    }

    #[test]
    fn failed_attempts_charge_timeouts_to_simulated_time() {
        // Site 2 crashes before round 0; the coordinator pays one 10 ms
        // timeout plus one 20 ms backoff retry to learn that, exactly
        // once (known-dead sites are skipped in later rounds).
        let plan = FaultPlan::none()
            .crash(2, 0)
            .with_timeout(Duration::from_millis(10), 1)
            .with_backoff(2.0);
        let out = run_tolerant(RunOptions::sequential().faults(plan));
        assert_eq!(out.stats.rounds[0].network, Duration::from_millis(30));
        assert_eq!(out.stats.rounds[0].retries, 2);
        for r in &out.stats.rounds[1..] {
            assert_eq!(r.network, Duration::ZERO);
            assert_eq!(r.retries, 0);
        }
    }

    #[test]
    fn straggler_delay_flows_into_network_time() {
        let plan = FaultPlan::with_dropout(1, 0.0).stragglers(1.0, Duration::from_millis(40));
        let out = run_tolerant(RunOptions::sequential().faults(plan.clone()));
        for (round, r) in out.stats.rounds.iter().enumerate() {
            let expected = (0..4)
                .map(|site| match plan.sample_attempt(site, round, 0) {
                    Attempt::Delivered { delay } => delay,
                    Attempt::Failed => unreachable!("no dropout configured"),
                })
                .max()
                .unwrap();
            assert_eq!(r.network, expected);
            assert!(r.network > Duration::ZERO);
            assert!(!r.degraded, "stragglers without timeouts still answer");
        }
    }

    #[test]
    fn per_site_messages() {
        struct PickySite {
            expect: u8,
        }
        impl Site for PickySite {
            fn handle(&mut self, _round: usize, msg: &Bytes) -> Bytes {
                assert_eq!(msg[0], self.expect);
                Bytes::copy_from_slice(&[self.expect])
            }
        }
        struct PerSiteCoord;
        impl Coordinator for PerSiteCoord {
            type Output = ();
            fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
                match round {
                    0 => CoordinatorStep::Messages(vec![
                        Bytes::copy_from_slice(&[7]),
                        Bytes::copy_from_slice(&[9]),
                    ]),
                    _ => {
                        assert_eq!(replies[0].as_ref().unwrap()[0], 7);
                        assert_eq!(replies[1].as_ref().unwrap()[0], 9);
                        CoordinatorStep::Finish
                    }
                }
            }
            fn finish(self) {}
        }
        for transport in [
            TransportKind::Channel,
            TransportKind::Tcp,
            TransportKind::Mux,
        ] {
            let mut sites: Vec<Box<dyn Site>> = vec![
                Box::new(PickySite { expect: 7 }),
                Box::new(PickySite { expect: 9 }),
            ];
            let out = run_protocol(
                &mut sites,
                PerSiteCoord,
                RunOptions::new().transport(transport),
            );
            assert_eq!(out.stats.num_rounds(), 1);
        }
    }
}
