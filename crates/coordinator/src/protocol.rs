//! The round-based protocol runner.
//!
//! Algorithms implement [`Site`] (per-site logic) and [`Coordinator`]
//! (central logic); [`run_protocol`] alternates them until the coordinator
//! finishes, charging every byte and timing every compute phase.

use crate::stats::{CommStats, RoundStats};
use bytes::Bytes;
use std::time::{Duration, Instant};

/// Per-site protocol logic.
///
/// `Send` so sites can run on worker threads; each site owns its shard of
/// the input.
pub trait Site: Send {
    /// Handles the coordinator's message for `round` and produces the reply.
    ///
    /// Round numbering starts at 0. An empty message is a legal "kick".
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes;
}

/// What the coordinator wants to do next.
pub enum CoordinatorStep {
    /// Send the same message to every site.
    Broadcast(Bytes),
    /// Send an individual message to each site (length must equal the
    /// number of sites).
    Messages(Vec<Bytes>),
    /// Terminate the protocol.
    Finish,
}

/// Central protocol logic.
pub trait Coordinator {
    /// The protocol's result type.
    type Output;

    /// Consumes the site replies of the previous round (empty on the first
    /// call) and decides the next step.
    fn step(&mut self, round: usize, replies: Vec<Bytes>) -> CoordinatorStep;

    /// Produces the final output after [`CoordinatorStep::Finish`].
    fn finish(self) -> Self::Output;
}

/// Runner knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Execute sites on parallel OS threads (`true`, the realistic mode) or
    /// sequentially (deterministic timing, useful under test).
    pub parallel: bool,
    /// Safety cap on rounds (a protocol that exceeds it panics — all
    /// algorithms in this workspace finish in 1–2 rounds plus the kick).
    pub max_rounds: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            max_rounds: 64,
        }
    }
}

/// Result of a protocol execution.
pub struct ProtocolOutput<O> {
    /// The coordinator's answer.
    pub output: O,
    /// Full communication/compute accounting.
    pub stats: CommStats,
}

/// Runs the protocol to completion.
///
/// Round `r` consists of: coordinator emits messages (timed as round `r-1`
/// coordinator compute), sites handle them concurrently (timed per site),
/// and the replies are handed to the coordinator at the start of round
/// `r+1`.
///
/// # Panics
/// Panics if the coordinator returns a `Messages` vector of the wrong
/// length, or exceeds `max_rounds`.
pub fn run_protocol<C: Coordinator>(
    sites: &mut [Box<dyn Site + '_>],
    mut coordinator: C,
    options: RunOptions,
) -> ProtocolOutput<C::Output> {
    let s = sites.len();
    let mut stats = CommStats::default();
    let mut replies: Vec<Bytes> = Vec::new();

    for round in 0..=options.max_rounds {
        let t0 = Instant::now();
        let step = coordinator.step(round, std::mem::take(&mut replies));
        let coord_time = t0.elapsed();
        if let Some(last) = stats.rounds.last_mut() {
            last.coordinator_compute += coord_time;
        }

        let msgs: Vec<Bytes> = match step {
            CoordinatorStep::Broadcast(m) => vec![m; s],
            CoordinatorStep::Messages(ms) => {
                assert_eq!(ms.len(), s, "one message per site required");
                ms
            }
            CoordinatorStep::Finish => {
                return ProtocolOutput {
                    output: coordinator.finish(),
                    stats,
                };
            }
        };

        let mut round_stats = RoundStats {
            coordinator_to_sites: msgs.iter().map(Bytes::len).collect(),
            sites_to_coordinator: vec![0; s],
            site_compute: vec![Duration::ZERO; s],
            coordinator_compute: Duration::ZERO,
        };

        let mut new_replies: Vec<Bytes> = vec![Bytes::new(); s];
        let mut timings: Vec<Duration> = vec![Duration::ZERO; s];
        if options.parallel && s > 1 {
            std::thread::scope(|scope| {
                for (((site, reply), timing), msg) in sites
                    .iter_mut()
                    .zip(new_replies.iter_mut())
                    .zip(timings.iter_mut())
                    .zip(msgs.iter())
                {
                    scope.spawn(move || {
                        let t = Instant::now();
                        *reply = site.handle(round, msg);
                        *timing = t.elapsed();
                    });
                }
            });
        } else {
            for i in 0..s {
                let t = Instant::now();
                new_replies[i] = sites[i].handle(round, &msgs[i]);
                timings[i] = t.elapsed();
            }
        }

        round_stats.sites_to_coordinator = new_replies.iter().map(Bytes::len).collect();
        round_stats.site_compute = timings;
        stats.rounds.push(round_stats);
        replies = new_replies;
    }
    panic!("protocol exceeded max_rounds = {}", options.max_rounds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};

    /// Toy protocol: coordinator broadcasts a factor, each site replies with
    /// factor * its value, coordinator sums; second round echoes the sum
    /// back and sites ack with one byte.
    struct ToySite {
        value: u64,
    }

    impl Site for ToySite {
        fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
            match round {
                0 => {
                    let factor = u64::from_le_bytes(msg[..8].try_into().unwrap());
                    let mut b = BytesMut::new();
                    b.put_u64_le(factor * self.value);
                    b.freeze()
                }
                _ => Bytes::from_static(b"k"),
            }
        }
    }

    struct ToyCoordinator {
        factor: u64,
        sum: u64,
    }

    impl Coordinator for ToyCoordinator {
        type Output = u64;

        fn step(&mut self, round: usize, replies: Vec<Bytes>) -> CoordinatorStep {
            match round {
                0 => {
                    let mut b = BytesMut::new();
                    b.put_u64_le(self.factor);
                    CoordinatorStep::Broadcast(b.freeze())
                }
                1 => {
                    self.sum = replies
                        .iter()
                        .map(|r| u64::from_le_bytes(r[..8].try_into().unwrap()))
                        .sum();
                    CoordinatorStep::Broadcast(Bytes::new())
                }
                _ => CoordinatorStep::Finish,
            }
        }

        fn finish(self) -> u64 {
            self.sum
        }
    }

    fn run(parallel: bool) -> ProtocolOutput<u64> {
        let mut sites: Vec<Box<dyn Site>> = (1..=4u64)
            .map(|v| Box::new(ToySite { value: v }) as Box<dyn Site>)
            .collect();
        run_protocol(
            &mut sites,
            ToyCoordinator { factor: 3, sum: 0 },
            RunOptions {
                parallel,
                max_rounds: 8,
            },
        )
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let a = run(false);
        let b = run(true);
        assert_eq!(a.output, 3 * (1 + 2 + 3 + 4));
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats.num_rounds(), 2);
        assert_eq!(b.stats.num_rounds(), 2);
    }

    #[test]
    fn byte_charges_match_messages() {
        let out = run(false);
        let r0 = &out.stats.rounds[0];
        // broadcast of 8 bytes to 4 sites; replies of 8 bytes each
        assert_eq!(r0.coordinator_to_sites, vec![8, 8, 8, 8]);
        assert_eq!(r0.sites_to_coordinator, vec![8, 8, 8, 8]);
        let r1 = &out.stats.rounds[1];
        assert_eq!(r1.coordinator_to_sites, vec![0, 0, 0, 0]);
        assert_eq!(r1.sites_to_coordinator, vec![1, 1, 1, 1]);
        assert_eq!(out.stats.total_bytes(), 4 * 8 * 2 + 4);
        assert_eq!(out.stats.upstream_bytes(), 36);
    }

    #[test]
    #[should_panic(expected = "max_rounds")]
    fn runaway_protocol_trips_guard() {
        struct Loopy;
        impl Coordinator for Loopy {
            type Output = ();
            fn step(&mut self, _round: usize, _replies: Vec<Bytes>) -> CoordinatorStep {
                CoordinatorStep::Broadcast(Bytes::new())
            }
            fn finish(self) {}
        }
        struct Echo;
        impl Site for Echo {
            fn handle(&mut self, _round: usize, _msg: &Bytes) -> Bytes {
                Bytes::new()
            }
        }
        let mut sites: Vec<Box<dyn Site>> = vec![Box::new(Echo)];
        let _ = run_protocol(
            &mut sites,
            Loopy,
            RunOptions {
                parallel: false,
                max_rounds: 3,
            },
        );
    }

    #[test]
    fn per_site_messages() {
        struct PickySite {
            expect: u8,
        }
        impl Site for PickySite {
            fn handle(&mut self, _round: usize, msg: &Bytes) -> Bytes {
                assert_eq!(msg[0], self.expect);
                Bytes::copy_from_slice(&[self.expect])
            }
        }
        struct PerSiteCoord;
        impl Coordinator for PerSiteCoord {
            type Output = ();
            fn step(&mut self, round: usize, replies: Vec<Bytes>) -> CoordinatorStep {
                match round {
                    0 => CoordinatorStep::Messages(vec![
                        Bytes::copy_from_slice(&[7]),
                        Bytes::copy_from_slice(&[9]),
                    ]),
                    _ => {
                        assert_eq!(replies[0][0], 7);
                        assert_eq!(replies[1][0], 9);
                        CoordinatorStep::Finish
                    }
                }
            }
            fn finish(self) {}
        }
        let mut sites: Vec<Box<dyn Site>> = vec![
            Box::new(PickySite { expect: 7 }),
            Box::new(PickySite { expect: 9 }),
        ];
        let out = run_protocol(&mut sites, PerSiteCoord, RunOptions::default());
        assert_eq!(out.stats.num_rounds(), 1);
    }
}
