//! The coordinator model (§1 "Models and Problems").
//!
//! `s` sites and one coordinator are connected in a star. Computation
//! proceeds in rounds: the coordinator sends a (possibly empty) message to
//! each site, every site replies, and the coordinator outputs the answer at
//! the end. Direct site-to-site communication is simulated by routing
//! through the coordinator (at most doubling communication), so the star is
//! the only topology we need.
//!
//! This crate simulates that model *faithfully enough to measure*:
//!
//! * every message is a real serialized byte buffer ([`bytes::Bytes`]), and
//!   [`CommStats`] charges its exact length to the right round/direction —
//!   the communication columns of Tables 1–2 are reproduced from these
//!   counters;
//! * sites execute concurrently on OS threads (`crossbeam::scope`), so the
//!   "local time `O(n_i²)`" column can be observed as wall-clock;
//! * the protocol logic is expressed against the [`Site`] / [`Coordinator`]
//!   traits, keeping algorithm code independent of the runner.

pub mod protocol;
pub mod stats;

pub use protocol::{run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site};
pub use stats::{CommStats, RoundStats};
