//! The coordinator model (§1 "Models and Problems") as a
//! message-passing runtime.
//!
//! `s` sites and one coordinator are connected in a star. Computation
//! proceeds in rounds: the coordinator sends a (possibly empty) message to
//! each site, every site replies, and the coordinator outputs the answer at
//! the end. Direct site-to-site communication is simulated by routing
//! through the coordinator (at most doubling communication), so the star is
//! the only topology we need.
//!
//! The crate is layered:
//!
//! * **Protocol logic** is written against the [`Site`] / [`Coordinator`]
//!   traits and never sees the wire — algorithm crates stay
//!   backend-agnostic.
//! * **The driver** ([`run_protocol`]) alternates coordinator and sites
//!   until the coordinator finishes. Every message is a real serialized
//!   byte buffer ([`bytes::Bytes`]) and [`CommStats`] charges its exact
//!   payload length to the right round and direction — the communication
//!   columns of Tables 1–2 are reproduced from these counters, identically
//!   on every backend.
//! * **Transports** ([`Transport`]) carry the messages. The
//!   [`ChannelTransport`] backend keeps one persistent worker thread per
//!   site with an mpsc mailbox (sites are spawned once per execution, not
//!   once per round); the [`TcpTransport`] backend puts every site behind
//!   a loopback TCP socket with length-prefixed frames, proving the wire
//!   formats round-trip a real socket; the [`MuxTransport`] backend keeps
//!   those TCP site workers but multiplexes the coordinator side onto a
//!   fixed pool of event-loop shards — sites partitioned round-robin,
//!   non-blocking sockets, one `poll(2)` readiness loop per shard driving
//!   `WriteHeader → WriteBody → ReadHeader → ReadBody` state machines
//!   with reusable buffers and vectored writes — so one process sustains
//!   thousands of sites with O(shards) coordinator threads (the `poll`
//!   syscall comes from the thin vendored `sys_poll` FFI wrapper, same
//!   no-registry discipline as the rest of `vendor/`);
//!   [`InlineTransport`] runs sites sequentially for deterministic
//!   tests. Select one via [`RunOptions::transport`].
//! * **The link model** ([`LinkModel`]) simulates per-message latency and
//!   bandwidth, folded into [`RoundStats::network`], so the
//!   communication-vs-time trade-off is a measurable, tunable axis: the
//!   "local time" columns are observed wall-clock, the network column is
//!   modeled from the exact bytes moved.
//! * **The fault layer** ([`FaultPlan`]) extends the same idea to
//!   failures: per-site/per-round dropout, crash-at-round, straggler
//!   delays, and the coordinator's timeout/retry/backoff schedule.
//!   Every decision is a pure hash of `(seed, site, round, attempt)`
//!   and all simulated time flows through the link model, so a chaos
//!   run is reproducible bit for bit on every backend. The driver
//!   consults the plan *before* each exchange and hands fault-tolerant
//!   coordinators a `None` reply slot per failed site; a site that
//!   misses a round is crash-stopped for the rest of the execution, and
//!   [`RoundStats`] records `dropouts`/`retries`/`degraded` per round.
//!   See the [`fault`] module docs for the exact attempt semantics.

pub mod channel;
pub mod fault;
pub mod mux;
pub mod protocol;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use channel::ChannelTransport;
pub use fault::{Attempt, FaultPlan};
pub use mux::MuxTransport;
pub use protocol::{
    drive, run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site,
};
pub use stats::{CommStats, RoundStats};
pub use tcp::TcpTransport;
pub use transport::{InlineTransport, LinkModel, SiteReply, Transport, TransportKind};
