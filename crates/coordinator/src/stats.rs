//! Communication and computation accounting.
//!
//! The paper's results are stated as communication bounds (`O˜((sk+t)B)`
//! etc.) and local-time bounds (`O˜(n_i²)` at sites, `O˜((sk+t)²)` at the
//! coordinator). This module records exactly those quantities per round.

use std::time::Duration;

/// Accounting for one protocol round.
#[derive(Clone, Debug, Default)]
pub struct RoundStats {
    /// Bytes sent by the coordinator to each site in this round.
    pub coordinator_to_sites: Vec<usize>,
    /// Bytes sent by each site back to the coordinator.
    pub sites_to_coordinator: Vec<usize>,
    /// Wall-clock compute time spent by each site this round.
    pub site_compute: Vec<Duration>,
    /// Wall-clock compute time the coordinator spent *planning* this
    /// round's messages (consuming the previous round's replies; for the
    /// last executed round this also includes the final `Finish`
    /// decision).
    pub coordinator_compute: Duration,
    /// Simulated network time of this round under the configured
    /// [`crate::LinkModel`]: the slowest site's down-plus-up exchange
    /// (all star links run in parallel), including straggler delays and
    /// failed-attempt timeouts under the [`crate::FaultPlan`]. Zero
    /// under the ideal link with no faults.
    pub network: Duration,
    /// Sites that missed this round (no delivery in either direction).
    pub dropouts: usize,
    /// Failed delivery attempts the coordinator retried or abandoned
    /// this round (attempts beyond each site's first successful one).
    pub retries: usize,
    /// True when at least one site missed the round — the coordinator
    /// proceeded over the responders only.
    pub degraded: bool,
    /// Raw (pre-codec) payload bytes from the coordinator to sites this
    /// round. Equals the sum of [`RoundStats::coordinator_to_sites`]
    /// when the protocol runs uncompressed (`Encoding::Raw`).
    pub raw_bytes_down: usize,
    /// Raw (pre-codec) payload bytes from sites to the coordinator.
    pub raw_bytes_up: usize,
}

impl RoundStats {
    /// Total bytes moved in this round, both directions.
    pub fn total_bytes(&self) -> usize {
        self.coordinator_to_sites.iter().sum::<usize>()
            + self.sites_to_coordinator.iter().sum::<usize>()
    }

    /// Longest site compute time (the round's wall-clock critical path on
    /// the site side).
    pub fn max_site_compute(&self) -> Duration {
        self.site_compute.iter().max().copied().unwrap_or_default()
    }
}

/// Accounting for a whole protocol execution.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// One entry per executed round.
    pub rounds: Vec<RoundStats>,
}

impl CommStats {
    /// Number of rounds executed (the "Rounds" column).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total bytes in both directions over all rounds (the "Total Comm."
    /// column, measured rather than bounded).
    pub fn total_bytes(&self) -> usize {
        self.rounds.iter().map(RoundStats::total_bytes).sum()
    }

    /// Bytes from sites to the coordinator only.
    pub fn upstream_bytes(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.sites_to_coordinator.iter().sum::<usize>())
            .sum()
    }

    /// Bytes from the coordinator to sites only.
    pub fn downstream_bytes(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.coordinator_to_sites.iter().sum::<usize>())
            .sum()
    }

    /// Sum over rounds of the slowest site (site-side critical path).
    pub fn site_critical_path(&self) -> Duration {
        self.rounds.iter().map(RoundStats::max_site_compute).sum()
    }

    /// Total CPU time spent across all sites and rounds.
    pub fn total_site_compute(&self) -> Duration {
        self.rounds.iter().flat_map(|r| r.site_compute.iter()).sum()
    }

    /// Total coordinator compute time.
    pub fn coordinator_compute(&self) -> Duration {
        self.rounds.iter().map(|r| r.coordinator_compute).sum()
    }

    /// Total simulated network time over all rounds.
    pub fn network_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.network).sum()
    }

    /// Total missed site-rounds across the execution.
    pub fn total_dropouts(&self) -> usize {
        self.rounds.iter().map(|r| r.dropouts).sum()
    }

    /// Total failed delivery attempts across the execution.
    pub fn total_retries(&self) -> usize {
        self.rounds.iter().map(|r| r.retries).sum()
    }

    /// Number of rounds the coordinator completed over a strict subset
    /// of the sites.
    pub fn degraded_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.degraded).count()
    }

    /// Raw (pre-codec) bytes in both directions over all rounds. Equal
    /// to [`CommStats::total_bytes`] when the run was uncompressed.
    pub fn raw_bytes(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.raw_bytes_down + r.raw_bytes_up)
            .sum()
    }

    /// Compression ratio raw/compressed of the whole execution (1.0 for
    /// an uncompressed or byte-free run; above 1.0 means the codec
    /// shrank the traffic).
    pub fn compression_ratio(&self) -> f64 {
        let compressed = self.total_bytes();
        if compressed == 0 {
            return 1.0;
        }
        self.raw_bytes() as f64 / compressed as f64
    }

    /// Simulated end-to-end wall clock of the protocol: per round, the
    /// coordinator plans, the slowest site computes, and the link moves
    /// the messages — the three phases are strictly sequential in the
    /// coordinator model.
    pub fn simulated_wall_clock(&self) -> Duration {
        self.rounds
            .iter()
            .map(|r| r.coordinator_compute + r.max_site_compute() + r.network)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let stats = CommStats {
            rounds: vec![
                RoundStats {
                    coordinator_to_sites: vec![10, 20],
                    sites_to_coordinator: vec![100, 200],
                    site_compute: vec![Duration::from_millis(5), Duration::from_millis(9)],
                    coordinator_compute: Duration::from_millis(1),
                    network: Duration::from_millis(7),
                    ..Default::default()
                },
                RoundStats {
                    coordinator_to_sites: vec![1, 1],
                    sites_to_coordinator: vec![50, 60],
                    site_compute: vec![Duration::from_millis(2), Duration::from_millis(1)],
                    coordinator_compute: Duration::from_millis(3),
                    network: Duration::from_millis(4),
                    ..Default::default()
                },
            ],
        };
        assert_eq!(stats.num_rounds(), 2);
        assert_eq!(stats.total_bytes(), 10 + 20 + 100 + 200 + 1 + 1 + 50 + 60);
        assert_eq!(stats.upstream_bytes(), 410);
        assert_eq!(stats.downstream_bytes(), 32);
        assert_eq!(stats.site_critical_path(), Duration::from_millis(11));
        assert_eq!(stats.total_site_compute(), Duration::from_millis(17));
        assert_eq!(stats.coordinator_compute(), Duration::from_millis(4));
        assert_eq!(stats.network_time(), Duration::from_millis(11));
        // (1 + 9 + 7) + (3 + 2 + 4)
        assert_eq!(stats.simulated_wall_clock(), Duration::from_millis(26));
    }

    #[test]
    fn empty_stats() {
        let s = CommStats::default();
        assert_eq!(s.num_rounds(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.site_critical_path(), Duration::ZERO);
    }
}
