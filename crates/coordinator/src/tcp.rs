//! Loopback TCP backend: every site behind a real socket.
//!
//! Each site worker binds a listener on `127.0.0.1:0`, the coordinator
//! connects, and the pair speaks length-prefixed frames for the rest of
//! the execution:
//!
//! ```text
//! coordinator -> site   [round: u32 LE][len: u32 LE][payload]
//! site -> coordinator   [compute_ns: u64 LE][len: u32 LE][payload]
//! ```
//!
//! A `round` of `u32::MAX` is the shutdown frame. The site measures its
//! own compute and ships it in the reply header — frame headers are
//! transport metadata and are *not* charged to [`crate::CommStats`], so
//! byte accounting is identical to the in-process backends (the
//! equivalence suite asserts this). What this backend buys is proof:
//! every protocol message round-trips a real socket boundary, byte for
//! byte, which no amount of in-process simulation establishes.
//!
//! `TCP_NODELAY` is set on both ends — rounds are strict request/reply
//! exchanges, exactly the pattern Nagle's algorithm penalizes. Frames
//! go out through `write_frame`: one vectored write carries the
//! header and the payload together, so a small protocol round costs one
//! syscall in each direction instead of two.

use crate::protocol::Site;
use crate::transport::{SiteReply, Transport};
use bytes::Bytes;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Shutdown sentinel in the `round` header field.
pub(crate) const SHUTDOWN: u32 = u32::MAX;

/// Writes `header` then `body` as a single vectored write, looping on
/// short writes (a kernel may accept any prefix of the two buffers).
/// Shared by both directions of this backend and by the mux site
/// workers — the frame layouts differ only in header contents.
pub(crate) fn write_frame<W: Write>(conn: &mut W, header: &[u8], body: &[u8]) -> io::Result<()> {
    let total = header.len() + body.len();
    let mut written = 0usize;
    while written < total {
        let res = if written < header.len() {
            conn.write_vectored(&[IoSlice::new(&header[written..]), IoSlice::new(body)])
        } else {
            conn.write(&body[written - header.len()..])
        };
        match res {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The loopback-socket backend. See the module docs.
pub struct TcpTransport {
    /// Coordinator-side connections, one per site, in site order.
    streams: Vec<TcpStream>,
}

impl TcpTransport {
    /// Spawns one socket-serving worker per site inside `scope` and
    /// connects to each. Dropping the transport sends every worker the
    /// shutdown frame; `scope` then joins them.
    pub fn start<'scope, 'env, 'data: 'env>(
        scope: &'scope Scope<'scope, 'env>,
        sites: &'env mut [Box<dyn Site + 'data>],
    ) -> Self {
        let mut streams = Vec::with_capacity(sites.len());
        for (i, site) in sites.iter_mut().enumerate() {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener for site");
            let addr = listener.local_addr().expect("listener has a local addr");
            scope.spawn(move || {
                let (conn, _) = listener.accept().expect("accept coordinator connection");
                conn.set_nodelay(true).ok();
                serve_site(site.as_mut(), conn, i);
            });
            let stream = TcpStream::connect(addr).expect("connect to site worker");
            stream.set_nodelay(true).ok();
            streams.push(stream);
        }
        Self { streams }
    }
}

/// One site's serving loop: read a frame, run the site, reply. Shared
/// with the mux backend — site workers are identical there; only the
/// coordinator side differs.
pub(crate) fn serve_site(site: &mut (dyn Site + '_), mut conn: TcpStream, site_id: usize) {
    // Abortive close on the worker end: this side closes only after
    // consuming the shutdown frame (both directions provably drained),
    // and the RST spares both sockets 60 s of TIME_WAIT — at thousands
    // of sites per run, a torn-down fleet would otherwise degrade every
    // following run while the kernel's connection table drains.
    sys_poll::set_abortive_close(conn.as_raw_fd()).ok();
    loop {
        let mut header = [0u8; 8];
        if conn.read_exact(&mut header).is_err() {
            return; // coordinator hung up without a shutdown frame
        }
        let round = u32::from_le_bytes(header[..4].try_into().unwrap());
        if round == SHUTDOWN {
            return;
        }
        let len = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        conn.read_exact(&mut payload)
            .unwrap_or_else(|e| panic!("site {site_id}: short read of {len}-byte payload: {e}"));
        let msg = Bytes::from(payload);
        let t0 = Instant::now();
        let reply = site.handle(round as usize, &msg);
        let compute = t0.elapsed();
        let body = reply.as_ref();
        let len = u32::try_from(body.len()).expect("reply fits a u32 length prefix");
        let mut header = [0u8; 12];
        header[..8].copy_from_slice(&(compute.as_nanos() as u64).to_le_bytes());
        header[8..].copy_from_slice(&len.to_le_bytes());
        if write_frame(&mut conn, &header, body).is_err() {
            return;
        }
    }
}

impl Transport for TcpTransport {
    fn num_sites(&self) -> usize {
        self.streams.len()
    }

    fn exchange(&mut self, round: usize, msgs: &[Option<Bytes>]) -> Vec<Option<SiteReply>> {
        assert_eq!(msgs.len(), self.streams.len(), "one message per site");
        let round = u32::try_from(round).expect("round fits the frame header");
        assert_ne!(round, SHUTDOWN, "round collides with the shutdown frame");
        // Fan out: write every request before reading any reply. Site
        // workers read their request eagerly, so these writes cannot
        // deadlock against the unread replies. Frames carry the round
        // number, so a skipped (`None`) site simply never sees a frame
        // for this round — no wire-protocol change is needed.
        for (stream, msg) in self.streams.iter_mut().zip(msgs) {
            let Some(msg) = msg else { continue };
            let body = msg.as_ref();
            let len = u32::try_from(body.len()).expect("message fits a u32 length prefix");
            let mut header = [0u8; 8];
            header[..4].copy_from_slice(&round.to_le_bytes());
            header[4..].copy_from_slice(&len.to_le_bytes());
            write_frame(stream, &header, body).expect("write request frame to site");
        }
        // Gather in site order.
        self.streams
            .iter_mut()
            .zip(msgs)
            .enumerate()
            .map(|(i, (stream, msg))| {
                msg.as_ref()?;
                let mut header = [0u8; 12];
                stream
                    .read_exact(&mut header)
                    .unwrap_or_else(|e| panic!("site {i}: reply header: {e}"));
                let compute_ns = u64::from_le_bytes(header[..8].try_into().unwrap());
                let len = u32::from_le_bytes(header[8..].try_into().unwrap()) as usize;
                let mut payload = vec![0u8; len];
                stream
                    .read_exact(&mut payload)
                    .unwrap_or_else(|e| panic!("site {i}: reply payload ({len} bytes): {e}"));
                Some(SiteReply {
                    payload: Bytes::from(payload),
                    compute: Duration::from_nanos(compute_ns),
                })
            })
            .collect()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort graceful shutdown; workers also exit on EOF.
        for stream in &mut self.streams {
            let mut frame = [0u8; 8];
            frame[..4].copy_from_slice(&SHUTDOWN.to_le_bytes());
            let _ = stream.write_all(&frame);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}
