//! In-process backend with persistent per-site workers.
//!
//! Each site gets one OS thread for the *whole* protocol execution and an
//! mpsc mailbox feeding it `(round, message)` envelopes; replies come
//! back on a per-site return channel so site order is preserved without
//! any sorting. Compared to the pre-runtime simulator — which re-spawned
//! `s` threads on every round — the hot path of an `r`-round protocol
//! performs `s` spawns instead of `r·s` (`bench_transport` quantifies
//! the difference).
//!
//! Workers borrow the caller's sites, so they live inside a
//! [`std::thread::scope`] owned by [`crate::run_protocol`]; dropping the
//! transport closes every mailbox, which is the workers' shutdown
//! signal.

use crate::protocol::Site;
use crate::transport::{SiteReply, Transport};
use bytes::Bytes;
use std::sync::mpsc;
use std::thread::Scope;
use std::time::Instant;

/// The persistent-worker backend. See the module docs.
pub struct ChannelTransport {
    /// Mailbox senders, one per site; dropping them stops the workers.
    mailboxes: Vec<mpsc::Sender<(usize, Bytes)>>,
    /// Per-site reply channels, indexed like `mailboxes`.
    replies: Vec<mpsc::Receiver<SiteReply>>,
}

impl ChannelTransport {
    /// Spawns one worker per site inside `scope`. The workers exit when
    /// the returned transport is dropped; `scope` then joins them.
    pub fn start<'scope, 'env, 'data: 'env>(
        scope: &'scope Scope<'scope, 'env>,
        sites: &'env mut [Box<dyn Site + 'data>],
    ) -> Self {
        let mut mailboxes = Vec::with_capacity(sites.len());
        let mut replies = Vec::with_capacity(sites.len());
        for site in sites.iter_mut() {
            let (msg_tx, msg_rx) = mpsc::channel::<(usize, Bytes)>();
            let (reply_tx, reply_rx) = mpsc::channel::<SiteReply>();
            scope.spawn(move || {
                while let Ok((round, msg)) = msg_rx.recv() {
                    let t0 = Instant::now();
                    let payload = site.handle(round, &msg);
                    let reply = SiteReply {
                        payload,
                        compute: t0.elapsed(),
                    };
                    if reply_tx.send(reply).is_err() {
                        break; // coordinator gone mid-round
                    }
                }
            });
            mailboxes.push(msg_tx);
            replies.push(reply_rx);
        }
        Self { mailboxes, replies }
    }
}

impl Transport for ChannelTransport {
    fn num_sites(&self) -> usize {
        self.mailboxes.len()
    }

    fn exchange(&mut self, round: usize, msgs: &[Option<Bytes>]) -> Vec<Option<SiteReply>> {
        assert_eq!(msgs.len(), self.mailboxes.len(), "one message per site");
        // Fan out first so every participating site computes
        // concurrently; a `None` site gets no envelope this round.
        for (tx, msg) in self.mailboxes.iter().zip(msgs) {
            if let Some(msg) = msg {
                tx.send((round, msg.clone()))
                    .expect("site worker exited before the protocol finished");
            }
        }
        // ...then gather in site order (recv blocks per site, but the
        // others keep computing meanwhile).
        self.replies
            .iter()
            .zip(msgs)
            .map(|(rx, msg)| {
                msg.as_ref()
                    .map(|_| rx.recv().expect("site worker exited before replying"))
            })
            .collect()
    }
}
