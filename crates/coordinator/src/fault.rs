//! Seed-deterministic fault injection for the protocol runtime.
//!
//! A [`FaultPlan`] extends the [`crate::LinkModel`]'s simulated-network
//! idea to *failures*: per-site, per-round dropout probability, hard
//! crash rounds, straggler delays, and the coordinator's timeout/retry
//! schedule for coping with all of the above. Every random decision is a
//! pure function of `(seed, site, round, attempt)` — no RNG state, no
//! wall clock — so a chaos run is reproducible bit for bit on every
//! transport backend: the set of responders, the bytes charged, and the
//! simulated network time are identical whether sites run inline, on
//! worker threads, or behind loopback TCP sockets.
//!
//! # Semantics
//!
//! The driver consults the plan *before* each exchange. For every site
//! it simulates up to `1 + retries` delivery attempts:
//!
//! * an attempt **fails** if the dropout coin (probability
//!   [`FaultPlan::dropout`]) comes up bad, if the site has crashed
//!   ([`FaultPlan::crashes`]), or if a sampled straggler delay exceeds
//!   the attempt's timeout;
//! * a failed attempt costs the coordinator the attempt's timeout in
//!   simulated time (with no timeout configured the coordinator detects
//!   failure for free — a perfect failure detector);
//! * the first successful attempt delivers the message: the site's
//!   handler runs exactly once and its reply is charged as usual, plus
//!   any sampled straggler delay on the simulated clock.
//!
//! A site whose attempts all fail misses the round: it receives
//! nothing, sends nothing, and is charged zero bytes in both
//! directions. Because every protocol in this workspace builds round-`r`
//! state from round-`r-1` messages, a site that misses a round is
//! considered failed for the remainder of the execution (monotone
//! aliveness — the crash-stop model). Recovery across *executions* (for
//! example between continuous-clustering syncs) is expressed by deriving
//! a fresh plan per execution via [`FaultPlan::derive`].

use std::time::Duration;

/// A deterministic per-execution fault schedule.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and adds no
/// overhead to the driver's hot path.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed behind every sampled decision.
    pub seed: u64,
    /// Probability that one delivery attempt to a site fails, sampled
    /// independently per `(site, round, attempt)`. Must lie in `[0, 1)`.
    pub dropout: f64,
    /// Hard failures: site `i` fails every attempt from round `r` on.
    pub crashes: Vec<(usize, usize)>,
    /// Probability that a successful attempt is a straggler.
    pub straggler_prob: f64,
    /// Maximum straggler delay; actual delays are sampled uniformly in
    /// `(0, straggler_delay]`.
    pub straggler_delay: Duration,
    /// Extra delivery attempts after the first failed one.
    pub retries: u32,
    /// Per-attempt timeout. `None` means the coordinator waits forever
    /// for stragglers and detects dropouts/crashes instantly.
    pub timeout: Option<Duration>,
    /// Timeout growth factor per retry (attempt `a` waits
    /// `timeout * backoff^a`). `1.0` keeps the timeout constant.
    pub backoff: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: every site answers every round, instantly.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dropout: 0.0,
            crashes: Vec::new(),
            straggler_prob: 0.0,
            straggler_delay: Duration::ZERO,
            retries: 0,
            timeout: None,
            backoff: 1.0,
        }
    }

    /// A plan that drops each delivery attempt with probability `dropout`
    /// under `seed`.
    ///
    /// # Panics
    /// Panics unless `dropout` lies in `[0, 1)` (a probability of 1
    /// would deterministically kill every site in round 0).
    pub fn with_dropout(seed: u64, dropout: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout),
            "dropout probability must lie in [0, 1), got {dropout}"
        );
        Self {
            seed,
            dropout,
            ..Self::none()
        }
    }

    /// Adds a hard crash: site `site` fails every attempt from `round` on.
    pub fn crash(mut self, site: usize, round: usize) -> Self {
        self.crashes.push((site, round));
        self
    }

    /// Sets the straggler distribution: with probability `prob` a
    /// successful attempt is delayed by a uniform sample from
    /// `(0, max_delay]`.
    pub fn stragglers(mut self, prob: f64, max_delay: Duration) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "straggler probability must lie in [0, 1], got {prob}"
        );
        self.straggler_prob = prob;
        self.straggler_delay = max_delay;
        self
    }

    /// Sets the per-attempt timeout and the retry budget.
    pub fn with_timeout(mut self, timeout: Duration, retries: u32) -> Self {
        self.timeout = Some(timeout);
        self.retries = retries;
        self
    }

    /// Sets the timeout growth factor per retry.
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(
            backoff >= 1.0 && backoff.is_finite(),
            "backoff must be a finite factor >= 1, got {backoff}"
        );
        self.backoff = backoff;
        self
    }

    /// True when the plan can never perturb an execution — the driver's
    /// fast path.
    pub fn is_none(&self) -> bool {
        self.dropout == 0.0 && self.crashes.is_empty() && self.straggler_prob == 0.0
    }

    /// A plan identical to this one but with the seed mixed with
    /// `stream`: the tool for giving each execution in a sequence (e.g.
    /// each continuous-clustering sync) independent faults while keeping
    /// the whole sequence a pure function of one seed.
    pub fn derive(&self, stream: u64) -> Self {
        Self {
            seed: mix(self.seed ^ 0x9e3779b97f4a7c15, stream),
            ..self.clone()
        }
    }

    /// The timeout the coordinator waits on attempt `attempt` (0-based),
    /// or `None` for an unbounded wait.
    pub fn timeout_for(&self, attempt: u32) -> Option<Duration> {
        let base = self.timeout?;
        if self.backoff == 1.0 || attempt == 0 {
            return Some(base);
        }
        let scaled = base.as_secs_f64() * self.backoff.powi(attempt as i32);
        // Same ceiling the link model uses for pathological rates.
        Some(Duration::from_secs_f64(
            scaled.min(crate::LinkModel::MAX_TRANSFER_SECS),
        ))
    }

    /// True when `site` has hard-crashed at or before `round`.
    pub fn crashed(&self, site: usize, round: usize) -> bool {
        self.crashes.iter().any(|&(s, r)| s == site && round >= r)
    }

    /// Simulates one delivery attempt. Pure in
    /// `(seed, site, round, attempt)`.
    pub fn sample_attempt(&self, site: usize, round: usize, attempt: u32) -> Attempt {
        if self.crashed(site, round) {
            return Attempt::Failed;
        }
        let h = mix(
            self.seed,
            (site as u64) << 40 ^ (round as u64) << 8 ^ attempt as u64,
        );
        if self.dropout > 0.0 && unit(h) < self.dropout {
            return Attempt::Failed;
        }
        let delay = if self.straggler_prob > 0.0 && unit(mix(h, 1)) < self.straggler_prob {
            // Uniform in (0, straggler_delay]: 1 - unit ∈ (0, 1].
            self.straggler_delay.mul_f64(1.0 - unit(mix(h, 2)))
        } else {
            Duration::ZERO
        };
        Attempt::Delivered { delay }
    }
}

/// Outcome of one simulated delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// The attempt failed outright (dropout or crash).
    Failed,
    /// The attempt reaches the site after `delay` of straggling; the
    /// driver still fails it if `delay` exceeds the attempt's timeout.
    Delivered {
        /// Sampled straggler delay (zero for a prompt site).
        delay: Duration,
    },
}

/// SplitMix64-style finalizer over a seeded key: the stateless hash
/// behind every sampled decision.
fn mix(seed: u64, key: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(key)
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for site in 0..4 {
            for round in 0..4 {
                assert_eq!(
                    p.sample_attempt(site, round, 0),
                    Attempt::Delivered {
                        delay: Duration::ZERO
                    }
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::with_dropout(7, 0.5);
        let b = FaultPlan::with_dropout(7, 0.5);
        let c = FaultPlan::with_dropout(8, 0.5);
        let grid = |p: &FaultPlan| -> Vec<Attempt> {
            (0..6)
                .flat_map(|s| (0..6).map(move |r| (s, r)))
                .map(|(s, r)| p.sample_attempt(s, r, 0))
                .collect()
        };
        assert_eq!(grid(&a), grid(&b));
        assert_ne!(grid(&a), grid(&c), "different seeds should diverge");
    }

    #[test]
    fn dropout_rate_is_roughly_honored() {
        let p = FaultPlan::with_dropout(42, 0.3);
        let n = 10_000;
        let failed = (0..n)
            .filter(|&i| p.sample_attempt(i % 10, i / 10, 0) == Attempt::Failed)
            .count();
        let rate = failed as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed dropout rate {rate}");
    }

    #[test]
    fn crash_fails_every_attempt_from_its_round() {
        let p = FaultPlan::none().crash(1, 2);
        assert!(!p.is_none());
        assert_eq!(
            p.sample_attempt(1, 1, 0),
            Attempt::Delivered {
                delay: Duration::ZERO
            }
        );
        for attempt in 0..3 {
            assert_eq!(p.sample_attempt(1, 2, attempt), Attempt::Failed);
            assert_eq!(p.sample_attempt(1, 5, attempt), Attempt::Failed);
        }
        assert_eq!(
            p.sample_attempt(0, 5, 0),
            Attempt::Delivered {
                delay: Duration::ZERO
            }
        );
    }

    #[test]
    fn stragglers_delay_within_bound() {
        let p = FaultPlan::with_dropout(3, 0.0).stragglers(1.0, Duration::from_millis(50));
        let mut nonzero = 0;
        for s in 0..20 {
            if let Attempt::Delivered { delay } = p.sample_attempt(s, 0, 0) {
                assert!(delay <= Duration::from_millis(50));
                assert!(delay > Duration::ZERO, "prob-1 straggler must delay");
                nonzero += 1;
            } else {
                panic!("no dropout configured");
            }
        }
        assert_eq!(nonzero, 20);
    }

    #[test]
    fn backoff_scales_timeouts() {
        let p = FaultPlan::none()
            .with_timeout(Duration::from_millis(10), 2)
            .with_backoff(2.0);
        assert_eq!(p.timeout_for(0), Some(Duration::from_millis(10)));
        assert_eq!(p.timeout_for(1), Some(Duration::from_millis(20)));
        assert_eq!(p.timeout_for(2), Some(Duration::from_millis(40)));
        assert_eq!(FaultPlan::none().timeout_for(3), None);
    }

    #[test]
    fn derive_changes_samples_but_stays_deterministic() {
        let base = FaultPlan::with_dropout(11, 0.5);
        let d1 = base.derive(1);
        let d2 = base.derive(2);
        assert_eq!(d1, base.derive(1));
        assert_ne!(d1.seed, d2.seed);
        assert_ne!(d1.seed, base.seed);
        assert_eq!(d1.dropout, base.dropout);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_of_one_is_rejected() {
        let _ = FaultPlan::with_dropout(0, 1.0);
    }
}
