//! Multiplexed event-loop backend: thousands of sites, O(shards)
//! coordinator threads.
//!
//! [`crate::TcpTransport`] proves the wire formats with one coordinator
//! thread *pair* per site — fine at 16 sites, hopeless at the thousands
//! the coordinator model is designed for. This backend keeps the site
//! half identical (real worker threads behind real loopback sockets,
//! speaking the exact frames of [`crate::tcp`]) but replaces the
//! coordinator side with a small fixed pool of **event-loop shards**:
//! sites are partitioned round-robin across the pool, each shard owns
//! its connections in non-blocking mode, and one `poll(2)` readiness
//! loop (via the vendored [`sys_poll`] wrapper — a thin FFI shim, since
//! the workspace builds without registry access) drives a per-connection
//! state machine
//! `WriteHeader → WriteBody → ReadHeader → ReadBody`
//! over reusable buffers. Requests leave as one vectored write (header
//! and payload in a single syscall, short writes resumed where they
//! stopped), so the coordinator's thread count is O(shards) instead of
//! O(sites) while the per-round byte traffic is bit-identical to the
//! TCP backend.
//!
//! Fault injection needs no cooperation from this backend: the driver
//! decides every dropout/straggler/timeout *before* the exchange as a
//! pure function of the fault seed, and a failed site simply arrives
//! here as a `None` slot (no delivery, no reply). The readiness loop
//! therefore carries no real deadlines — simulated timeouts are charged
//! by [`crate::run_protocol`]'s accounting, which is exactly what keeps
//! fault transcripts and `dpc.trace/v1` traces bit-identical across
//! backends.
//!
//! Each exchange reports one [`Event::ShardPoll`] per shard and bumps
//! [`Counter::PollWakeups`]; both are wall-clock-scheduling artifacts
//! and are excluded from the deterministic JSONL trace schema.

use crate::protocol::Site;
use crate::tcp::{serve_site, SHUTDOWN};
use crate::transport::{SiteReply, Transport};
use bytes::Bytes;
use dpc_obs::{Counter, Event, RecorderHandle};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::Scope;
use std::time::Duration;
use sys_poll::{poll_fds, PollFd, POLLIN, POLLOUT};

/// Where a connection's state machine stands within one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// No frame in flight (either the round skipped this site or the
    /// round has not started).
    Idle,
    /// Writing the 8-byte request header. The write is vectored with
    /// the payload, so one syscall usually completes this state and the
    /// next together.
    WriteHeader,
    /// Header flushed; writing the remaining payload bytes.
    WriteBody,
    /// Awaiting the 12-byte reply header.
    ReadHeader,
    /// Reading the reply payload.
    ReadBody,
    /// Reply complete for this round.
    Done,
}

/// One coordinator-side connection owned by a shard: the non-blocking
/// socket plus the in-flight frame state and reusable buffers.
struct Conn {
    stream: TcpStream,
    /// Global site index (diagnostics only).
    site: usize,
    state: ConnState,
    /// Outgoing request header (`[round: u32][len: u32]`, LE).
    req_header: [u8; 8],
    /// Request payload for the current round.
    payload: Bytes,
    /// Bytes of header + payload written so far.
    written: usize,
    /// Incoming reply header (`[compute_ns: u64][len: u32]`, LE).
    reply_header: [u8; 12],
    header_read: usize,
    /// Reusable reply-payload buffer; only `..reply_len` is valid.
    body: Vec<u8>,
    body_read: usize,
    reply_len: usize,
    reply: Option<SiteReply>,
}

impl Conn {
    fn new(stream: TcpStream, site: usize) -> Self {
        Self {
            stream,
            site,
            state: ConnState::Idle,
            req_header: [0; 8],
            payload: Bytes::new(),
            written: 0,
            reply_header: [0; 12],
            header_read: 0,
            body: Vec::new(),
            body_read: 0,
            reply_len: 0,
            reply: None,
        }
    }

    /// Arms the state machine for one round's request.
    fn begin(&mut self, round: u32, payload: Bytes) {
        let len = u32::try_from(payload.len()).expect("message fits a u32 length prefix");
        self.req_header[..4].copy_from_slice(&round.to_le_bytes());
        self.req_header[4..].copy_from_slice(&len.to_le_bytes());
        self.payload = payload;
        self.written = 0;
        self.header_read = 0;
        self.body_read = 0;
        self.reply_len = 0;
        self.reply = None;
        self.state = ConnState::WriteHeader;
    }

    /// The poll interest of the current state (0 = nothing pending).
    fn interest(&self) -> i16 {
        match self.state {
            ConnState::WriteHeader | ConnState::WriteBody => POLLOUT,
            ConnState::ReadHeader | ConnState::ReadBody => POLLIN,
            ConnState::Idle | ConnState::Done => 0,
        }
    }

    /// Drives the state machine as far as the socket allows without
    /// blocking. Returns `true` once the reply for the round is
    /// complete (`Done`); `false` means the connection is parked until
    /// the next readiness notification.
    fn advance(&mut self) -> bool {
        loop {
            match self.state {
                ConnState::Idle => return true,
                ConnState::Done => return true,
                ConnState::WriteHeader | ConnState::WriteBody => {
                    let total = self.req_header.len() + self.payload.len();
                    if self.written < total {
                        let res = if self.written < self.req_header.len() {
                            self.stream.write_vectored(&[
                                IoSlice::new(&self.req_header[self.written..]),
                                IoSlice::new(self.payload.as_ref()),
                            ])
                        } else {
                            self.stream
                                .write(&self.payload[self.written - self.req_header.len()..])
                        };
                        match res {
                            Ok(0) => panic!("site {}: write returned zero", self.site),
                            Ok(n) => {
                                self.written += n;
                                self.state = if self.written < self.req_header.len() {
                                    ConnState::WriteHeader
                                } else {
                                    ConnState::WriteBody
                                };
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => panic!("site {}: request write: {e}", self.site),
                        }
                    }
                    if self.written == total {
                        // Request fully flushed; release the payload and
                        // opportunistically try the read side in the same
                        // wakeup.
                        self.payload = Bytes::new();
                        self.state = ConnState::ReadHeader;
                    }
                }
                ConnState::ReadHeader => {
                    match self.stream.read(&mut self.reply_header[self.header_read..]) {
                        Ok(0) => panic!("site {}: connection closed mid-reply", self.site),
                        Ok(n) => self.header_read += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => panic!("site {}: reply header: {e}", self.site),
                    }
                    if self.header_read == self.reply_header.len() {
                        let len =
                            u32::from_le_bytes(self.reply_header[8..].try_into().unwrap()) as usize;
                        self.reply_len = len;
                        if self.body.len() < len {
                            self.body.resize(len, 0);
                        }
                        self.state = ConnState::ReadBody;
                    }
                }
                ConnState::ReadBody => {
                    if self.body_read < self.reply_len {
                        match self
                            .stream
                            .read(&mut self.body[self.body_read..self.reply_len])
                        {
                            Ok(0) => panic!("site {}: connection closed mid-payload", self.site),
                            Ok(n) => self.body_read += n,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => panic!("site {}: reply payload: {e}", self.site),
                        }
                    }
                    if self.body_read == self.reply_len {
                        let compute_ns =
                            u64::from_le_bytes(self.reply_header[..8].try_into().unwrap());
                        self.reply = Some(SiteReply {
                            payload: Bytes::copy_from_slice(&self.body[..self.reply_len]),
                            compute: Duration::from_nanos(compute_ns),
                        });
                        self.state = ConnState::Done;
                        return true;
                    }
                }
            }
        }
    }

    /// Best-effort shutdown frame + socket teardown (mirrors the TCP
    /// backend's `Drop`; the socket may be non-writable momentarily, so
    /// `WouldBlock` waits for writability once).
    fn send_shutdown(&mut self) {
        let mut frame = [0u8; 8];
        frame[..4].copy_from_slice(&SHUTDOWN.to_le_bytes());
        let mut written = 0usize;
        while written < frame.len() {
            match self.stream.write(&frame[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let mut fds = [PollFd::new(self.stream.as_raw_fd(), POLLOUT)];
                    if poll_fds(&mut fds, Some(Duration::from_secs(1))).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// One round's work for a shard: the round tag plus the payloads of the
/// shard's sites in local (round-robin) order; `None` marks a site the
/// fault plan silenced.
struct ShardWork {
    round: u32,
    msgs: Vec<Option<Bytes>>,
}

/// A shard's answer: replies in local order plus how many times its
/// readiness loop woke up serving the round.
struct ShardDone {
    replies: Vec<Option<SiteReply>>,
    wakeups: u64,
}

/// Coordinator-side handle to one event-loop shard thread.
struct ShardHandle {
    work: Sender<ShardWork>,
    done: Receiver<ShardDone>,
}

/// One shard's lifetime: serve rounds until the work channel closes,
/// then shut the connections down.
fn run_shard(mut conns: Vec<Conn>, work: Receiver<ShardWork>, done: Sender<ShardDone>) {
    let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len());
    let mut fd_conn: Vec<usize> = Vec::with_capacity(conns.len());
    while let Ok(ShardWork { round, msgs }) = work.recv() {
        debug_assert_eq!(msgs.len(), conns.len());
        // Arm every participating connection and push each as far as the
        // socket buffers allow — with loopback sockets the whole request
        // usually leaves here, and the poll loop below only waits for
        // replies.
        let mut pending = 0usize;
        for (conn, msg) in conns.iter_mut().zip(msgs) {
            match msg {
                Some(payload) => {
                    conn.begin(round, payload);
                    if !conn.advance() {
                        pending += 1;
                    }
                }
                None => {
                    conn.state = ConnState::Idle;
                    conn.reply = None;
                }
            }
        }
        let mut wakeups = 0u64;
        while pending > 0 {
            fds.clear();
            fd_conn.clear();
            for (ci, conn) in conns.iter().enumerate() {
                let interest = conn.interest();
                if interest != 0 {
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), interest));
                    fd_conn.push(ci);
                }
            }
            poll_fds(&mut fds, None).expect("poll over shard connections");
            wakeups += 1;
            for (fd, &ci) in fds.iter().zip(&fd_conn) {
                if fd.revents != 0 && conns[ci].state != ConnState::Done && conns[ci].advance() {
                    pending -= 1;
                }
            }
        }
        let replies = conns.iter_mut().map(|c| c.reply.take()).collect();
        if done.send(ShardDone { replies, wakeups }).is_err() {
            break; // coordinator went away mid-round
        }
    }
    for conn in &mut conns {
        conn.send_shutdown();
    }
}

/// The multiplexed event-loop backend. See the module docs.
pub struct MuxTransport {
    shards: Vec<ShardHandle>,
    sites: usize,
    recorder: RecorderHandle,
}

impl MuxTransport {
    /// Spawns one socket-serving worker per site plus `shards`
    /// event-loop threads inside `scope`, and connects everything.
    /// `shards` is clamped to `1..=sites`; the coordinator side runs
    /// exactly `min(shards.max(1), sites.max(1))` threads however many
    /// sites there are. Dropping the transport closes the work
    /// channels; shards send every worker the shutdown frame on their
    /// way out and `scope` joins them all.
    pub fn start<'scope, 'env, 'data: 'env>(
        scope: &'scope Scope<'scope, 'env>,
        sites: &'env mut [Box<dyn Site + 'data>],
        shards: usize,
        recorder: RecorderHandle,
    ) -> Self {
        let n = sites.len();
        let shard_count = shards.clamp(1, n.max(1));
        // Site workers: identical to the TCP backend (that is the
        // point — only the coordinator side changes).
        let mut per_shard: Vec<Vec<Conn>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (i, site) in sites.iter_mut().enumerate() {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener for site");
            let addr = listener.local_addr().expect("listener has a local addr");
            scope.spawn(move || {
                let (conn, _) = listener.accept().expect("accept coordinator connection");
                conn.set_nodelay(true).ok();
                serve_site(site.as_mut(), conn, i);
            });
            let stream = TcpStream::connect(addr).expect("connect to site worker");
            stream.set_nodelay(true).ok();
            stream
                .set_nonblocking(true)
                .expect("switch coordinator-side socket to non-blocking");
            per_shard[i % shard_count].push(Conn::new(stream, i));
        }
        let shards = per_shard
            .into_iter()
            .map(|conns| {
                let (work_tx, work_rx) = channel::<ShardWork>();
                let (done_tx, done_rx) = channel::<ShardDone>();
                scope.spawn(move || run_shard(conns, work_rx, done_tx));
                ShardHandle {
                    work: work_tx,
                    done: done_rx,
                }
            })
            .collect();
        Self {
            shards,
            sites: n,
            recorder,
        }
    }

    /// Number of event-loop shard threads serving the coordinator side.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

impl Transport for MuxTransport {
    fn num_sites(&self) -> usize {
        self.sites
    }

    fn exchange(&mut self, round: usize, msgs: &[Option<Bytes>]) -> Vec<Option<SiteReply>> {
        assert_eq!(msgs.len(), self.sites, "one message per site");
        let round = u32::try_from(round).expect("round fits the frame header");
        assert_ne!(round, SHUTDOWN, "round collides with the shutdown frame");
        let stride = self.shards.len();
        // Scatter: shard `j` owns global sites `j, j+stride, ...` in
        // local order, so every shard starts writing before any reply
        // is awaited.
        for (j, shard) in self.shards.iter().enumerate() {
            let local: Vec<Option<Bytes>> = msgs.iter().skip(j).step_by(stride).cloned().collect();
            shard
                .work
                .send(ShardWork { round, msgs: local })
                .expect("shard thread alive");
        }
        // Gather, scattering local reply order back to site order.
        let mut replies: Vec<Option<SiteReply>> = (0..self.sites).map(|_| None).collect();
        let on = self.recorder.enabled();
        for (j, shard) in self.shards.iter().enumerate() {
            let finished = shard.done.recv().expect("shard completes the round");
            if on {
                self.recorder.record(Event::ShardPoll {
                    round: round as usize,
                    shard: j,
                    wakeups: finished.wakeups,
                });
                self.recorder.add(Counter::PollWakeups, finished.wakeups);
            }
            for (l, reply) in finished.replies.into_iter().enumerate() {
                replies[j + l * stride] = reply;
            }
        }
        replies
    }
}
