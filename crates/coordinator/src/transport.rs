//! The transport abstraction under the protocol driver.
//!
//! A [`Transport`] moves one round's worth of messages between the
//! coordinator and the sites and reports each site's measured compute
//! time. The driver ([`crate::run_protocol`]) is transport-agnostic:
//! byte accounting charges the *payload* length of every message, so all
//! backends produce identical [`crate::CommStats`] charges for the same
//! protocol — backend framing (TCP length prefixes, channel envelopes)
//! is deliberately not charged, because the paper's communication bounds
//! are stated over message contents.
//!
//! Four backends exist:
//!
//! * [`InlineTransport`] — sites execute sequentially on the caller's
//!   thread. Deterministic timing; used when `RunOptions::parallel` is
//!   off.
//! * [`crate::ChannelTransport`] — one persistent worker thread per site
//!   with an mpsc mailbox; sites are spawned once per protocol
//!   execution, not once per round.
//! * [`crate::TcpTransport`] — each site behind a loopback TCP socket
//!   speaking length-prefixed frames, proving the wire formats survive a
//!   real socket.
//! * [`crate::MuxTransport`] — the same site workers and wire frames as
//!   TCP, but the coordinator drives all connections through a fixed
//!   pool of `poll(2)` event-loop shards, so its thread count is
//!   O(shards) instead of O(sites) — the high-fanout backend for
//!   thousands of sites in one process.

use crate::protocol::Site;
use bytes::Bytes;
use std::time::{Duration, Instant};

/// One site's answer to a round: the reply payload plus the site-side
/// measured compute time (transport metadata, never charged as bytes).
#[derive(Clone, Debug)]
pub struct SiteReply {
    /// The reply message.
    pub payload: Bytes,
    /// Wall-clock time the site spent inside `Site::handle`.
    pub compute: Duration,
}

/// A backend that can run one round of the star topology: deliver
/// `msgs[i]` to site `i`, wait for every reply.
///
/// A `None` entry marks a site the driver's [`crate::FaultPlan`] failed
/// this round: the backend must skip it entirely — no delivery, no site
/// compute, and a `None` in the reply slot — so a dropped site looks
/// identical on every backend.
pub trait Transport {
    /// Number of sites behind this transport.
    fn num_sites(&self) -> usize;

    /// Delivers `msgs[i]` to site `i` for `round` (skipping `None`
    /// entries) and collects every participating site's reply, in site
    /// order. `msgs.len()` must equal [`Self::num_sites`].
    fn exchange(&mut self, round: usize, msgs: &[Option<Bytes>]) -> Vec<Option<SiteReply>>;
}

/// Which backend [`crate::run_protocol`] executes sites on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Persistent per-site worker threads with mpsc mailboxes (in
    /// process; degrades to [`InlineTransport`] when
    /// `RunOptions::parallel` is off or there is a single site).
    #[default]
    Channel,
    /// Each site served by a worker behind a loopback TCP socket with
    /// length-prefixed frames.
    Tcp,
    /// TCP site workers multiplexed onto a fixed pool of coordinator
    /// event-loop shards (non-blocking sockets + `poll(2)` readiness
    /// loops); coordinator threads scale with the shard budget, not the
    /// site count.
    Mux,
}

impl TransportKind {
    /// The CLI-facing name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
            TransportKind::Mux => "mux",
        }
    }
}

/// A simulated star-network link: per-message one-way latency plus a
/// serialization rate.
///
/// The coordinator model's time bounds count rounds; a real deployment
/// also pays the network. [`crate::run_protocol`] folds this model into
/// [`crate::RoundStats::network`] so reports expose the
/// communication-vs-time trade-off without needing a congested lab
/// network: a round's simulated network time is
/// `max_i(latency + down_i/bandwidth + latency + up_i/bandwidth)` — all
/// site links operate in parallel, and each direction pays latency once
/// per message (even empty ones: a zero-byte kick is still a frame).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// One-way per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second (`f64::INFINITY` disables the
    /// serialization term).
    pub bandwidth: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::ideal()
    }
}

impl LinkModel {
    /// The zero-cost link: no latency, infinite bandwidth.
    pub fn ideal() -> Self {
        Self {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
        }
    }

    /// A link with the given one-way latency and bandwidth (bytes/sec).
    ///
    /// # Panics
    /// Panics unless `bandwidth` is positive.
    pub fn new(latency: Duration, bandwidth: f64) -> Self {
        assert!(
            bandwidth > 0.0 && !bandwidth.is_nan(),
            "bandwidth must be positive bytes/sec, got {bandwidth}"
        );
        Self { latency, bandwidth }
    }

    /// True when the link adds no simulated time.
    pub fn is_ideal(&self) -> bool {
        self.latency.is_zero() && self.bandwidth.is_infinite()
    }

    /// Ceiling on any single simulated transfer (~31 years). Pathological
    /// rates (e.g. `1e-300` bytes/sec) would otherwise overflow
    /// [`Duration`] and panic mid-protocol; the clamp keeps per-round
    /// values summable across a whole execution.
    pub const MAX_TRANSFER_SECS: f64 = 1e9;

    /// Serialization time for a payload of `bytes`, clamped to
    /// [`Self::MAX_TRANSFER_SECS`].
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth.is_infinite() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64((bytes as f64 / self.bandwidth).min(Self::MAX_TRANSFER_SECS))
        }
    }

    /// Simulated time for one message in one direction.
    pub fn one_way(&self, bytes: usize) -> Duration {
        self.latency + self.transfer_time(bytes)
    }

    /// Simulated network time of one round: every site's
    /// down-then-up exchange runs in parallel with the others', so the
    /// round costs the slowest site pair.
    pub fn round_network_time(&self, down: &[usize], up: &[usize]) -> Duration {
        down.iter()
            .zip(up)
            .map(|(&d, &u)| self.one_way(d) + self.one_way(u))
            .max()
            .unwrap_or_default()
    }
}

/// Sequential in-process backend: sites run one after another on the
/// caller's thread. No spawn overhead, deterministic timing — the test
/// and debugging mode.
pub struct InlineTransport<'a, 'data> {
    sites: &'a mut [Box<dyn Site + 'data>],
}

impl<'a, 'data> InlineTransport<'a, 'data> {
    /// Wraps the sites without spawning anything.
    pub fn new(sites: &'a mut [Box<dyn Site + 'data>]) -> Self {
        Self { sites }
    }
}

impl Transport for InlineTransport<'_, '_> {
    fn num_sites(&self) -> usize {
        self.sites.len()
    }

    fn exchange(&mut self, round: usize, msgs: &[Option<Bytes>]) -> Vec<Option<SiteReply>> {
        assert_eq!(msgs.len(), self.sites.len(), "one message per site");
        self.sites
            .iter_mut()
            .zip(msgs)
            .map(|(site, msg)| {
                msg.as_ref().map(|msg| {
                    let t0 = Instant::now();
                    let payload = site.handle(round, msg);
                    SiteReply {
                        payload,
                        compute: t0.elapsed(),
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_costs_nothing() {
        let link = LinkModel::ideal();
        assert!(link.is_ideal());
        assert_eq!(link.one_way(1 << 20), Duration::ZERO);
        assert_eq!(link.round_network_time(&[5, 9], &[100, 3]), Duration::ZERO);
    }

    #[test]
    fn link_math() {
        // 1 ms latency, 1000 bytes/sec.
        let link = LinkModel::new(Duration::from_millis(1), 1000.0);
        assert_eq!(link.transfer_time(500), Duration::from_millis(500));
        assert_eq!(link.one_way(0), Duration::from_millis(1));
        assert_eq!(link.one_way(500), Duration::from_millis(501));
        // Site 0: (1 + 100) + (1 + 200); site 1: (1 + 0) + (1 + 400).
        let t = link.round_network_time(&[100, 0], &[200, 400]);
        assert_eq!(t, Duration::from_millis(402));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::new(Duration::ZERO, 0.0);
    }

    #[test]
    fn pathological_bandwidth_saturates_instead_of_panicking() {
        // 1e-300 B/s would put a 300-byte transfer at ~3e302 seconds,
        // beyond what Duration can represent.
        let link = LinkModel::new(Duration::ZERO, 1e-300);
        let t = link.transfer_time(300);
        assert_eq!(t, Duration::from_secs_f64(LinkModel::MAX_TRANSFER_SECS));
        // Sums over a max-length protocol stay representable.
        let total = link.round_network_time(&[300], &[300]);
        assert_eq!(total, t + t);
    }

    #[test]
    fn kind_names() {
        assert_eq!(TransportKind::Channel.name(), "channel");
        assert_eq!(TransportKind::Tcp.name(), "tcp");
        assert_eq!(TransportKind::Mux.name(), "mux");
        assert_eq!(TransportKind::default(), TransportKind::Channel);
    }
}
