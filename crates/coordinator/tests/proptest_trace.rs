//! Trace determinism across backends: for any protocol plan and any
//! fault seed, the JSONL trace (`dpc.trace/v1`) recorded by the driver
//! must be *byte-identical* on the inline, channel-worker, loopback TCP,
//! and multiplexed event-loop transports — and a [`MetricsReport`]
//! aggregated from the replayed
//! trace must reconcile bit-for-bit with the run's own [`CommStats`].

use bytes::Bytes;
use dpc_coordinator::{
    run_protocol, CommStats, Coordinator, CoordinatorStep, FaultPlan, RunOptions, Site,
    TransportKind,
};
use dpc_obs::json::dur_to_ns;
use dpc_obs::{Collector, Event, MetricsReport, Trace};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Site whose reply is a deterministic function of (site id, round,
/// message) with input-dependent length — any transport bug that
/// reorders, truncates, or cross-wires messages changes the trace.
struct ScrambleSite {
    id: u8,
}

impl Site for ScrambleSite {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        let r = round as u8;
        let mut v: Vec<u8> = msg
            .as_ref()
            .iter()
            .map(|b| b.wrapping_mul(31) ^ self.id ^ r)
            .collect();
        let extra = (self.id as usize + round) % 5;
        v.resize(v.len() + extra, self.id.wrapping_add(r));
        v.push(self.id);
        v.push(r);
        Bytes::from(v)
    }
}

/// Fault-tolerant coordinator: ships a pre-generated per-round payload
/// plan and records whatever replies arrive (`None` marks a dropped
/// site, which faulted runs produce by design).
struct PlannedCoordinator {
    /// `plan[round][site]` downlink payloads.
    plan: Vec<Vec<Vec<u8>>>,
    collected: Vec<Vec<Option<Vec<u8>>>>,
}

impl Coordinator for PlannedCoordinator {
    type Output = Vec<Vec<Option<Vec<u8>>>>;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        if round > 0 {
            self.collected.push(
                replies
                    .iter()
                    .map(|b| b.as_ref().map(|b| b.to_vec()))
                    .collect(),
            );
        }
        match self.plan.get(round) {
            Some(msgs) => {
                CoordinatorStep::Messages(msgs.iter().map(|m| Bytes::copy_from_slice(m)).collect())
            }
            None => CoordinatorStep::Finish,
        }
    }

    fn finish(self) -> Vec<Vec<Option<Vec<u8>>>> {
        self.collected
    }
}

/// Runs the plan with a collector attached and the api-layer run span
/// recorded around the drive (the driver itself emits only round-level
/// events), returning the JSONL trace alongside the run's own stats.
fn run_traced(
    plan: &[Vec<Vec<u8>>],
    sites: usize,
    fault_seed: u64,
    options: RunOptions,
) -> (String, Trace, CommStats) {
    let collector = Arc::new(Collector::new());
    let rec = collector.handle();
    rec.record(Event::RunStart {
        label: "trace-proptest".to_string(),
        sites,
        seed: 0,
        fault_seed,
    });
    let mut site_boxes: Vec<Box<dyn Site>> = (0..sites)
        .map(|i| Box::new(ScrambleSite { id: i as u8 }) as Box<dyn Site>)
        .collect();
    let out = run_protocol(
        &mut site_boxes,
        PlannedCoordinator {
            plan: plan.to_vec(),
            collected: Vec::new(),
        },
        options.recorder(rec.clone()),
    );
    rec.record(Event::RunEnd {
        rounds: out.stats.num_rounds(),
    });
    let trace = collector.snapshot();
    (trace.to_jsonl(), trace, out.stats)
}

/// A fault schedule that exercises every event kind the driver emits:
/// dropout coins, a retry budget with timeouts, and straggler delays.
fn chaos_plan(fault_seed: u64) -> FaultPlan {
    FaultPlan::with_dropout(fault_seed, 0.3)
        .with_timeout(Duration::from_millis(5), 1)
        .stragglers(0.5, Duration::from_millis(3))
}

/// Asserts the byte/round/fault half of a replayed-trace report equals
/// the coordinator's own roll-up exactly (`u64` equality, no slack).
fn assert_report_reconciles(report: &MetricsReport, stats: &CommStats) {
    assert_eq!(report.rounds, stats.num_rounds() as u64);
    assert_eq!(report.total_bytes(), stats.total_bytes() as u64);
    assert_eq!(report.down_bytes, stats.downstream_bytes() as u64);
    assert_eq!(report.up_bytes, stats.upstream_bytes() as u64);
    assert_eq!(report.dropouts, stats.total_dropouts() as u64);
    assert_eq!(report.retries, stats.total_retries() as u64);
    assert_eq!(report.degraded_rounds, stats.degraded_rounds() as u64);
    assert_eq!(report.network_ns, dur_to_ns(stats.network_time()));
    for (round, r) in stats.rounds.iter().enumerate() {
        let per_round = report.round_network_ns[round];
        assert_eq!(per_round, dur_to_ns(r.network), "round {round}");
    }
}

/// Random payload plan: up to 2 rounds for up to 4 sites, each payload
/// 0–48 bytes of arbitrary content. The grid is generated at maximum
/// size and truncated (the vendored proptest has no `prop_flat_map`).
fn arb_plan() -> impl Strategy<Value = (usize, Vec<Vec<Vec<u8>>>)> {
    (
        1usize..5,
        1usize..3,
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0usize..256, 0..48)
                    .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
                4..=4,
            ),
            2..=2,
        ),
    )
        .prop_map(|(sites, rounds, grid)| {
            let plan: Vec<Vec<Vec<u8>>> = grid[..rounds]
                .iter()
                .map(|row| row[..sites].to_vec())
                .collect();
            (sites, plan)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For any plan and fault seed: all four backends record the same
    /// JSONL bytes, and each run's replayed metrics reconcile with its
    /// own `CommStats`. Mux is the sharpest case: its shard-poll events
    /// and wakeup counter are wall-clock-only and must never leak into
    /// the deterministic schema.
    #[test]
    fn traces_are_byte_identical_across_backends(
        (sites, plan) in arb_plan(),
        fault_seed in 0u64..1 << 32,
    ) {
        let faults = chaos_plan(fault_seed);
        let (base_jsonl, _, base_stats) = run_traced(
            &plan,
            sites,
            fault_seed,
            RunOptions::sequential().faults(faults.clone()),
        );
        let replay = Trace::from_jsonl(&base_jsonl).unwrap();
        assert_report_reconciles(&replay.metrics(), &base_stats);
        // The deterministic schema round-trips to the same bytes.
        prop_assert_eq!(replay.to_jsonl(), base_jsonl.clone());
        for options in [
            RunOptions::new(),                                  // channel workers
            RunOptions::new().transport(TransportKind::Tcp),    // loopback sockets
            RunOptions::new().transport(TransportKind::Mux).shards(2), // event loops
        ] {
            let transport = options.transport;
            let (jsonl, _, stats) =
                run_traced(&plan, sites, fault_seed, options.faults(faults.clone()));
            prop_assert_eq!(&jsonl, &base_jsonl, "trace diverged on {:?}", transport);
            assert_report_reconciles(&Trace::from_jsonl(&jsonl).unwrap().metrics(), &stats);
        }
    }
}

/// Deterministic spot check: a seed that provably injects faults still
/// produces identical traces everywhere, the fault events survive the
/// JSONL round trip, and wall-clock data is the *only* thing the replay
/// loses.
#[test]
fn faulted_trace_replays_exactly() {
    let plan = vec![vec![vec![7u8; 16]; 3]; 2];
    let faults = chaos_plan(0x5eed);
    let (jsonl, live, stats) = run_traced(
        &plan,
        3,
        0x5eed,
        RunOptions::sequential().faults(faults.clone()),
    );
    assert!(
        stats.total_dropouts() + stats.total_retries() > 0,
        "seed failed to inject any faults; pick another"
    );
    let replay = Trace::from_jsonl(&jsonl).unwrap();
    assert_report_reconciles(&replay.metrics(), &stats);
    // Fault events survive replay one-for-one.
    let fault_count = |t: &Trace| {
        t.events
            .iter()
            .filter(|e| matches!(e, Event::Fault { .. }))
            .count()
    };
    assert_eq!(fault_count(&replay), fault_count(&live));
    // Wall clock is all the replay loses: zeroed compute, same bytes.
    assert_eq!(replay.metrics().site_compute_ns, 0);
    assert_eq!(replay.to_jsonl(), jsonl);
    // And the TCP backend records those same bytes.
    let (tcp_jsonl, _, _) = run_traced(
        &plan,
        3,
        0x5eed,
        RunOptions::new()
            .transport(TransportKind::Tcp)
            .faults(faults.clone()),
    );
    assert_eq!(tcp_jsonl, jsonl);
    // So does mux, despite recording shard-poll wakeups internally.
    let (mux_jsonl, _, _) = run_traced(
        &plan,
        3,
        0x5eed,
        RunOptions::new()
            .transport(TransportKind::Mux)
            .shards(2)
            .faults(faults),
    );
    assert_eq!(mux_jsonl, jsonl);
}
