//! Fault-injection properties: seeded fault schedules are decided by a
//! pure hash of `(seed, site, round, attempt)`, so the same `FaultPlan`
//! must produce the same drops, the same transcripts, and the same byte
//! charges on every transport backend — and the coordinator must charge
//! *nothing* for a site the plan silenced. The responder-subset
//! re-allocation used by the protocols is checked against the Lemma 3.3
//! invariants (rank-`ρt` threshold, per-site prefix winners, exchange
//! optimality) directly.

use bytes::Bytes;
use dpc_coordinator::{
    run_protocol, CommStats, Coordinator, CoordinatorStep, FaultPlan, RunOptions, Site,
    TransportKind,
};
use dpc_core::wire::ThresholdMsg;
use dpc_core::{allocate_outliers, site_budget_from_threshold, ConvexProfile};
use proptest::prelude::*;
use std::time::Duration;

/// Deterministic reply that mixes site id, round, and payload (the same
/// scramble as `proptest_transport.rs`) so transcripts pin delivery
/// content, order, and length all at once.
struct ScrambleSite {
    id: u8,
}

impl Site for ScrambleSite {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        let r = round as u8;
        let mut v: Vec<u8> = msg
            .as_ref()
            .iter()
            .map(|b| b.wrapping_mul(31) ^ self.id ^ r)
            .collect();
        let extra = (self.id as usize + round) % 5;
        v.resize(v.len() + extra, self.id.wrapping_add(r));
        v.push(self.id);
        v.push(r);
        Bytes::from(v)
    }
}

/// Ships a pre-generated payload plan and records the full transcript of
/// replies, `None`s included — the transcript IS the value under test.
struct FaultTolerantPlanned {
    /// `plan[round][site]` downlink payloads.
    plan: Vec<Vec<Vec<u8>>>,
    collected: Vec<Vec<Option<Vec<u8>>>>,
}

impl Coordinator for FaultTolerantPlanned {
    type Output = Vec<Vec<Option<Vec<u8>>>>;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        if round > 0 {
            self.collected.push(
                replies
                    .iter()
                    .map(|b| b.as_ref().map(|b| b.to_vec()))
                    .collect(),
            );
        }
        match self.plan.get(round) {
            Some(msgs) => {
                CoordinatorStep::Messages(msgs.iter().map(|m| Bytes::copy_from_slice(m)).collect())
            }
            None => CoordinatorStep::Finish,
        }
    }

    fn finish(self) -> Vec<Vec<Option<Vec<u8>>>> {
        self.collected
    }
}

fn run_faulty_plan(
    plan: &[Vec<Vec<u8>>],
    sites: usize,
    options: RunOptions,
) -> (Vec<Vec<Option<Vec<u8>>>>, CommStats) {
    let mut site_boxes: Vec<Box<dyn Site>> = (0..sites)
        .map(|i| Box::new(ScrambleSite { id: i as u8 }) as Box<dyn Site>)
        .collect();
    let out = run_protocol(
        &mut site_boxes,
        FaultTolerantPlanned {
            plan: plan.to_vec(),
            collected: Vec::new(),
        },
        options,
    );
    (out.output, out.stats)
}

/// Random payload plan: up to 3 rounds for up to 4 sites (generated at
/// maximum size and truncated; the vendored proptest has no
/// `prop_flat_map`).
fn arb_plan() -> impl Strategy<Value = (usize, Vec<Vec<Vec<u8>>>)> {
    (
        1usize..5,
        1usize..4,
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0usize..256, 0..32)
                    .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
                4..=4,
            ),
            3..=3,
        ),
    )
        .prop_map(|(sites, rounds, grid)| {
            let plan: Vec<Vec<Vec<u8>>> = grid[..rounds]
                .iter()
                .map(|row| row[..sites].to_vec())
                .collect();
            (sites, plan)
        })
}

/// Random fault plan: dropout up to 0.8, optional crash, stragglers that
/// may or may not beat the (optional) timeout, and up to 2 retries.
fn arb_faults() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::any::<u64>(),
        0.0f64..0.8,
        0u32..3,
        0.0f64..0.5,
        proptest::any::<bool>(),
    )
        .prop_map(|(seed, dropout, retries, straggler_prob, timed)| {
            let mut plan = FaultPlan::with_dropout(seed, dropout)
                .stragglers(straggler_prob, Duration::from_millis(5));
            if timed {
                // Timeout below the max straggler delay: some delayed
                // attempts fail, exercising the retry/abandon path.
                plan = plan.with_timeout(Duration::from_millis(2), retries);
            } else {
                plan.retries = retries;
            }
            if seed % 3 == 0 {
                plan = plan.crash(seed as usize % 4, (seed >> 2) as usize % 3);
            }
            plan
        })
}

/// Round-by-round equality of byte charges *and* fault accounting.
fn assert_runs_identical(a: &CommStats, b: &CommStats) {
    assert_eq!(a.num_rounds(), b.num_rounds());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.coordinator_to_sites, rb.coordinator_to_sites);
        assert_eq!(ra.sites_to_coordinator, rb.sites_to_coordinator);
        assert_eq!(ra.dropouts, rb.dropouts);
        assert_eq!(ra.retries, rb.retries);
        assert_eq!(ra.degraded, rb.degraded);
        assert_eq!(ra.network, rb.network);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// (a) Same fault seed ⇒ byte-identical transcript — which sites
    /// dropped, what everyone else replied, what got charged, and the
    /// simulated clock — on all four backends.
    #[test]
    fn fault_schedule_is_transport_independent(
        (sites, plan) in arb_plan(),
        faults in arb_faults(),
    ) {
        let base = RunOptions::sequential().faults(faults.clone());
        let (base_out, base_stats) = run_faulty_plan(&plan, sites, base.clone());
        for options in [
            RunOptions::new().faults(faults.clone()),
            RunOptions::new().faults(faults.clone()).transport(TransportKind::Tcp),
            RunOptions::new().faults(faults.clone()).transport(TransportKind::Mux).shards(2),
        ] {
            let (out, stats) = run_faulty_plan(&plan, sites, options.clone());
            prop_assert_eq!(&out, &base_out, "transcript diverged on {:?}", options.transport);
            assert_runs_identical(&base_stats, &stats);
        }
        // And the run is self-reproducible: a second inline run matches.
        let (again_out, again_stats) = run_faulty_plan(&plan, sites, base);
        prop_assert_eq!(&again_out, &base_out);
        assert_runs_identical(&base_stats, &again_stats);
    }

    /// (c) The accounting only ever charges delivered bytes: a dropped
    /// site moves nothing in either direction that round, dropout counts
    /// match the `None`s in the transcript, and aliveness is monotone
    /// (crash-stop: a site that misses a round never comes back).
    #[test]
    fn dropped_sites_are_never_charged(
        (sites, plan) in arb_plan(),
        faults in arb_faults(),
    ) {
        let (out, stats) =
            run_faulty_plan(&plan, sites, RunOptions::sequential().faults(faults));
        prop_assert_eq!(out.len(), plan.len());
        let mut alive = vec![true; sites];
        for (round, (replies, rs)) in out.iter().zip(&stats.rounds).enumerate() {
            let mut nones = 0;
            for (i, reply) in replies.iter().enumerate() {
                match reply {
                    None => {
                        nones += 1;
                        prop_assert_eq!(
                            rs.coordinator_to_sites[i], 0,
                            "round {} charged a dropped site downstream", round
                        );
                        prop_assert_eq!(
                            rs.sites_to_coordinator[i], 0,
                            "round {} charged a dropped site upstream", round
                        );
                        alive[i] = false;
                    }
                    Some(_) => {
                        prop_assert!(
                            alive[i],
                            "site {} replied in round {} after dropping out", i, round
                        );
                        prop_assert_eq!(rs.coordinator_to_sites[i], plan[round][i].len());
                    }
                }
            }
            prop_assert_eq!(rs.dropouts, nones);
            prop_assert_eq!(rs.degraded, nones > 0);
        }
        let total_nones: usize = out
            .iter()
            .map(|r| r.iter().filter(|x| x.is_none()).count())
            .sum();
        prop_assert_eq!(stats.total_dropouts(), total_nones);
    }

    /// (b) Responder-subset allocation preserves the Lemma 3.3
    /// invariants. Dropping sites just deletes their profiles; the
    /// stable (ℓ, i, q) order over the survivors is order-isomorphic to
    /// the original-id order, so broadcasting the *original* exceptional
    /// id (the protocols' remap) makes every surviving site derive
    /// exactly its allocated prefix from the threshold.
    #[test]
    fn responder_allocation_preserves_lemma_3_3(
        grid in proptest::collection::vec(
            proptest::collection::vec(0.0f64..5.0, 6..=6),
            5..=5,
        ),
        sites in 2usize..6,
        t in 1usize..6,
        rho in 1.0f64..3.0,
        mask in proptest::any::<u32>(),
    ) {
        // Convex profiles from non-increasing marginal sequences.
        let profiles: Vec<ConvexProfile> = grid[..sites]
            .iter()
            .map(|marg| {
                let mut marg: Vec<f64> = marg[..t].to_vec();
                marg.sort_by(|a, b| b.total_cmp(a));
                let mut pts = vec![(0usize, 30.0)];
                let mut f = 30.0;
                for (q, m) in marg.iter().enumerate() {
                    f -= m;
                    pts.push((q + 1, f));
                }
                ConvexProfile::lower_hull(&pts)
            })
            .collect();
        // Any non-empty responder subset.
        let responders: Vec<usize> = (0..sites)
            .filter(|i| mask & (1 << i) != 0 || mask % sites as u32 == *i as u32)
            .collect();
        let subset: Vec<ConvexProfile> =
            responders.iter().map(|&i| profiles[i].clone()).collect();

        let alloc = allocate_outliers(&subset, t, rho);

        // Threshold invariant: `Σ t_i` equals the clamped rank `⌊ρt⌋`,
        // and the threshold is the rank-th largest surviving marginal.
        let rank = ((rho * t as f64).floor() as usize).clamp(1, subset.len() * t);
        prop_assert_eq!(alloc.total(), rank);
        let mut marginals: Vec<f64> = subset
            .iter()
            .flat_map(|p| (1..=t).map(|q| p.marginal(q)).collect::<Vec<_>>())
            .collect();
        marginals.sort_by(|a, b| b.total_cmp(a));
        prop_assert_eq!(alloc.threshold.to_bits(), marginals[rank - 1].to_bits());

        // Prefix invariant, through the sites' own threshold rule with
        // *original* ids (the remap the coordinators broadcast).
        let orig_i0 = responders[alloc.i0];
        for (sub_idx, &orig) in responders.iter().enumerate() {
            let thr = ThresholdMsg {
                threshold: alloc.threshold,
                i0: orig_i0 as u64,
                q0: alloc.q0 as u64,
                exceptional: orig == orig_i0,
            };
            let derived = site_budget_from_threshold(&profiles[orig], orig, t, &thr);
            if orig == orig_i0 {
                // The exceptional site snaps up to its next hull vertex.
                prop_assert!(derived >= alloc.q0.min(t));
                prop_assert!(profiles[orig].is_vertex(derived) || derived >= t);
            } else {
                prop_assert_eq!(
                    derived, alloc.t_i[sub_idx],
                    "site {} (responder {}) derived {} but was allocated {}",
                    orig, sub_idx, derived, alloc.t_i[sub_idx]
                );
            }
        }

        // Exchange optimality over the survivors: greedy matches the DP
        // optimum at the same budget.
        let greedy: f64 = subset
            .iter()
            .zip(&alloc.t_i)
            .map(|(p, &ti)| p.eval(ti as f64))
            .sum();
        let opt = dp_optimum(&subset, t, alloc.total());
        prop_assert!(greedy <= opt + 1e-6, "greedy {} vs dp {}", greedy, opt);
    }
}

/// DP optimum of `min Σ f_i(t_i)` s.t. `Σ t_i ≤ budget`, `0 ≤ t_i ≤ t`.
fn dp_optimum(profiles: &[ConvexProfile], t: usize, budget: usize) -> f64 {
    let mut dp = vec![f64::INFINITY; budget + 1];
    dp[0] = 0.0;
    for p in profiles {
        let mut next = vec![f64::INFINITY; budget + 1];
        for used in 0..=budget {
            if dp[used].is_finite() {
                for ti in 0..=t.min(budget - used) {
                    let v = dp[used] + p.eval(ti as f64);
                    if v < next[used + ti] {
                        next[used + ti] = v;
                    }
                }
            }
        }
        dp = next;
    }
    dp.iter().copied().fold(f64::INFINITY, f64::min)
}

/// A crash at round 0 with no dropout: the exact planned site goes
/// silent at the exact planned round, on every backend.
#[test]
fn planned_crash_is_exact() {
    let plan = vec![vec![vec![1u8; 8]; 3]; 3];
    let faults = FaultPlan::none().crash(1, 1);
    for options in [
        RunOptions::sequential().faults(faults.clone()),
        RunOptions::new().faults(faults.clone()),
        RunOptions::new()
            .faults(faults.clone())
            .transport(TransportKind::Tcp),
        RunOptions::new()
            .faults(faults)
            .transport(TransportKind::Mux)
            .shards(2),
    ] {
        let (out, stats) = run_faulty_plan(&plan, 3, options);
        assert!(out[0].iter().all(|r| r.is_some()), "round 0 is clean");
        for (replies, round) in out.iter().zip(&stats.rounds).skip(1) {
            assert!(replies[0].is_some());
            assert!(replies[1].is_none(), "site 1 crashed at round 1");
            assert!(replies[2].is_some());
            assert_eq!(round.dropouts, 1);
            assert!(round.degraded);
        }
    }
}
