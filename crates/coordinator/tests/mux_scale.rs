//! High-fanout smoke test for the multiplexed event-loop transport: a
//! single process drives 1024 sites through a 4-shard mux coordinator,
//! produces byte-identical charges to the inline baseline, and — the
//! point of the backend — adds only O(shards) coordinator-side threads
//! on top of the per-site workers.

use bytes::Bytes;
use dpc_coordinator::{
    run_protocol, CommStats, Coordinator, CoordinatorStep, RunOptions, Site, TransportKind,
};

const SITES: usize = 1024;
const SHARDS: usize = 4;

/// Current thread count of this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line in /proc/self/status")
        .trim()
        .parse()
        .unwrap()
}

/// Site that tags its reply with its id and the round, so cross-wired
/// or reordered deliveries change both contents and charges.
struct TagSite {
    id: u32,
}

impl Site for TagSite {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        let mut v = msg.to_vec();
        v.extend_from_slice(&self.id.to_le_bytes());
        v.extend_from_slice(&(round as u32).to_le_bytes());
        // Length varies per site so per-site byte charges differ.
        v.resize(v.len() + (self.id as usize % 7), self.id as u8);
        Bytes::from(v)
    }
}

/// Two-round broadcast coordinator that checksums every reply and, on
/// Linux, samples the process thread count mid-protocol — while the
/// site workers and shard loops are all alive.
struct FanoutCoordinator {
    checksum: u64,
    reply_bytes: u64,
    peak_threads: usize,
}

impl Coordinator for FanoutCoordinator {
    type Output = (u64, u64, usize);

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        #[cfg(target_os = "linux")]
        {
            self.peak_threads = self.peak_threads.max(thread_count());
        }
        if round > 0 {
            for (i, reply) in replies.iter().enumerate() {
                let r = reply.as_ref().expect("no faults injected");
                self.reply_bytes += r.len() as u64;
                for &b in r.iter() {
                    self.checksum = self
                        .checksum
                        .wrapping_mul(1099511628211)
                        .wrapping_add(b as u64 ^ i as u64);
                }
            }
        }
        if round < 2 {
            CoordinatorStep::Messages(
                (0..SITES)
                    .map(|i| Bytes::from(vec![(i % 251) as u8; 8 + i % 5]))
                    .collect(),
            )
        } else {
            CoordinatorStep::Finish
        }
    }

    fn finish(self) -> (u64, u64, usize) {
        (self.checksum, self.reply_bytes, self.peak_threads)
    }
}

fn run(options: RunOptions) -> ((u64, u64, usize), CommStats) {
    let mut sites: Vec<Box<dyn Site>> = (0..SITES)
        .map(|i| Box::new(TagSite { id: i as u32 }) as Box<dyn Site>)
        .collect();
    let out = run_protocol(
        &mut sites,
        FanoutCoordinator {
            checksum: 0,
            reply_bytes: 0,
            peak_threads: 0,
        },
        options,
    );
    (out.output, out.stats)
}

#[test]
fn mux_drives_1024_sites_with_a_handful_of_coordinator_threads() {
    #[cfg(target_os = "linux")]
    let before = thread_count();

    let (base, base_stats) = run(RunOptions::sequential());
    let (mux, mux_stats) = run(RunOptions::new()
        .transport(TransportKind::Mux)
        .shards(SHARDS));

    // Same transcript, same charges, at 1024 sites.
    assert_eq!(mux.0, base.0, "reply checksum diverged");
    assert_eq!(mux.1, base.1, "reply byte total diverged");
    assert!(mux.1 > 0);
    assert_eq!(base_stats.num_rounds(), mux_stats.num_rounds());
    for (ra, rb) in base_stats.rounds.iter().zip(&mux_stats.rounds) {
        assert_eq!(ra.coordinator_to_sites, rb.coordinator_to_sites);
        assert_eq!(ra.sites_to_coordinator, rb.sites_to_coordinator);
    }

    // Thread budget: mid-protocol the process holds the 1024 site
    // workers plus the coordinator side. The coordinator side must be
    // the shard pool, not a thread per site — allow O(1) slack for the
    // test runner's own threads.
    #[cfg(target_os = "linux")]
    {
        let coordinator_side = mux.2.saturating_sub(before).saturating_sub(SITES);
        assert!(
            coordinator_side <= SHARDS + 2,
            "coordinator-side threads {coordinator_side} exceed the {SHARDS}-shard budget \
             (peak {}, baseline {before})",
            mux.2
        );
        assert!(mux.2 >= SITES, "site workers were not running");
    }
}
