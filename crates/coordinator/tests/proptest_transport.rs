//! Cross-backend equivalence: for any protocol, the inline, persistent
//! channel-worker, loopback TCP, and multiplexed event-loop transports
//! must produce the same output and *byte-identical* [`CommStats`]
//! charges — timing is the only thing allowed to differ between
//! backends.

use bytes::Bytes;
use dpc_coordinator::{
    run_protocol, CommStats, Coordinator, CoordinatorStep, RunOptions, Site, TransportKind,
};
use proptest::prelude::*;

/// Site whose reply is a deterministic function of (site id, round,
/// message): every payload byte is mixed with the site id and round, an
/// id/round trailer is appended, and the reply *length* also depends on
/// the input — so any transport bug that reorders, truncates, or
/// cross-wires messages changes both contents and byte charges.
struct ScrambleSite {
    id: u8,
}

impl Site for ScrambleSite {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        let r = round as u8;
        let mut v: Vec<u8> = msg
            .as_ref()
            .iter()
            .map(|b| b.wrapping_mul(31) ^ self.id ^ r)
            .collect();
        let extra = (self.id as usize + round) % 5;
        v.resize(v.len() + extra, self.id.wrapping_add(r));
        v.push(self.id);
        v.push(r);
        Bytes::from(v)
    }
}

/// Coordinator that ships a pre-generated per-round, per-site payload
/// plan and records every reply verbatim.
struct PlannedCoordinator {
    /// `plan[round][site]` downlink payloads.
    plan: Vec<Vec<Vec<u8>>>,
    collected: Vec<Vec<Vec<u8>>>,
}

impl Coordinator for PlannedCoordinator {
    type Output = Vec<Vec<Vec<u8>>>;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        if round > 0 {
            self.collected.push(
                replies
                    .iter()
                    .map(|b| b.as_ref().expect("no faults injected").to_vec())
                    .collect(),
            );
        }
        match self.plan.get(round) {
            Some(msgs) => {
                CoordinatorStep::Messages(msgs.iter().map(|m| Bytes::copy_from_slice(m)).collect())
            }
            None => CoordinatorStep::Finish,
        }
    }

    fn finish(self) -> Vec<Vec<Vec<u8>>> {
        self.collected
    }
}

fn run_plan(
    plan: &[Vec<Vec<u8>>],
    sites: usize,
    options: RunOptions,
) -> (Vec<Vec<Vec<u8>>>, CommStats) {
    let mut site_boxes: Vec<Box<dyn Site>> = (0..sites)
        .map(|i| Box::new(ScrambleSite { id: i as u8 }) as Box<dyn Site>)
        .collect();
    let out = run_protocol(
        &mut site_boxes,
        PlannedCoordinator {
            plan: plan.to_vec(),
            collected: Vec::new(),
        },
        options,
    );
    (out.output, out.stats)
}

/// Asserts two runs charged exactly the same bytes, round by round,
/// direction by direction, site by site.
fn assert_charges_identical(a: &CommStats, b: &CommStats) {
    assert_eq!(a.num_rounds(), b.num_rounds());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.coordinator_to_sites, rb.coordinator_to_sites);
        assert_eq!(ra.sites_to_coordinator, rb.sites_to_coordinator);
    }
}

/// Random payload plan: up to 2 rounds for up to 4 sites, each payload
/// 0–48 bytes of arbitrary content. The grid is generated at maximum
/// size and truncated (the vendored proptest has no `prop_flat_map`).
fn arb_plan() -> impl Strategy<Value = (usize, Vec<Vec<Vec<u8>>>)> {
    (
        1usize..5,
        1usize..3,
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0usize..256, 0..48)
                    .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
                4..=4,
            ),
            2..=2,
        ),
    )
        .prop_map(|(sites, rounds, grid)| {
            let plan: Vec<Vec<Vec<u8>>> = grid[..rounds]
                .iter()
                .map(|row| row[..sites].to_vec())
                .collect();
            (sites, plan)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn channel_and_tcp_match_inline_bytes_and_output((sites, plan) in arb_plan()) {
        let (base_out, base_stats) =
            run_plan(&plan, sites, RunOptions::sequential());
        for options in [
            RunOptions::new(),                                  // persistent channel workers
            RunOptions::new().transport(TransportKind::Tcp),    // loopback sockets
            RunOptions::new().transport(TransportKind::Mux).shards(2), // event loops
        ] {
            let (out, stats) = run_plan(&plan, sites, options.clone());
            prop_assert_eq!(&out, &base_out, "output diverged on {:?}", options.transport);
            assert_charges_identical(&base_stats, &stats);
        }
    }
}

#[test]
fn large_frames_cross_the_socket_intact() {
    // One 256 KiB payload each way — bigger than any single socket
    // buffer default, so partial reads/writes are actually exercised.
    let plan = vec![vec![vec![0xA5u8; 256 * 1024]; 2]];
    let (base_out, base_stats) = run_plan(&plan, 2, RunOptions::sequential());
    let (tcp_out, tcp_stats) = run_plan(&plan, 2, RunOptions::new().transport(TransportKind::Tcp));
    assert_eq!(base_out, tcp_out);
    assert_charges_identical(&base_stats, &tcp_stats);
    assert_eq!(
        tcp_stats.rounds[0].coordinator_to_sites,
        vec![256 * 1024; 2]
    );
    // The non-blocking mux state machines hit WouldBlock mid-frame on
    // payloads this size; the same bytes must still arrive.
    let (mux_out, mux_stats) = run_plan(
        &plan,
        2,
        RunOptions::new().transport(TransportKind::Mux).shards(1),
    );
    assert_eq!(base_out, mux_out);
    assert_charges_identical(&base_stats, &mux_stats);
}
