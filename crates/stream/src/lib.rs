//! Streaming layer for distributed partial clustering.
//!
//! The paper's protocols are one-shot: static shards, one summary, one
//! solve. This crate lets points *arrive over time* while reusing the
//! same mergeable per-site summaries as the composition primitive:
//!
//! * [`summary`] — [`Summary`], the coreset object: `2k` weighted centers
//!   plus up to `t` explicitly tracked outlier entries, with exact weight
//!   conservation and a per-objective accumulated error bound;
//! * [`engine`] — [`StreamEngine`], insertion-only merge-and-reduce:
//!   blocks are summarized and composed up a binary-counter tree, keeping
//!   `O(log n)` live summaries of `O(k + t)` entries each;
//! * [`window`] — [`SlidingWindowEngine`], a sliding window via an
//!   exponential histogram of block summaries with bucketed expiry;
//! * [`continuous`] — [`ContinuousCluster`], continuous *distributed*
//!   clustering: each simulated site ingests its own stream and the fleet
//!   periodically re-runs the 2-round Algorithm 1 sync on the live
//!   summaries, with every byte charged through
//!   [`dpc_coordinator::CommStats`];
//! * [`wire`] — the weighted summary message the sync protocol ships.

pub mod continuous;
pub mod engine;
pub mod summary;
pub mod window;
pub mod wire;

pub use continuous::{ContinuousCluster, ContinuousConfig, SyncRecord};
pub use engine::{StreamConfig, StreamEngine, StreamSolution};
pub use summary::{solve_weighted, Summary, SummaryParams};
pub use window::SlidingWindowEngine;
pub use wire::SummaryMsg;
