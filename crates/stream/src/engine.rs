//! The insertion-only streaming engine: buffer → summarize → carry-merge.
//!
//! Points arrive one at a time and are buffered into blocks of
//! `block_size`. Each full block is summarized ([`Summary::from_block`])
//! into a level-0 coreset and inserted into a binary-counter tree: if
//! level `ℓ` is occupied, the two summaries merge into level `ℓ+1`,
//! carrying until a free slot is found. After `n` insertions at most
//! `⌈log₂(n / block_size)⌉ + 1` summaries are live, each holding at most
//! `2k + t + 1` entries — the `O((k + t) · log n)` live-point bound the
//! integration suite asserts.

use crate::summary::{solve_weighted, Summary, SummaryParams};
use dpc_cluster::{BicriteriaParams, LocalSearchParams};
use dpc_metric::{Objective, PointSet, ThreadBudget, WeightedSet};
use dpc_obs::{Counter, RecorderHandle};

/// Streaming engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Number of centers `k` reported at query time (summaries keep `2k`).
    pub k: usize,
    /// Outlier budget `t`, tracked at every level of the tree.
    pub t: usize,
    /// Objective (median / means / center).
    pub objective: Objective,
    /// Points buffered before a block is summarized.
    pub block_size: usize,
    /// Query-time outlier relaxation ε (the solve may exclude `(1+ε)t`).
    pub eps: f64,
    /// λ-bisection iterations inside the solvers.
    pub lambda_iters: usize,
    /// Inner local-search tuning.
    pub ls: LocalSearchParams,
    /// Thread budget for the bulk kernels inside summarize/merge/query
    /// solves (wall-clock only — summaries and answers are identical at
    /// any budget).
    pub threads: ThreadBudget,
}

impl StreamConfig {
    /// Defaults: median objective, blocks of 256, and ε = 1 at query time
    /// (matching `MedianConfig::new`: the solve may exclude up to `2t`).
    /// Summaries always track the exact `t` internally.
    pub fn new(k: usize, t: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            t,
            objective: Objective::Median,
            block_size: 256,
            eps: 1.0,
            lambda_iters: 12,
            ls: LocalSearchParams::default(),
            threads: ThreadBudget::serial(),
        }
    }

    /// Caps the bulk-kernel thread budget.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = ThreadBudget::new(n);
        self
    }

    /// Sets the query-time outlier relaxation ε.
    ///
    /// ε = 0 is legal but a footgun: queries may then exclude only the
    /// exact `t`, so one burst of more than `t` far outliers becomes
    /// unexcludable and hijacks centers. The CLI warns on it.
    ///
    /// # Panics
    /// Panics unless `eps` is finite and non-negative.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self.validate();
        self
    }

    /// Checks the configuration invariants (`k > 0`, `block_size > 0`,
    /// `eps` finite and non-negative). Engines call this on
    /// construction, so a bad value written directly into the public
    /// fields fails fast instead of silently corrupting queries.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    pub fn validate(&self) {
        assert!(self.k > 0, "k must be positive");
        assert!(self.block_size > 0, "block size must be positive");
        assert!(
            self.eps.is_finite() && self.eps >= 0.0,
            "eps must be finite and non-negative, got {}",
            self.eps
        );
    }

    /// Switches to the means objective.
    pub fn means(mut self) -> Self {
        self.objective = Objective::Means;
        self
    }

    /// Switches to the center objective.
    pub fn center(mut self) -> Self {
        self.objective = Objective::Center;
        self
    }

    /// Sets the block size.
    pub fn block(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    pub(crate) fn summary_params(&self) -> SummaryParams {
        let mut ls = self.ls;
        ls.threads = self.threads;
        SummaryParams {
            k: self.k,
            t: self.t,
            objective: self.objective,
            lambda_iters: self.lambda_iters,
            ls,
        }
    }

    pub(crate) fn solver_params(&self) -> BicriteriaParams {
        let mut ls = self.ls;
        ls.threads = self.threads;
        BicriteriaParams {
            eps: self.eps,
            lambda_iters: self.lambda_iters,
            ls,
        }
    }
}

/// Result of querying a streaming engine.
#[derive(Clone, Debug)]
pub struct StreamSolution {
    /// The `k` chosen centers (coordinates).
    pub centers: PointSet,
    /// Objective value over the live weighted instance (a proxy for the
    /// true stream cost; re-evaluate against retained raw data for ground
    /// truth in experiments).
    pub cost: f64,
    /// Weight excluded as outliers by the query solve.
    pub excluded_weight: f64,
    /// Live summary entries the query ran on (the memory footprint).
    pub live_points: usize,
}

/// Insertion-only merge-and-reduce streaming engine.
#[derive(Clone, Debug)]
pub struct StreamEngine {
    cfg: StreamConfig,
    dim: usize,
    buffer: PointSet,
    /// Binary-counter slots: `levels[ℓ]` holds the summary covering
    /// `block_size · 2^ℓ` points, or `None`.
    levels: Vec<Option<Summary>>,
    ingested: u64,
    recorder: RecorderHandle,
}

impl StreamEngine {
    /// Creates an engine for points in `R^dim`.
    ///
    /// # Panics
    /// Panics if `cfg` violates [`StreamConfig::validate`].
    pub fn new(dim: usize, cfg: StreamConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            dim,
            buffer: PointSet::with_capacity(dim, cfg.block_size),
            levels: Vec::new(),
            ingested: 0,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches a recorder: block summarizations and carry-merges flush
    /// as counters (one flush per [`StreamEngine::flush`] call).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Inserts one point.
    pub fn push(&mut self, coords: &[f64]) {
        self.buffer.push(coords);
        self.ingested += 1;
        if self.buffer.len() >= self.cfg.block_size {
            self.flush();
        }
    }

    /// Summarizes the current partial block (if any) and inserts it into
    /// the tree. Called automatically on full blocks; call manually before
    /// teardown to fold a trailing partial block in.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let block = std::mem::replace(
            &mut self.buffer,
            PointSet::with_capacity(self.dim, self.cfg.block_size),
        );
        let params = self.cfg.summary_params();
        let mut carry = Summary::from_block(&block, &params);
        let mut lvl = 0usize;
        // Local merge tally, flushed once per flush() call.
        let mut merges = 0u64;
        loop {
            if lvl == self.levels.len() {
                self.levels.push(Some(carry));
                break;
            }
            match self.levels[lvl].take() {
                None => {
                    self.levels[lvl] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = Summary::merge(&existing, &carry, &params);
                    merges += 1;
                    lvl += 1;
                }
            }
        }
        if self.recorder.enabled() {
            self.recorder.add(Counter::BlocksSummarized, 1);
            self.recorder.add(Counter::SummariesMerged, merges);
        }
    }

    /// Total points inserted so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Number of live summaries (occupied tree levels).
    pub fn live_summaries(&self) -> usize {
        self.levels.iter().flatten().count()
    }

    /// Total live entries: summary points plus the unsummarized buffer.
    pub fn live_points(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(Summary::len)
            .sum::<usize>()
            + self.buffer.len()
    }

    /// Total live weight (should equal [`Self::ingested`] up to float
    /// rounding — weights are conserved through every merge).
    pub fn live_weight(&self) -> f64 {
        self.levels
            .iter()
            .flatten()
            .map(Summary::total_weight)
            .sum::<f64>()
            + self.buffer.len() as f64
    }

    /// Materializes the live weighted instance (all summaries plus the
    /// buffer at unit weight).
    pub fn live_instance(&self) -> (PointSet, WeightedSet) {
        let mut pts = PointSet::new(self.dim);
        let mut w = WeightedSet::new();
        for s in self.levels.iter().flatten() {
            s.append_to(&mut pts, &mut w);
        }
        let off = pts.extend_from(&self.buffer);
        for j in 0..self.buffer.len() {
            w.push(off + j, 1.0);
        }
        (pts, w)
    }

    /// Solves the `(k, (1+ε)t)` problem on the live instance.
    pub fn solve(&self) -> StreamSolution {
        let (pts, w) = self.live_instance();
        solve_instance(&pts, &w, &self.cfg)
    }
}

/// Shared query-time solve over a materialized live instance.
///
/// The live instance is coreset-sized (`O((k+t) log n)` entries), so a
/// handful of local-search restarts is nearly free and guards the final
/// answer against one bad seed — summaries are built once per block, but
/// the query solve is the single point of failure for output quality.
pub(crate) fn solve_instance(
    pts: &PointSet,
    w: &WeightedSet,
    cfg: &StreamConfig,
) -> StreamSolution {
    if w.is_empty() {
        return StreamSolution {
            centers: PointSet::new(pts.dim()),
            cost: 0.0,
            excluded_weight: 0.0,
            live_points: 0,
        };
    }
    // Restart diversity comes from the local-search seed, which only the
    // median/means solver consumes — charikar_center is deterministic.
    let restarts = if cfg.objective == Objective::Center {
        1
    } else {
        QUERY_RESTARTS
    };
    let mut best: Option<dpc_cluster::Solution> = None;
    for restart in 0..restarts {
        let mut params = cfg.solver_params();
        params.ls.seed = params.ls.seed.wrapping_add(restart * 0x9e37_79b9);
        let sol = solve_weighted(pts, w, cfg.k, cfg.t as f64, cfg.objective, params);
        if best.as_ref().is_none_or(|b| sol.cost < b.cost) {
            best = Some(sol);
        }
    }
    let sol = best.expect("at least one restart ran");
    StreamSolution {
        centers: pts.subset(&sol.centers),
        cost: sol.cost,
        excluded_weight: sol.outlier_weight(),
        live_points: pts.len(),
    }
}

/// Local-search restarts in the query-time solve.
const QUERY_RESTARTS: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_clusters(engine: &mut StreamEngine, n: usize) {
        for i in 0..n {
            let c = (i % 3) as f64 * 100.0;
            engine.push(&[c + 0.01 * (i % 5) as f64, 0.0]);
        }
    }

    #[test]
    fn weight_conserved_and_levels_logarithmic() {
        let mut e = StreamEngine::new(2, StreamConfig::new(3, 4).block(32));
        feed_clusters(&mut e, 1000);
        e.flush();
        assert!((e.live_weight() - 1000.0).abs() < 1e-6);
        // 1000 / 32 ≈ 31 blocks -> at most ⌈log2(32)⌉ + 1 = 6 live levels.
        assert!(e.live_summaries() <= 6, "{} summaries", e.live_summaries());
        let cap = e.config().summary_params().max_entries();
        assert!(
            e.live_points() <= cap * 6,
            "{} live points",
            e.live_points()
        );
    }

    #[test]
    fn solve_finds_planted_clusters() {
        let mut e = StreamEngine::new(2, StreamConfig::new(3, 2).block(64));
        feed_clusters(&mut e, 600);
        e.push(&[5e4, 5e4]);
        e.push(&[-7e4, 0.0]);
        e.flush();
        let sol = e.solve();
        assert_eq!(sol.centers.len(), 3);
        // Each planted cluster is within 1 of some center.
        for c in [0.0, 100.0, 200.0] {
            let near = (0..sol.centers.len()).any(|i| (sol.centers.point(i)[0] - c).abs() < 1.0);
            assert!(near, "no center near {c}: {:?}", sol.centers);
        }
        assert!(sol.cost < 50.0, "cost {}", sol.cost);
    }

    #[test]
    fn empty_engine_solves_empty() {
        let e = StreamEngine::new(2, StreamConfig::new(2, 1));
        let sol = e.solve();
        assert!(sol.centers.is_empty());
        assert_eq!(sol.cost, 0.0);
        assert_eq!(sol.live_points, 0);
    }

    #[test]
    fn partial_buffer_counts_toward_live_state() {
        let mut e = StreamEngine::new(1, StreamConfig::new(2, 1).block(100));
        for i in 0..7 {
            e.push(&[i as f64]);
        }
        assert_eq!(e.live_points(), 7);
        assert_eq!(e.live_summaries(), 0);
        let sol = e.solve();
        assert_eq!(sol.centers.len(), 2);
    }

    #[test]
    fn eps_validation_guards_construction() {
        // Builder path.
        let cfg = StreamConfig::new(2, 1).eps(0.0);
        assert_eq!(cfg.eps, 0.0); // legal, CLI-warned
                                  // Direct-field writes are caught at engine construction.
        let mut bad = StreamConfig::new(2, 1);
        bad.eps = f64::NAN;
        let r = std::panic::catch_unwind(|| StreamEngine::new(2, bad));
        assert!(r.is_err(), "NaN eps must fail fast");
        let mut neg = StreamConfig::new(2, 1);
        neg.eps = -0.5;
        let r = std::panic::catch_unwind(|| StreamEngine::new(2, neg));
        assert!(r.is_err(), "negative eps must fail fast");
    }

    #[test]
    #[should_panic(expected = "eps must be finite")]
    fn eps_builder_rejects_infinite() {
        let _ = StreamConfig::new(2, 1).eps(f64::INFINITY);
    }

    #[test]
    fn means_and_center_objectives_run() {
        for cfg in [
            StreamConfig::new(2, 2).block(32).means(),
            StreamConfig::new(2, 2).block(32).center(),
        ] {
            let mut e = StreamEngine::new(2, cfg);
            feed_clusters(&mut e, 200);
            e.flush();
            let sol = e.solve();
            assert!(!sol.centers.is_empty());
            assert!(sol.cost.is_finite());
        }
    }
}
