//! Continuous distributed clustering: every site ingests its own stream
//! and the fleet periodically re-runs the paper's 2-round protocol on the
//! sites' *current summaries*.
//!
//! Each simulated site owns a [`StreamEngine`]; every `sync_every`
//! ingested points (across the fleet) a sync fires. A sync is a faithful
//! weighted re-run of Algorithm 1 over the live summary instances —
//! round 0 ships each site's lower convex hull of
//! `{(q, C_sol(S_i, 2k, q))}` over the geometric grid, the coordinator
//! water-fills the outlier budget ([`dpc_core::allocate_outliers`]) and
//! returns the threshold marginal, and round 1 ships `2k` weighted
//! centers plus the site's `t_i` outlier entries. Every byte crosses the
//! wire and is charged through [`CommStats`], so the communication cost
//! of *keeping the clustering current* is measured per sync, exactly
//! like the one-shot protocols. The sync executes on the same
//! transport-abstracted runtime as the batch protocols
//! ([`dpc_coordinator::run_protocol`]): one [`TransportKind`] /
//! [`LinkModel`] switch moves both paths between in-process channels,
//! loopback TCP, and the multiplexed event-loop backend, with identical
//! byte accounting. Because sites summarize
//! locally, a sync costs `O((s·k + t)·B)` regardless of how many points
//! arrived since the last one.

use crate::engine::{StreamConfig, StreamEngine};
use crate::wire::SummaryMsg;
use bytes::Bytes;
use dpc_cluster::Solution;
use dpc_codec::Encoding;
use dpc_coordinator::{
    run_protocol, CommStats, Coordinator, CoordinatorStep, FaultPlan, LinkModel, RunOptions, Site,
    TransportKind,
};
use dpc_core::wire::ThresholdMsg;
use dpc_core::{allocate_outliers, geometric_grid, site_budget_from_threshold, ConvexProfile};
use dpc_metric::{EuclideanMetric, Objective, PointSet, SquaredMetric, WeightedSet, WireWriter};
use dpc_obs::{Counter, Event, RecorderHandle};
use std::sync::{Arc, Mutex};

use crate::summary::solve_weighted;

/// Configuration of the continuous distributed mode.
#[derive(Clone, Debug)]
pub struct ContinuousConfig {
    /// Per-site streaming engine configuration (k, t, objective, blocks).
    pub stream: StreamConfig,
    /// Grid/allocation ratio ρ of the sync protocol.
    pub rho: f64,
    /// Coordinator-side outlier relaxation ε at sync time.
    pub eps: f64,
    /// Fleet-wide ingested points between automatic syncs.
    pub sync_every: u64,
    /// Run site phases on parallel threads during a sync.
    pub parallel: bool,
    /// Transport backend the sync protocol executes on — the same
    /// runtime and backends as the one-shot batch protocols, so one
    /// switch covers both paths.
    pub transport: TransportKind,
    /// Simulated link model charged per sync round.
    pub link: LinkModel,
    /// Fault plan applied to every sync. Each sync re-derives an
    /// independent per-sync seed ([`FaultPlan::derive`] on the sync
    /// index), so a site that drops out of one sync participates in the
    /// next — crash-stop aliveness is scoped to a single protocol
    /// execution, not the fleet's lifetime.
    pub faults: FaultPlan,
    /// Wire encoding every sync message is framed with. Under
    /// [`Encoding::Rlz`] each site's round-1 summary upload is
    /// reference-coded against its summary from the *previous* sync —
    /// the continuous mode's natural dictionary.
    pub encoding: Encoding,
}

impl ContinuousConfig {
    /// Defaults: ρ = 2, ε = 1, sync every 1024 points, sequential sites
    /// on the in-process channel backend over an ideal link.
    pub fn new(k: usize, t: usize) -> Self {
        Self {
            stream: StreamConfig::new(k, t),
            rho: 2.0,
            eps: 1.0,
            sync_every: 1024,
            parallel: false,
            transport: TransportKind::Channel,
            link: LinkModel::ideal(),
            faults: FaultPlan::none(),
            encoding: Encoding::Raw,
        }
    }

    /// Frames every sync message with the given wire encoding.
    pub fn encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Switches the sync protocol's transport backend.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the simulated link model of the sync protocol.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Sets the fault plan injected into every sync.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the sync cadence.
    pub fn sync_every(mut self, points: u64) -> Self {
        assert!(points > 0, "sync cadence must be positive");
        self.sync_every = points;
        self
    }

    fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_varint(self.stream.k as u64);
        w.put_varint(self.stream.t as u64);
        w.put_f64(self.rho);
        w.put_f64(self.eps);
        w.put_varint(u64::from(self.stream.objective == Objective::Means));
        // Framed like every sync message for uniform driver accounting.
        dpc_codec::frame(self.encoding, w, &[])
    }
}

/// Record of one executed sync.
#[derive(Clone, Debug)]
pub struct SyncRecord {
    /// Fleet-wide ingested point count when the sync fired.
    pub at: u64,
    /// Full per-round communication/compute accounting of the sync.
    pub stats: CommStats,
    /// Centers chosen by the coordinator.
    pub centers: PointSet,
    /// Coordinator objective value over the merged summary instance.
    pub cost: f64,
    /// Outlier weight the coordinator excluded.
    pub excluded_weight: f64,
}

/// A fleet of streaming sites plus the periodic sync machinery.
#[derive(Debug)]
pub struct ContinuousCluster {
    cfg: ContinuousConfig,
    dim: usize,
    sites: Vec<StreamEngine>,
    ingested: u64,
    since_sync: u64,
    recorder: RecorderHandle,
    /// Per-site RLZ dictionary slot: the raw bytes of the summary the
    /// site uploaded in its last *delivered* sync round. A site writes
    /// its slot exactly when the coordinator receives its reply (the
    /// fault plan decides delivery before the site runs), so encoder and
    /// decoder always agree on the reference.
    prev_summaries: Vec<Arc<Mutex<Option<Bytes>>>>,
    /// Every sync executed so far, in order.
    pub history: Vec<SyncRecord>,
}

impl Clone for ContinuousCluster {
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg.clone(),
            dim: self.dim,
            sites: self.sites.clone(),
            ingested: self.ingested,
            since_sync: self.since_sync,
            recorder: self.recorder.clone(),
            // Deep-copy the dictionary slots: a cloned fleet must not
            // mutate the original's RLZ references.
            prev_summaries: self
                .prev_summaries
                .iter()
                .map(|s| Arc::new(Mutex::new(s.lock().unwrap().clone())))
                .collect(),
            history: self.history.clone(),
        }
    }
}

impl ContinuousCluster {
    /// Creates a fleet of `sites` streaming engines over `R^dim`.
    pub fn new(dim: usize, sites: usize, cfg: ContinuousConfig) -> Self {
        assert!(sites > 0, "need at least one site");
        cfg.stream.validate();
        assert!(
            cfg.eps.is_finite() && cfg.eps >= 0.0,
            "sync eps must be finite and non-negative, got {}",
            cfg.eps
        );
        assert!(
            cfg.stream.objective != Objective::Center,
            "continuous sync re-runs Algorithm 1 (median/means only)"
        );
        Self {
            sites: (0..sites)
                .map(|_| StreamEngine::new(dim, cfg.stream))
                .collect(),
            prev_summaries: (0..sites).map(|_| Arc::new(Mutex::new(None))).collect(),
            cfg,
            dim,
            ingested: 0,
            since_sync: 0,
            recorder: RecorderHandle::noop(),
            history: Vec::new(),
        }
    }

    /// Attaches an observability recorder to the fleet: every site's
    /// streaming engine tallies summarize/merge counters through it, and
    /// each sync emits `SyncStart`/`SyncEnd` events plus the full span
    /// tree of its underlying 2-round protocol run.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        for s in &mut self.sites {
            s.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
        self
    }

    /// Number of simulated sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Fleet-wide ingested point count.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Total live summary entries across all sites.
    pub fn live_points(&self) -> usize {
        self.sites.iter().map(StreamEngine::live_points).sum()
    }

    /// Ingests one point at `site`; fires a sync when the cadence is due.
    /// Returns the index into [`Self::history`] of the sync it triggered,
    /// if any.
    pub fn ingest(&mut self, site: usize, coords: &[f64]) -> Option<usize> {
        self.sites[site].push(coords);
        self.ingested += 1;
        self.since_sync += 1;
        if self.since_sync >= self.cfg.sync_every {
            Some(self.sync())
        } else {
            None
        }
    }

    /// The most recent sync result, if any sync has fired.
    pub fn latest(&self) -> Option<&SyncRecord> {
        self.history.last()
    }

    /// Total bytes moved on the simulated wire across all syncs.
    pub fn total_comm_bytes(&self) -> usize {
        self.history.iter().map(|r| r.stats.total_bytes()).sum()
    }

    /// Runs a sync only if points arrived since the last one (or none has
    /// run yet), returning the index of the sync that covers the current
    /// ingest count. The teardown idiom: callers finishing a stream want a
    /// final sync without duplicating one the cadence just fired.
    pub fn sync_if_stale(&mut self) -> usize {
        match self.history.iter().rposition(|r| r.at == self.ingested) {
            Some(i) => i,
            None => self.sync(),
        }
    }

    /// Runs the 2-round sync protocol now, regardless of cadence, and
    /// returns the index of the new [`SyncRecord`].
    pub fn sync(&mut self) -> usize {
        self.since_sync = 0;
        if self.recorder.enabled() {
            self.recorder.record(Event::SyncStart {
                sync: self.history.len(),
                at: self.ingested,
            });
        }
        for s in &mut self.sites {
            s.flush();
        }
        let instances: Vec<(PointSet, WeightedSet)> =
            self.sites.iter().map(StreamEngine::live_instance).collect();
        let mut sites: Vec<Box<dyn Site + '_>> = instances
            .iter()
            .enumerate()
            .map(|(i, (pts, w))| {
                Box::new(SummarySite::new(
                    pts,
                    w,
                    i,
                    self.cfg.clone(),
                    Arc::clone(&self.prev_summaries[i]),
                )) as Box<dyn Site + '_>
            })
            .collect();
        // Snapshot the pre-sync dictionaries now: sites overwrite their
        // slots with this sync's summaries while the protocol runs, and
        // the coordinator must decode against the *previous* ones.
        let dicts: Vec<Bytes> = self
            .prev_summaries
            .iter()
            .map(|s| s.lock().unwrap().clone().unwrap_or_default())
            .collect();
        let coordinator = SyncCoordinator {
            cfg: self.cfg.clone(),
            dim: self.dim,
            dicts,
            result: None,
        };
        // Each sync gets an independently-seeded copy of the fault plan:
        // dropout in one sync must not doom a site for the fleet's
        // remaining lifetime.
        let faults = self.cfg.faults.derive(self.history.len() as u64);
        let out = run_protocol(
            &mut sites,
            coordinator,
            RunOptions {
                parallel: self.cfg.parallel,
                transport: self.cfg.transport,
                link: self.cfg.link,
                faults,
                recorder: self.recorder.clone(),
                ..RunOptions::new().encoding(self.cfg.encoding)
            },
        );
        let (centers, cost, excluded_weight) = out.output;
        if self.recorder.enabled() {
            self.recorder.record(Event::SyncEnd {
                sync: self.history.len(),
                bytes: out.stats.total_bytes() as u64,
            });
            self.recorder.add(Counter::SyncsRun, 1);
        }
        self.history.push(SyncRecord {
            at: self.ingested,
            stats: out.stats,
            centers,
            cost,
            excluded_weight,
        });
        self.history.len() - 1
    }
}

/// Site-side state of the weighted sync protocol (mirrors
/// `dpc_core::algo_median::MedianSite`, but over a weighted summary
/// instance instead of a raw shard).
struct SummarySite<'a> {
    pts: &'a PointSet,
    w: &'a WeightedSet,
    site_id: usize,
    cfg: ContinuousConfig,
    /// This site's RLZ dictionary slot (see
    /// [`ContinuousCluster::prev_summaries`]): read to reference-code
    /// this sync's upload, then overwritten with its raw bytes.
    prev: Arc<Mutex<Option<Bytes>>>,
    grid: Vec<usize>,
    sols: Vec<Solution>,
    profile: Option<ConvexProfile>,
}

impl<'a> SummarySite<'a> {
    fn new(
        pts: &'a PointSet,
        w: &'a WeightedSet,
        site_id: usize,
        cfg: ContinuousConfig,
        prev: Arc<Mutex<Option<Bytes>>>,
    ) -> Self {
        Self {
            pts,
            w,
            site_id,
            cfg,
            prev,
            grid: Vec::new(),
            sols: Vec::new(),
            profile: None,
        }
    }

    /// Frames this sync's summary upload against the previous sync's
    /// summary, then installs the new raw bytes as the next dictionary.
    fn ship_summary(&self, msg: &SummaryMsg) -> Bytes {
        let mut slot = self.prev.lock().unwrap();
        let dict = slot.clone().unwrap_or_default();
        let framed = msg.encode_with(self.cfg.encoding, &dict);
        *slot = Some(msg.encode());
        framed
    }

    fn evaluate(&self, centers: Vec<usize>, budget: f64) -> Solution {
        let obj = self.cfg.stream.objective;
        if obj == Objective::Means {
            let m = SquaredMetric::new(EuclideanMetric::new(self.pts));
            Solution::evaluate(&m, self.w, centers, budget, Objective::Median)
        } else {
            let m = EuclideanMetric::new(self.pts);
            Solution::evaluate(&m, self.w, centers, budget, Objective::Median)
        }
    }

    /// Round 0: cost profile over the geometric grid, hull shipped.
    fn build_profile(&mut self) -> Bytes {
        let t = self.cfg.stream.t;
        self.grid = geometric_grid(t, self.cfg.rho.max(1.0 + 1e-9));
        let mut pts = Vec::with_capacity(self.grid.len());
        let mut ls = self.cfg.stream.ls;
        ls.seed = ls.seed.wrapping_add(self.site_id as u64);
        for &q in &self.grid {
            let sol = if self.w.is_empty() {
                Solution {
                    centers: Vec::new(),
                    cost: 0.0,
                    outliers: Vec::new(),
                    assignment: Vec::new(),
                }
            } else {
                let mut params = self.cfg.stream.solver_params();
                params.eps = 0.0;
                params.ls = ls;
                solve_weighted(
                    self.pts,
                    self.w,
                    2 * self.cfg.stream.k,
                    q as f64,
                    self.cfg.stream.objective,
                    params,
                )
            };
            pts.push((q, sol.cost));
            self.sols.push(sol);
        }
        let profile = ConvexProfile::lower_hull(&pts);
        let mut w = WireWriter::new();
        profile.encode(&mut w);
        self.profile = Some(profile);
        dpc_codec::frame(self.cfg.encoding, w, &[])
    }

    /// Round 1: derive `t_i` (the shared Algorithm 1 line 12–13 rule),
    /// re-evaluate the matching grid solution, ship the weighted summary.
    fn respond_threshold(&mut self, msg: &Bytes) -> Bytes {
        let thr = ThresholdMsg::decode_with(self.cfg.encoding, msg.clone());
        if self.w.is_empty() {
            return self.ship_summary(&SummaryMsg::empty(self.pts.dim()));
        }
        let prof = self.profile.as_ref().expect("profile built in round 0");
        let ti = site_budget_from_threshold(prof, self.site_id, self.cfg.stream.t, &thr);
        let gi = self
            .grid
            .binary_search(&ti)
            .unwrap_or_else(|_| panic!("t_i = {ti} is not a grid point"));
        let centers = self.sols[gi].centers.clone();
        // Same clamp as the batch protocol's `ti.min(n)`: a site whose live
        // weight is below its allotted t_i must not exclude everything (and
        // then ship every live entry as a weighted outlier).
        let budget = (ti as f64).min(self.w.total_weight());
        let sol = self.evaluate(centers, budget);
        self.ship_summary(&SummaryMsg::from_solution(
            self.pts, self.w, &sol, ti as u64,
        ))
    }
}

impl Site for SummarySite<'_> {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        match round {
            0 => self.build_profile(),
            1 => self.respond_threshold(msg),
            r => panic!("sync site has no round {r}"),
        }
    }
}

/// Coordinator side of the sync protocol.
struct SyncCoordinator {
    cfg: ContinuousConfig,
    dim: usize,
    /// Per-site decode dictionaries: each site's previous-sync summary,
    /// snapshotted before this sync's protocol started.
    dicts: Vec<Bytes>,
    result: Option<(PointSet, f64, f64)>,
}

impl Coordinator for SyncCoordinator {
    type Output = (PointSet, f64, f64);

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        match round {
            0 => CoordinatorStep::Broadcast(self.cfg.encode()),
            1 => {
                // Degrade exactly like the batch protocol
                // (`MedianCoordinator::step`): water-fill the outlier
                // budget over the sites that answered, remapping the
                // allocation's responder index back to the original site
                // id before broadcasting.
                let s = replies.len();
                let responders: Vec<usize> = replies
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.as_ref().map(|_| i))
                    .collect();
                let profiles: Vec<ConvexProfile> = replies
                    .iter()
                    .flatten()
                    .map(|b| {
                        let payload = dpc_codec::unframe(self.cfg.encoding, b.clone(), &[]);
                        let mut r = dpc_metric::WireReader::new(payload);
                        ConvexProfile::decode(&mut r)
                    })
                    .collect();
                let t = self.cfg.stream.t;
                let enc = self.cfg.encoding;
                let msg_for = move |threshold: f64, i0: u64, q0: u64| {
                    move |i: usize| {
                        ThresholdMsg {
                            threshold,
                            i0,
                            q0,
                            exceptional: i as u64 == i0,
                        }
                        .encode_with(enc)
                    }
                };
                let msgs = if profiles.is_empty() || t == 0 {
                    (0..s).map(msg_for(f64::INFINITY, u64::MAX, 0)).collect()
                } else {
                    let alloc = allocate_outliers(&profiles, t, self.cfg.rho);
                    let i0 = responders[alloc.i0];
                    (0..s)
                        .map(msg_for(alloc.threshold, i0 as u64, alloc.q0 as u64))
                        .collect()
                };
                CoordinatorStep::Messages(msgs)
            }
            2 => {
                self.result = Some(self.solve_final(replies));
                CoordinatorStep::Finish
            }
            r => panic!("sync coordinator has no round {r}"),
        }
    }

    fn finish(self) -> (PointSet, f64, f64) {
        self.result.expect("protocol finished")
    }
}

impl SyncCoordinator {
    /// Merge whatever summaries arrived; a dropped site's live points are
    /// simply absent from this sync (they return in the next one).
    fn solve_final(&self, replies: Vec<Option<Bytes>>) -> (PointSet, f64, f64) {
        let msgs: Vec<SummaryMsg> = replies
            .into_iter()
            .enumerate()
            .filter_map(|(i, r)| {
                // Decode site i's upload against site i's dictionary: the
                // responder index must survive the drop-out filter.
                r.map(|b| SummaryMsg::decode_with(self.cfg.encoding, b, &self.dicts[i]))
            })
            .collect();
        let dim = msgs
            .iter()
            .find(|m| !m.centers.is_empty() || !m.outliers.is_empty())
            .map(|m| m.centers.dim())
            .unwrap_or(self.dim);
        let mut merged = PointSet::new(dim);
        let mut weighted = WeightedSet::new();
        for m in &msgs {
            m.append_to(&mut merged, &mut weighted);
        }
        if weighted.is_empty() {
            return (PointSet::new(dim), 0.0, 0.0);
        }
        let mut params = self.cfg.stream.solver_params();
        params.eps = self.cfg.eps;
        let sol = solve_weighted(
            &merged,
            &weighted,
            self.cfg.stream.k,
            self.cfg.stream.t as f64,
            self.cfg.stream.objective,
            params,
        );
        let excluded = sol.outlier_weight();
        (merged.subset(&sol.centers), sol.cost, excluded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(cluster: &mut ContinuousCluster, n: usize) {
        let s = cluster.num_sites();
        for i in 0..n {
            let c = (i % 3) as f64 * 200.0;
            cluster.ingest(i % s, &[c + 0.01 * (i % 5) as f64, 0.0]);
        }
    }

    #[test]
    fn syncs_fire_on_cadence_and_charge_bytes() {
        let cfg = ContinuousConfig {
            stream: StreamConfig::new(3, 2).block(64),
            ..ContinuousConfig::new(3, 2)
        }
        .sync_every(500);
        let mut c = ContinuousCluster::new(2, 3, cfg);
        feed(&mut c, 1600);
        assert_eq!(c.history.len(), 3); // at 500, 1000, 1500
        for rec in &c.history {
            assert_eq!(rec.stats.num_rounds(), 2, "the paper's 2 rounds");
            assert!(rec.stats.total_bytes() > 0);
        }
        assert!(c.total_comm_bytes() > 0);
    }

    #[test]
    fn sync_recovers_clusters() {
        let cfg = ContinuousConfig {
            stream: StreamConfig::new(3, 2).block(64),
            ..ContinuousConfig::new(3, 2)
        }
        .sync_every(900);
        let mut c = ContinuousCluster::new(2, 3, cfg);
        feed(&mut c, 900);
        // Two planted outliers after the fact, then a manual sync.
        c.ingest(0, &[9e4, 9e4]);
        c.ingest(1, &[-8e4, 0.0]);
        c.sync();
        let rec = c.latest().unwrap();
        assert_eq!(rec.centers.len(), 3);
        for planted in [0.0, 200.0, 400.0] {
            let near =
                (0..rec.centers.len()).any(|i| (rec.centers.point(i)[0] - planted).abs() < 1.0);
            assert!(near, "no center near {planted}: {:?}", rec.centers);
        }
    }

    #[test]
    fn sync_bytes_independent_of_stream_length() {
        // Summaries keep sync cost flat while the stream grows 8x.
        let mk = |n: usize| {
            let cfg = ContinuousConfig {
                stream: StreamConfig::new(2, 2).block(64),
                ..ContinuousConfig::new(2, 2)
            }
            .sync_every(u64::MAX);
            let mut c = ContinuousCluster::new(2, 2, cfg);
            feed(&mut c, n);
            c.sync();
            c.latest().unwrap().stats.total_bytes()
        };
        let small = mk(512);
        let big = mk(4096);
        assert!(big <= small * 3, "sync bytes grew with n: {small} -> {big}");
    }

    #[test]
    fn socket_syncs_match_channel_sync() {
        // One backend switch covers the streaming path too: the same
        // fleet synced over loopback TCP or the mux event loops must
        // charge the same bytes and pick the same centers as the
        // in-process backends.
        let run = |transport: TransportKind| {
            let cfg = ContinuousConfig {
                stream: StreamConfig::new(2, 1).block(32),
                ..ContinuousConfig::new(2, 1)
            }
            .sync_every(u64::MAX)
            .transport(transport);
            let mut c = ContinuousCluster::new(2, 2, cfg);
            feed(&mut c, 300);
            c.sync();
            let rec = c.latest().unwrap().clone();
            (rec.stats, rec.centers, rec.cost)
        };
        let (a_stats, a_centers, a_cost) = run(TransportKind::Channel);
        for backend in [TransportKind::Tcp, TransportKind::Mux] {
            let (b_stats, b_centers, b_cost) = run(backend);
            assert_eq!(a_stats.num_rounds(), b_stats.num_rounds());
            for (ra, rb) in a_stats.rounds.iter().zip(&b_stats.rounds) {
                assert_eq!(ra.coordinator_to_sites, rb.coordinator_to_sites);
                assert_eq!(ra.sites_to_coordinator, rb.sites_to_coordinator);
            }
            assert_eq!(a_cost, b_cost);
            assert_eq!(a_centers.len(), b_centers.len());
            for i in 0..a_centers.len() {
                assert_eq!(a_centers.point(i), b_centers.point(i));
            }
        }
    }

    #[test]
    fn link_model_charges_sync_network_time() {
        let cfg = ContinuousConfig {
            stream: StreamConfig::new(2, 1).block(32),
            ..ContinuousConfig::new(2, 1)
        }
        .sync_every(u64::MAX)
        .link(LinkModel::new(std::time::Duration::from_millis(5), 1e6));
        let mut c = ContinuousCluster::new(2, 2, cfg);
        feed(&mut c, 200);
        c.sync();
        let stats = &c.latest().unwrap().stats;
        // 2 rounds, each paying at least down+up latency.
        assert!(stats.network_time() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn sync_if_stale_skips_covered_ingests() {
        let cfg = ContinuousConfig {
            stream: StreamConfig::new(2, 1).block(32),
            ..ContinuousConfig::new(2, 1)
        }
        .sync_every(100);
        let mut c = ContinuousCluster::new(2, 2, cfg);
        feed(&mut c, 100); // cadence fires exactly at 100
        assert_eq!(c.history.len(), 1);
        let idx = c.sync_if_stale();
        assert_eq!((idx, c.history.len()), (0, 1), "no duplicate sync");
        c.ingest(0, &[1.0, 1.0]);
        let idx = c.sync_if_stale();
        assert_eq!((idx, c.history.len()), (1, 2), "stale ingest forces a sync");
    }

    #[test]
    fn rlz_sync_references_previous_summary() {
        // A slowly drifting fleet produces near-identical consecutive
        // summaries; once the first sync seeds the per-site dictionaries,
        // RLZ syncs must (a) pick exactly the centers a Raw run picks
        // (lossless) and (b) spend visibly fewer wire bytes than their
        // own raw payloads.
        let run = |encoding: Encoding| {
            let cfg = ContinuousConfig {
                stream: StreamConfig::new(3, 2).block(64),
                ..ContinuousConfig::new(3, 2)
            }
            .sync_every(u64::MAX)
            .encoding(encoding);
            let mut c = ContinuousCluster::new(2, 3, cfg);
            feed(&mut c, 600);
            c.sync(); // seeds the dictionaries
            feed(&mut c, 60); // small drift
            c.sync(); // reference-coded against sync 0
            c
        };
        let raw = run(Encoding::Raw);
        let rlz = run(Encoding::Rlz);
        let (raw_rec, rlz_rec) = (&raw.history[1], &rlz.history[1]);
        assert_eq!(raw_rec.centers.len(), rlz_rec.centers.len());
        for i in 0..raw_rec.centers.len() {
            assert_eq!(raw_rec.centers.point(i), rlz_rec.centers.point(i));
        }
        assert_eq!(raw_rec.cost, rlz_rec.cost, "RLZ is lossless");
        // Pre-codec sizes match the raw run; wire bytes shrink on the
        // dictionary-backed second sync.
        assert_eq!(rlz_rec.stats.raw_bytes(), raw_rec.stats.total_bytes());
        assert!(
            rlz_rec.stats.compression_ratio() > 1.2,
            "second-sync ratio {}",
            rlz_rec.stats.compression_ratio()
        );
    }

    #[test]
    fn empty_fleet_sync_is_graceful() {
        let mut c = ContinuousCluster::new(2, 2, ContinuousConfig::new(2, 1));
        c.sync();
        let rec = c.latest().unwrap();
        assert!(rec.centers.is_empty());
        assert_eq!(rec.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "median/means")]
    fn center_objective_rejected() {
        let cfg = ContinuousConfig {
            stream: StreamConfig::new(2, 1).center(),
            ..ContinuousConfig::new(2, 1)
        };
        let _ = ContinuousCluster::new(2, 2, cfg);
    }
}
