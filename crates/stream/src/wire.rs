//! Wire format for the continuous sync protocol.
//!
//! The sync rounds reuse `dpc_core`'s hull and threshold framing; the
//! final round needs one new message: a [`PreclusterMsg`]-shaped summary
//! whose outlier entries carry *weights* (summary points aggregate many
//! raw points, so excluded entries are weighted, unlike the unit-weight
//! outliers of the one-shot protocols). Every point still costs
//! `B = 8·dim` bytes plus 8 per weight, so [`dpc_coordinator::CommStats`]
//! charges syncs on the same scale as the batch protocols.
//!
//! [`PreclusterMsg`]: dpc_core::wire::PreclusterMsg

use bytes::Bytes;
use dpc_cluster::Solution;
use dpc_codec::Encoding;
use dpc_metric::{PointSet, WeightedSet, WireReader, WireWriter};

/// A site's weighted summary, shipped in the final sync round.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryMsg {
    /// Centers as raw coordinates.
    pub centers: PointSet,
    /// Retained weight per center.
    pub weights: Vec<f64>,
    /// Outlier entries as raw coordinates.
    pub outliers: PointSet,
    /// Excluded weight per outlier entry.
    pub outlier_weights: Vec<f64>,
    /// The site's outlier budget `t_i` for this sync.
    pub t_i: u64,
}

impl SummaryMsg {
    /// An empty summary for a site with no live weight.
    pub fn empty(dim: usize) -> Self {
        Self {
            centers: PointSet::new(dim),
            weights: Vec::new(),
            outliers: PointSet::new(dim),
            outlier_weights: Vec::new(),
            t_i: 0,
        }
    }

    /// Builds the message from a weighted [`Solution`] over `(pts, w)`.
    pub fn from_solution(pts: &PointSet, w: &WeightedSet, sol: &Solution, t_i: u64) -> Self {
        let mut excluded = vec![0.0f64; w.len()];
        for &(pos, xw) in &sol.outliers {
            excluded[pos] += xw;
        }
        let mut weights = vec![0.0f64; sol.centers.len()];
        let mut outliers = PointSet::new(pts.dim());
        let mut outlier_weights = Vec::new();
        for (pos, (id, weight)) in w.iter().enumerate() {
            let retained = weight - excluded[pos];
            if retained > 0.0 {
                weights[sol.assignment[pos]] += retained;
            }
            if excluded[pos] > 0.0 {
                outliers.push(pts.point(id));
                outlier_weights.push(excluded[pos]);
            }
        }
        Self {
            centers: pts.subset(&sol.centers),
            weights,
            outliers,
            outlier_weights,
            t_i,
        }
    }

    /// Appends the message's entries to a weighted instance.
    pub fn append_to(&self, pts: &mut PointSet, w: &mut WeightedSet) {
        crate::summary::append_weighted(
            pts,
            w,
            &self.centers,
            &self.weights,
            &self.outliers,
            &self.outlier_weights,
        );
    }

    fn write(&self) -> WireWriter {
        let mut w = WireWriter::new();
        w.put_varint(self.centers.dim() as u64);
        w.put_varint(self.centers.len() as u64);
        for (i, p) in self.centers.iter() {
            w.put_point(p);
            w.put_f64(self.weights[i]);
        }
        w.put_varint(self.outliers.len() as u64);
        for (i, p) in self.outliers.iter() {
            w.put_point(p);
            w.put_f64(self.outlier_weights[i]);
        }
        w.put_varint(self.t_i);
        w
    }

    /// Serializes the summary uncompressed.
    pub fn encode(&self) -> Bytes {
        self.write().finish()
    }

    /// Serializes the summary inside a codec frame. Under
    /// [`Encoding::Rlz`] the `dict` is the site's *previous* sync
    /// summary (its raw [`Self::encode`] bytes): consecutive summaries
    /// of a slowly drifting stream share most of their bytes, which is
    /// exactly what reference coding exploits. Other encodings ignore
    /// the dictionary; [`Encoding::Raw`] produces [`Self::encode`]'s
    /// bytes unchanged.
    pub fn encode_with(&self, encoding: Encoding, dict: &[u8]) -> Bytes {
        dpc_codec::frame(encoding, self.write(), dict)
    }

    /// Deserializes a summary produced by [`Self::encode_with`] with the
    /// same encoding and dictionary. An RLZ frame whose dictionary does
    /// not match panics rather than silently corrupting coordinates.
    pub fn decode_with(encoding: Encoding, buf: Bytes, dict: &[u8]) -> Self {
        Self::decode(dpc_codec::unframe(encoding, buf, dict))
    }

    /// Deserializes a summary produced by [`Self::encode`].
    pub fn decode(buf: Bytes) -> Self {
        let mut r = WireReader::new(buf);
        let dim = r.get_varint() as usize;
        let nc = r.get_varint() as usize;
        let mut centers = PointSet::with_capacity(dim, nc);
        let mut weights = Vec::with_capacity(nc);
        let mut p = Vec::with_capacity(dim);
        for _ in 0..nc {
            r.read_point_into(dim, &mut p);
            centers.push(&p);
            weights.push(r.get_f64());
        }
        let no = r.get_varint() as usize;
        let mut outliers = PointSet::with_capacity(dim, no);
        let mut outlier_weights = Vec::with_capacity(no);
        for _ in 0..no {
            r.read_point_into(dim, &mut p);
            outliers.push(&p);
            outlier_weights.push(r.get_f64());
        }
        let t_i = r.get_varint();
        SummaryMsg {
            centers,
            weights,
            outliers,
            outlier_weights,
            t_i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let msg = SummaryMsg {
            centers: PointSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            weights: vec![5.5, 7.0],
            outliers: PointSet::from_rows(&[vec![9.0, 9.0]]),
            outlier_weights: vec![2.25],
            t_i: 3,
        };
        assert_eq!(SummaryMsg::decode(msg.encode()), msg);
    }

    #[test]
    fn empty_roundtrip() {
        let msg = SummaryMsg::empty(4);
        let back = SummaryMsg::decode(msg.encode());
        assert_eq!(back.centers.len(), 0);
        assert_eq!(back.outliers.len(), 0);
        assert_eq!(back.t_i, 0);
    }

    #[test]
    fn from_solution_conserves_weight() {
        let pts = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![50.0]]);
        let w = WeightedSet::from_parts(vec![0, 1, 2], vec![3.0, 2.0, 1.5]);
        let m = dpc_metric::EuclideanMetric::new(&pts);
        let sol = Solution::evaluate(&m, &w, vec![0], 1.5, dpc_metric::Objective::Median);
        let msg = SummaryMsg::from_solution(&pts, &w, &sol, 2);
        let total: f64 = msg.weights.iter().sum::<f64>() + msg.outlier_weights.iter().sum::<f64>();
        assert!((total - 6.5).abs() < 1e-12);
        assert!(msg.outlier_weights.iter().sum::<f64>() <= 1.5 + 1e-12);
    }
}
