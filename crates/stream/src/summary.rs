//! Mergeable per-block summaries — the coreset objects of the streaming
//! layer.
//!
//! A [`Summary`] is exactly the shape Algorithm 1/2 sites ship to the
//! coordinator: `2k` weighted centers (each standing in for the points
//! attached to it) plus up to `t` explicitly retained outlier candidates.
//! Two summaries *merge* by clustering the union of their weighted points
//! again with the same `(2k, t)` budget — the reduce step of a classic
//! merge-and-reduce tree. Total weight is conserved exactly by
//! construction, the per-summary size never exceeds `2k + t + 1` entries,
//! and the accumulated representation error composes additively for
//! median/center (by the triangle inequality) and with factor 2 per level
//! for means (relaxed triangle inequality), which [`Summary::cost_bound`]
//! tracks.

use dpc_cluster::{
    charikar_center, median_bicriteria, BicriteriaParams, CenterParams, LocalSearchParams, Solution,
};
use dpc_metric::{EuclideanMetric, Objective, PointSet, SquaredMetric, WeightedSet};

/// Budgets and solver knobs shared by every summarize/reduce step.
#[derive(Clone, Copy, Debug)]
pub struct SummaryParams {
    /// Number of final centers `k`; summaries keep `2k` (the same
    /// preclustering headroom Algorithm 1 uses at sites).
    pub k: usize,
    /// Outlier budget `t` tracked through every level: each summary retains
    /// at most `t` units of outlier weight explicitly.
    pub t: usize,
    /// Which objective the summaries are built for.
    pub objective: Objective,
    /// λ-bisection iterations inside the bicriteria solver.
    pub lambda_iters: usize,
    /// Inner local-search tuning.
    pub ls: LocalSearchParams,
}

impl SummaryParams {
    /// Sensible defaults for `(k, t)`-median summaries.
    pub fn new(k: usize, t: usize) -> Self {
        Self {
            k,
            t,
            objective: Objective::Median,
            lambda_iters: 12,
            ls: LocalSearchParams::default(),
        }
    }

    fn solver_params(&self) -> BicriteriaParams {
        // Summaries are exact-budget objects: relaxation happens only at
        // query time, never inside the tree.
        BicriteriaParams {
            eps: 0.0,
            lambda_iters: self.lambda_iters,
            ls: self.ls,
        }
    }

    /// Hard cap on the entries a single summary may hold: `2k` centers,
    /// `t` units of outlier weight (at most `t` whole entries) plus one
    /// possible fractional remainder from a partial exclusion.
    pub fn max_entries(&self) -> usize {
        2 * self.k + self.t + 1
    }
}

/// Runs the objective-appropriate weighted `(k', (1+ε)t')` solver on an
/// instance whose [`WeightedSet`] ids index `points` directly.
///
/// `params.eps` relaxes the outlier budget for every objective: the
/// median/means solver applies it internally; the center solver takes the
/// relaxed budget directly (it has no ε of its own). `params.ls` tunes
/// only the median/means local search — `charikar_center` is
/// deterministic.
pub fn solve_weighted(
    points: &PointSet,
    weights: &WeightedSet,
    k: usize,
    t: f64,
    objective: Objective,
    params: BicriteriaParams,
) -> Solution {
    match objective {
        Objective::Median => {
            let m = EuclideanMetric::new(points);
            median_bicriteria(&m, weights, k, t, Objective::Median, params)
        }
        Objective::Means => {
            let m = SquaredMetric::new(EuclideanMetric::new(points));
            median_bicriteria(&m, weights, k, t, Objective::Median, params)
        }
        Objective::Center => {
            let m = EuclideanMetric::new(points);
            charikar_center(
                &m,
                weights,
                k,
                t * (1.0 + params.eps),
                CenterParams {
                    threads: params.ls.threads,
                    ..CenterParams::default()
                },
            )
        }
    }
}

/// A weighted coreset for one contiguous chunk of the stream.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Representative centers.
    pub centers: PointSet,
    /// Retained weight attached to each center.
    pub center_weights: Vec<f64>,
    /// Outlier candidates kept verbatim (so later levels and the final
    /// query can still disregard them).
    pub outliers: PointSet,
    /// Excluded weight carried by each outlier entry.
    pub outlier_weights: Vec<f64>,
    /// Merge-and-reduce level: 0 for a freshly summarized block,
    /// `max(a,b) + 1` after a merge.
    pub level: u32,
    /// Upper bound on the accumulated representation error of this summary
    /// against the raw points it stands for (see module docs for how it
    /// composes per objective).
    pub cost_bound: f64,
}

impl Summary {
    /// An empty summary (weight 0).
    pub fn empty(dim: usize) -> Self {
        Self {
            centers: PointSet::new(dim),
            center_weights: Vec::new(),
            outliers: PointSet::new(dim),
            outlier_weights: Vec::new(),
            level: 0,
            cost_bound: 0.0,
        }
    }

    /// Builds a summary from reduce-step output (a [`SummaryMsg`] carries
    /// exactly the entry layout a summary stores).
    ///
    /// [`SummaryMsg`]: crate::wire::SummaryMsg
    fn from_msg(msg: crate::wire::SummaryMsg, level: u32, cost_bound: f64) -> Self {
        Self {
            centers: msg.centers,
            center_weights: msg.weights,
            outliers: msg.outliers,
            outlier_weights: msg.outlier_weights,
            level,
            cost_bound,
        }
    }

    /// Summarizes one block of raw (unit-weight) points.
    ///
    /// Blocks no larger than the summary budget are kept verbatim (an
    /// exact, zero-error summary); larger blocks are clustered with the
    /// `(2k, t)` bicriteria solver and represented by weighted centers
    /// plus their excluded points.
    pub fn from_block(block: &PointSet, params: &SummaryParams) -> Self {
        let n = block.len();
        if n <= params.max_entries() {
            return Self {
                centers: block.clone(),
                center_weights: vec![1.0; n],
                outliers: PointSet::new(block.dim()),
                outlier_weights: Vec::new(),
                level: 0,
                cost_bound: 0.0,
            };
        }
        let w = WeightedSet::unit(n);
        let (msg, cost) = reduce(block, &w, params);
        Self::from_msg(msg, 0, cost)
    }

    /// Merges two summaries into one at the next level, re-reducing the
    /// union of their weighted points when it exceeds the size cap.
    pub fn merge(a: &Summary, b: &Summary, params: &SummaryParams) -> Summary {
        assert_eq!(a.dim(), b.dim(), "summary dimension mismatch");
        let level = a.level.max(b.level) + 1;
        let mut pts = PointSet::new(a.dim());
        let mut w = WeightedSet::new();
        a.append_to(&mut pts, &mut w);
        b.append_to(&mut pts, &mut w);
        if pts.len() <= params.max_entries() {
            // Union still fits: concatenate without a lossy reduce. The
            // outlier sets concatenate too (their combined weight may
            // transiently exceed t; the next reduce re-selects the worst t).
            let mut centers = a.centers.clone();
            centers.extend_from(&b.centers);
            let mut center_weights = a.center_weights.clone();
            center_weights.extend_from_slice(&b.center_weights);
            let mut outliers = a.outliers.clone();
            outliers.extend_from(&b.outliers);
            let mut outlier_weights = a.outlier_weights.clone();
            outlier_weights.extend_from_slice(&b.outlier_weights);
            return Summary {
                centers,
                center_weights,
                outliers,
                outlier_weights,
                level,
                cost_bound: a.cost_bound + b.cost_bound,
            };
        }
        let (msg, cost) = reduce(&pts, &w, params);
        let cost_bound = match params.objective {
            // d(x,D) <= d(x,c) + d(c,D): errors add up the tree.
            Objective::Median | Objective::Center => a.cost_bound + b.cost_bound + cost,
            // d(x,D)^2 <= 2 d(x,c)^2 + 2 d(c,D)^2: factor 2 per level.
            Objective::Means => 2.0 * (a.cost_bound + b.cost_bound) + 2.0 * cost,
        };
        Summary::from_msg(msg, level, cost_bound)
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.centers.dim()
    }

    /// Number of stored entries (centers + outlier candidates).
    pub fn len(&self) -> usize {
        self.centers.len() + self.outliers.len()
    }

    /// True when the summary represents no weight.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty() && self.outliers.is_empty()
    }

    /// Total represented weight (= number of raw points summarized).
    pub fn total_weight(&self) -> f64 {
        self.center_weights.iter().sum::<f64>() + self.outlier_weights.iter().sum::<f64>()
    }

    /// Total weight currently marked as outlier.
    pub fn outlier_weight(&self) -> f64 {
        self.outlier_weights.iter().sum()
    }

    /// Appends this summary's entries to a weighted instance (ids aligned
    /// with positions in `pts`).
    pub fn append_to(&self, pts: &mut PointSet, w: &mut WeightedSet) {
        append_weighted(
            pts,
            w,
            &self.centers,
            &self.center_weights,
            &self.outliers,
            &self.outlier_weights,
        );
    }
}

/// Appends weighted centers followed by weighted outlier entries to an
/// instance whose [`WeightedSet`] ids align with positions in `pts` — the
/// one entry layout shared by [`Summary`] and [`crate::wire::SummaryMsg`].
pub(crate) fn append_weighted(
    pts: &mut PointSet,
    w: &mut WeightedSet,
    centers: &PointSet,
    center_weights: &[f64],
    outliers: &PointSet,
    outlier_weights: &[f64],
) {
    let off = pts.extend_from(centers);
    for (j, &cw) in center_weights.iter().enumerate() {
        w.push(off + j, cw);
    }
    let off = pts.extend_from(outliers);
    for (j, &ow) in outlier_weights.iter().enumerate() {
        w.push(off + j, ow);
    }
}

/// The reduce step: clusters a weighted instance with budget `(2k, t)` and
/// splits the result into weighted centers, explicit outlier entries
/// (weight conserved exactly), and the representation cost of the step.
fn reduce(
    pts: &PointSet,
    w: &WeightedSet,
    params: &SummaryParams,
) -> (crate::wire::SummaryMsg, f64) {
    let sol = solve_weighted(
        pts,
        w,
        2 * params.k,
        params.t as f64,
        params.objective,
        params.solver_params(),
    );
    let cost = sol.cost;
    let msg = crate::wire::SummaryMsg::from_solution(pts, w, &sol, params.t as u64);
    (msg, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(offset: f64, n: usize) -> PointSet {
        let mut rows = Vec::new();
        for i in 0..n {
            rows.push(vec![offset + 0.01 * (i % 7) as f64, 0.0]);
        }
        PointSet::from_rows(&rows)
    }

    #[test]
    fn small_block_is_exact() {
        let b = block(0.0, 5);
        let s = Summary::from_block(&b, &SummaryParams::new(2, 3));
        assert_eq!(s.len(), 5);
        assert_eq!(s.total_weight(), 5.0);
        assert_eq!(s.cost_bound, 0.0);
        assert_eq!(s.level, 0);
    }

    #[test]
    fn large_block_respects_size_cap_and_weight() {
        let mut b = block(0.0, 30);
        b.extend_from(&block(50.0, 30));
        b.push(&[1e5, 1e5]); // outlier
        let p = SummaryParams::new(2, 1);
        let s = Summary::from_block(&b, &p);
        assert!(s.len() <= p.max_entries(), "{} entries", s.len());
        assert!((s.total_weight() - 61.0).abs() < 1e-9);
        assert!(s.outlier_weight() <= 1.0 + 1e-9);
    }

    #[test]
    fn merge_conserves_weight_and_caps_size() {
        let p = SummaryParams::new(2, 2);
        let a = Summary::from_block(&block(0.0, 40), &p);
        let b = Summary::from_block(&block(80.0, 40), &p);
        let m = Summary::merge(&a, &b, &p);
        assert!((m.total_weight() - 80.0).abs() < 1e-9);
        assert!(m.len() <= p.max_entries());
        assert_eq!(m.level, 1);
        assert!(m.cost_bound >= a.cost_bound + b.cost_bound);
    }

    #[test]
    fn merge_of_tiny_summaries_is_lossless() {
        let p = SummaryParams::new(3, 2);
        let a = Summary::from_block(&block(0.0, 3), &p);
        let b = Summary::from_block(&block(9.0, 3), &p);
        let m = Summary::merge(&a, &b, &p);
        assert_eq!(m.len(), 6);
        assert_eq!(m.cost_bound, 0.0);
    }

    #[test]
    fn append_to_builds_aligned_instance() {
        let p = SummaryParams::new(2, 1);
        let s = Summary::from_block(&block(0.0, 4), &p);
        let mut pts = PointSet::new(2);
        let mut w = WeightedSet::new();
        s.append_to(&mut pts, &mut w);
        assert_eq!(pts.len(), w.len());
        assert!((w.total_weight() - 4.0).abs() < 1e-12);
    }
}
