//! Sliding-window streaming via bucketed expiry of whole blocks.
//!
//! An exponential histogram over block summaries: each bucket covers a
//! contiguous run of `2^i` blocks and carries their merged [`Summary`]
//! plus its exact stream-position range. At most two buckets of each
//! capacity are kept — when a third appears, the two *oldest* of that
//! capacity merge into one of double capacity — so `O(log(W / block))`
//! buckets are live. Expiry is exact at block granularity: a bucket whose
//! entire range has left the window is dropped whole. The oldest retained
//! bucket may straddle the window boundary (the standard exponential-
//! histogram approximation), so the live instance covers at least the
//! window and at most roughly twice it.

use crate::engine::{solve_instance, StreamConfig, StreamSolution};
use crate::summary::Summary;
use dpc_metric::{PointSet, WeightedSet};
use std::collections::VecDeque;

/// One bucket: a merged summary of `blocks` consecutive blocks spanning
/// stream positions `[start, end)`.
#[derive(Clone, Debug)]
struct Bucket {
    summary: Summary,
    start: u64,
    end: u64,
    blocks: u64,
}

/// Sliding-window engine: answers `(k, (1+ε)t)` queries over (roughly)
/// the last `window` points.
#[derive(Clone, Debug)]
pub struct SlidingWindowEngine {
    cfg: StreamConfig,
    dim: usize,
    window: u64,
    buffer: PointSet,
    /// Time-ordered buckets, oldest at the front.
    buckets: VecDeque<Bucket>,
    ingested: u64,
}

impl SlidingWindowEngine {
    /// Creates a window engine over the last `window` points.
    ///
    /// # Panics
    /// Panics unless `window >= block_size` (a window smaller than one
    /// block can never be covered at block granularity).
    pub fn new(dim: usize, window: u64, cfg: StreamConfig) -> Self {
        cfg.validate();
        assert!(
            window >= cfg.block_size as u64,
            "window ({window}) must be at least one block ({})",
            cfg.block_size
        );
        Self {
            cfg,
            dim,
            window,
            buffer: PointSet::with_capacity(dim, cfg.block_size),
            buckets: VecDeque::new(),
            ingested: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The window length in points.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Inserts one point, expiring and compacting buckets as needed.
    pub fn push(&mut self, coords: &[f64]) {
        self.buffer.push(coords);
        self.ingested += 1;
        if self.buffer.len() >= self.cfg.block_size {
            let block = std::mem::replace(
                &mut self.buffer,
                PointSet::with_capacity(self.dim, self.cfg.block_size),
            );
            let end = self.ingested;
            let start = end - block.len() as u64;
            let summary = Summary::from_block(&block, &self.cfg.summary_params());
            self.buckets.push_back(Bucket {
                summary,
                start,
                end,
                blocks: 1,
            });
            self.compact();
        }
        self.expire();
    }

    /// Enforces "at most two buckets per capacity" by merging the two
    /// oldest buckets of the smallest over-represented capacity.
    fn compact(&mut self) {
        let params = self.cfg.summary_params();
        loop {
            // Find the smallest capacity with three or more buckets. Equal
            // capacities are adjacent (sizes are non-increasing from the
            // oldest end), so the two oldest of a capacity sit side by side.
            let mut victim: Option<usize> = None;
            let mut i = 0;
            while i < self.buckets.len() {
                let cap = self.buckets[i].blocks;
                let mut j = i;
                while j < self.buckets.len() && self.buckets[j].blocks == cap {
                    j += 1;
                }
                if j - i >= 3 {
                    victim = match victim {
                        Some(v) if self.buckets[v].blocks <= cap => Some(v),
                        _ => Some(i),
                    };
                }
                i = j;
            }
            let Some(i) = victim else { return };
            let a = self.buckets.remove(i).expect("victim index in range");
            let b = &mut self.buckets[i];
            debug_assert_eq!(a.end, b.start, "buckets must be contiguous");
            b.summary = Summary::merge(&a.summary, &b.summary, &params);
            b.start = a.start;
            b.blocks += a.blocks;
        }
    }

    /// Drops buckets that have entirely left the window.
    fn expire(&mut self) {
        let cutoff = self.ingested.saturating_sub(self.window);
        while self.buckets.front().is_some_and(|b| b.end <= cutoff) {
            self.buckets.pop_front();
        }
    }

    /// Total points inserted so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Number of live buckets.
    pub fn live_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total live entries (bucket summaries plus the buffer).
    pub fn live_points(&self) -> usize {
        self.buckets.iter().map(|b| b.summary.len()).sum::<usize>() + self.buffer.len()
    }

    /// Total weight currently represented. At least the covered window
    /// portion, at most the window plus the oldest bucket's overhang.
    pub fn live_weight(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.summary.total_weight())
            .sum::<f64>()
            + self.buffer.len() as f64
    }

    /// The stream-position range `[start, end)` the live state covers
    /// (`start` may precede the window boundary by up to one bucket).
    pub fn covered_range(&self) -> (u64, u64) {
        let start = self
            .buckets
            .front()
            .map(|b| b.start)
            .unwrap_or(self.ingested - self.buffer.len() as u64);
        (start, self.ingested)
    }

    /// Materializes the live weighted instance.
    pub fn live_instance(&self) -> (PointSet, WeightedSet) {
        let mut pts = PointSet::new(self.dim);
        let mut w = WeightedSet::new();
        for b in &self.buckets {
            b.summary.append_to(&mut pts, &mut w);
        }
        let off = pts.extend_from(&self.buffer);
        for j in 0..self.buffer.len() {
            w.push(off + j, 1.0);
        }
        (pts, w)
    }

    /// Solves the `(k, (1+ε)t)` problem over the live window instance.
    pub fn solve(&self) -> StreamSolution {
        let (pts, w) = self.live_instance();
        solve_instance(&pts, &w, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_keeps_roughly_one_window() {
        let cfg = StreamConfig::new(2, 2).block(32);
        let mut e = SlidingWindowEngine::new(2, 256, cfg);
        for i in 0..5000usize {
            e.push(&[(i % 4) as f64 * 50.0, 0.0]);
        }
        let lw = e.live_weight();
        assert!(lw >= 256.0, "covers less than the window: {lw}");
        assert!(lw <= 2.0 * 256.0 + 32.0, "covers too much: {lw}");
        let (start, end) = e.covered_range();
        assert_eq!(end, 5000);
        assert!(end - start >= 256);
    }

    #[test]
    fn bucket_count_logarithmic() {
        let cfg = StreamConfig::new(2, 2).block(16);
        let mut e = SlidingWindowEngine::new(2, 1024, cfg);
        for i in 0..20_000usize {
            e.push(&[(i % 3) as f64, 0.0]);
        }
        // 1024/16 = 64 block slots -> ≤ 2·(log2(64)+1) = 14 buckets, plus
        // the straddling oldest.
        assert!(e.live_buckets() <= 15, "{} buckets", e.live_buckets());
        let cap = e.config().summary_params().max_entries();
        assert!(e.live_points() <= 15 * cap + 16);
    }

    #[test]
    fn window_tracks_drift() {
        // First half at x=0, second half at x=1000; a window covering only
        // the second half must place all centers near 1000.
        let cfg = StreamConfig::new(2, 0).block(25);
        let mut e = SlidingWindowEngine::new(1, 400, cfg);
        for _ in 0..1000 {
            e.push(&[0.0]);
        }
        for _ in 0..1000 {
            e.push(&[1000.0]);
        }
        let sol = e.solve();
        for i in 0..sol.centers.len() {
            assert!(
                sol.centers.point(i)[0] > 900.0,
                "stale center at {:?}",
                sol.centers.point(i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_window_smaller_than_block() {
        let _ = SlidingWindowEngine::new(2, 10, StreamConfig::new(2, 1).block(32));
    }
}
