//! Property tests of the merge-and-reduce invariants: weight conservation,
//! the per-summary level-size bound, and the analytic composition bound on
//! merged representation cost.

use dpc_metric::{EuclideanMetric, Objective, PointSet, SquaredMetric, WeightedSet};
use dpc_stream::{StreamConfig, StreamEngine, Summary, SummaryParams};
use proptest::prelude::*;

/// Random raw block: a few clumps with occasional far-flung points.
fn arb_block(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec((0usize..4, 0.0f64..1.0, -1.0f64..1.0), 4..=max_n).prop_map(|raw| {
        raw.into_iter()
            .map(|(clump, u, jitter)| {
                if u > 0.93 {
                    // Far outlier, sign from the jitter draw.
                    vec![jitter.signum() * (5e3 + 1e4 * u), 4e3]
                } else {
                    vec![clump as f64 * 50.0 + jitter, clump as f64 * 10.0]
                }
            })
            .collect()
    })
}

fn params(k: usize, t: usize, objective: Objective) -> SummaryParams {
    let mut p = SummaryParams::new(k, t);
    p.objective = objective;
    p
}

/// Evaluates how well `summary` represents `raw`: nearest-center cost over
/// the raw points after excluding the summary's recorded outlier weight.
fn representation_cost(raw: &PointSet, summary: &Summary, objective: Objective) -> f64 {
    if summary.centers.is_empty() {
        return 0.0;
    }
    let mut all = raw.clone();
    let off = all.extend_from(&summary.centers);
    let centers: Vec<usize> = (0..summary.centers.len()).map(|i| off + i).collect();
    let mut w = WeightedSet::new();
    for i in 0..raw.len() {
        w.push(i, 1.0);
    }
    let budget = summary.outlier_weight();
    match objective {
        Objective::Means => {
            let m = SquaredMetric::new(EuclideanMetric::new(&all));
            dpc_metric::cost_excluding_outliers(&m, &w, &centers, budget, Objective::Median).cost
        }
        _ => {
            let m = EuclideanMetric::new(&all);
            dpc_metric::cost_excluding_outliers(&m, &w, &centers, budget, Objective::Median).cost
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Merging conserves total weight exactly and never exceeds the
    /// level-size bound `2k + t + 1`.
    #[test]
    fn merge_conserves_weight_and_size(
        rows_a in arb_block(40),
        rows_b in arb_block(40),
        k in 1usize..4,
        t in 0usize..6,
    ) {
        let p = params(k, t, Objective::Median);
        let a = Summary::from_block(&PointSet::from_rows(&rows_a), &p);
        let b = Summary::from_block(&PointSet::from_rows(&rows_b), &p);
        let n = (rows_a.len() + rows_b.len()) as f64;
        let m = Summary::merge(&a, &b, &p);
        prop_assert!((m.total_weight() - n).abs() < 1e-9,
            "weight {} != {n}", m.total_weight());
        // Lossless concatenation only happens when the union already fits
        // the cap, and a lossy reduce re-imposes it — so every merge
        // respects the hard per-summary cap.
        let cap = p.max_entries();
        prop_assert!(m.len() <= cap, "{} entries > cap {cap}", m.len());
        prop_assert!(m.outlier_weight() <= t as f64 + 1e-9 || a.len() + b.len() <= p.max_entries(),
            "outlier weight {} > t = {t}", m.outlier_weight());
    }

    /// Lemma-style composition bound: the merged summary's true
    /// representation cost against the raw union is at most its tracked
    /// `cost_bound` (triangle inequality for median, relaxed with factor 2
    /// for means — `Summary::merge` already folds the factor in).
    #[test]
    fn merged_cost_within_analytic_factor(
        rows_a in arb_block(36),
        rows_b in arb_block(36),
        k in 1usize..4,
        t in 0usize..5,
        means in any::<bool>(),
    ) {
        let objective = if means { Objective::Means } else { Objective::Median };
        let p = params(k, t, objective);
        let block_a = PointSet::from_rows(&rows_a);
        let block_b = PointSet::from_rows(&rows_b);
        let a = Summary::from_block(&block_a, &p);
        let b = Summary::from_block(&block_b, &p);

        // Each part individually honors its bound...
        let ca = representation_cost(&block_a, &a, objective);
        prop_assert!(ca <= a.cost_bound * (1.0 + 1e-9) + 1e-6,
            "part A: actual {ca} > bound {}", a.cost_bound);

        // ...and so does the merge of the two parts against the raw union.
        let m = Summary::merge(&a, &b, &p);
        let mut raw = block_a.clone();
        raw.extend_from(&block_b);
        let cm = representation_cost(&raw, &m, objective);
        prop_assert!(cm <= m.cost_bound * (1.0 + 1e-9) + 1e-6,
            "merged: actual {cm} > bound {} (parts {} + {})",
            m.cost_bound, a.cost_bound, b.cost_bound);
    }

    /// The engine invariants hold for arbitrary streams and block sizes:
    /// exact weight conservation and the logarithmic live-size bound.
    #[test]
    fn engine_invariants(
        rows in arb_block(120),
        block in 4usize..40,
        k in 1usize..3,
        t in 0usize..4,
    ) {
        let mut engine = StreamEngine::new(2, StreamConfig::new(k, t).block(block));
        for r in &rows {
            engine.push(r);
        }
        engine.flush();
        let n = rows.len();
        prop_assert!((engine.live_weight() - n as f64).abs() < 1e-9);
        let blocks = n.div_ceil(block);
        let levels = (blocks as f64).log2().ceil() as usize + 1;
        let cap = (2 * k + t + 1) * levels;
        prop_assert!(engine.live_points() <= cap.max(n.min(2 * k + t + 1)),
            "{} live > cap {cap} (n={n}, block={block})", engine.live_points());
        // A solve on the live instance excludes at most (1+eps)t weight.
        let sol = engine.solve();
        prop_assert!(sol.excluded_weight <= 2.0 * t as f64 + 1e-9);
    }
}
