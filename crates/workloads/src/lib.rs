//! Seeded synthetic workload generators.
//!
//! The paper reports no datasets (it is a theory paper), so the experiments
//! run on generators that exercise exactly the regimes its introduction
//! motivates: `n ≫ t ≫ k`, `t ≫ s`, and costs dominated by noise unless
//! the objective is allowed to disregard outliers. Everything is seeded
//! and deterministic.
//!
//! * [`gaussian_mixture`] — `k` well-separated Gaussian clusters (optionally
//!   power-law sized) plus uniform far-flung outliers;
//! * [`partition`] — splitting a dataset across `s` sites: random,
//!   round-robin, by-cluster (adversarial for preclustering), or
//!   outlier-skewed (all noise lands on one site — adversarial for the
//!   `t_i` allocation);
//! * [`uncertain_mixture`] — uncertain nodes whose supports jitter around
//!   cluster locations, plus noise nodes with scattered support;
//! * [`drifting_stream`] — points in *arrival order* from clusters whose
//!   centers move over time (concept drift), with outliers arriving in
//!   bursts — the streaming layer's workload.

use dpc_metric::PointSet;
use dpc_uncertain::{NodeSet, UncertainNode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of a Gaussian mixture with planted outliers.
#[derive(Clone, Copy, Debug)]
pub struct MixtureSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Total inlier points.
    pub inliers: usize,
    /// Planted outliers, uniform in a huge box far from every cluster.
    pub outliers: usize,
    /// Dimension.
    pub dim: usize,
    /// Cluster standard deviation.
    pub sigma: f64,
    /// Distance scale between cluster centers.
    pub separation: f64,
    /// If true, cluster sizes follow a power law (`size ∝ 1/rank`);
    /// otherwise clusters are balanced.
    pub power_law: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MixtureSpec {
    fn default() -> Self {
        Self {
            clusters: 5,
            inliers: 1000,
            outliers: 20,
            dim: 2,
            sigma: 1.0,
            separation: 100.0,
            power_law: false,
            seed: 0xda7a,
        }
    }
}

/// Output of [`gaussian_mixture`]: the points plus ground-truth labels.
#[derive(Clone, Debug)]
pub struct Mixture {
    /// All points; inliers first, then outliers.
    pub points: PointSet,
    /// Cluster id per inlier point.
    pub labels: Vec<usize>,
    /// Ids (into `points`) of the planted outliers.
    pub outlier_ids: Vec<usize>,
    /// The true cluster centers.
    pub centers: PointSet,
}

/// Approximate standard normal from 12 uniforms (Irwin–Hall); plenty for
/// workload generation and avoids a Box–Muller edge case at 0.
fn gauss(rng: &mut SmallRng) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    s - 6.0
}

/// Generates the mixture.
pub fn gaussian_mixture(spec: MixtureSpec) -> Mixture {
    assert!(spec.clusters > 0 && spec.dim > 0);
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // Cluster centers on a random lattice-ish layout, separated by
    // `separation`.
    let mut centers = PointSet::new(spec.dim);
    for c in 0..spec.clusters {
        let mut coords = vec![0.0; spec.dim];
        for (d, x) in coords.iter_mut().enumerate() {
            // deterministic well-separated anchors, jittered
            let anchor = ((c * (d + 3) + c * c) % (2 * spec.clusters)) as f64;
            *x = anchor * spec.separation + rng.gen_range(-0.1..0.1) * spec.separation;
        }
        centers.push(&coords);
    }

    // Cluster sizes.
    let sizes: Vec<usize> = if spec.power_law {
        let weights: Vec<f64> = (1..=spec.clusters).map(|r| 1.0 / r as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * spec.inliers as f64).floor() as usize)
            .collect();
        let assigned: usize = sizes.iter().sum();
        sizes[0] += spec.inliers - assigned;
        sizes
    } else {
        let base = spec.inliers / spec.clusters;
        let mut sizes = vec![base; spec.clusters];
        sizes[0] += spec.inliers - base * spec.clusters;
        sizes
    };

    let mut points = PointSet::with_capacity(spec.dim, spec.inliers + spec.outliers);
    let mut labels = Vec::with_capacity(spec.inliers);
    for (c, &sz) in sizes.iter().enumerate() {
        for _ in 0..sz {
            let mut coords = centers.point(c).to_vec();
            for x in coords.iter_mut() {
                *x += spec.sigma * gauss(&mut rng);
            }
            points.push(&coords);
            labels.push(c);
        }
    }
    // Outliers: uniform in a box 100× the separation, offset away.
    let big = 100.0 * spec.separation * (spec.clusters as f64);
    let mut outlier_ids = Vec::with_capacity(spec.outliers);
    for _ in 0..spec.outliers {
        let mut coords = Vec::with_capacity(spec.dim);
        for _ in 0..spec.dim {
            let v = big + rng.gen_range(0.0..big);
            coords.push(if rng.gen::<bool>() { v } else { -v });
        }
        outlier_ids.push(points.push(&coords));
    }
    Mixture {
        points,
        labels,
        outlier_ids,
        centers,
    }
}

/// Specification of a high-dimensional Gaussian blob workload — the
/// kernel-stress generator.
///
/// [`gaussian_mixture`] tops out as a low-dimensional protocol workload;
/// this generator exists to exercise the bulk distance kernels: `dim`
/// ranges into the hundreds, and `imbalance` skews cluster sizes
/// (`size ∝ (rank+1)^{-imbalance}`) so assignment passes see both huge
/// and tiny clusters.
#[derive(Clone, Copy, Debug)]
pub struct BlobsSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Total inlier points.
    pub points: usize,
    /// Planted outliers, uniform in a far box.
    pub outliers: usize,
    /// Dimension (2–256 is the intended range; any positive value works).
    pub dim: usize,
    /// Cluster standard deviation per coordinate.
    pub sigma: f64,
    /// Scale of the cluster-center spread.
    pub separation: f64,
    /// Cluster-size skew exponent: `0` is balanced, larger values are
    /// heavier-tailed (`size ∝ (rank+1)^{-imbalance}`).
    pub imbalance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlobsSpec {
    fn default() -> Self {
        Self {
            clusters: 8,
            points: 10_000,
            outliers: 0,
            dim: 32,
            sigma: 1.0,
            separation: 100.0,
            imbalance: 0.0,
            seed: 0xb10b,
        }
    }
}

/// Generates the blob workload (same output shape as [`gaussian_mixture`]).
///
/// Cluster centers are drawn from `N(0, separation²)` per coordinate, so
/// center–center distances concentrate around `separation·√(2·dim)` —
/// well separated from the `σ·√(2·dim)` within-cluster scale whenever
/// `separation ≫ σ`, at every dimension.
///
/// # Panics
/// Panics if `clusters`, `points`, or `dim` is zero, or `imbalance` is
/// negative or non-finite.
pub fn gaussian_blobs(spec: BlobsSpec) -> Mixture {
    assert!(spec.clusters > 0 && spec.dim > 0 && spec.points > 0);
    assert!(
        spec.imbalance.is_finite() && spec.imbalance >= 0.0,
        "imbalance must be finite and non-negative"
    );
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    let mut centers = PointSet::with_capacity(spec.dim, spec.clusters);
    for _ in 0..spec.clusters {
        let coords: Vec<f64> = (0..spec.dim)
            .map(|_| spec.separation * gauss(&mut rng))
            .collect();
        centers.push(&coords);
    }

    // Sizes ∝ (rank+1)^{-imbalance}, largest first, exact total.
    let weights: Vec<f64> = (0..spec.clusters)
        .map(|r| ((r + 1) as f64).powf(-spec.imbalance))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * spec.points as f64).floor() as usize)
        .collect();
    let assigned: usize = sizes.iter().sum();
    sizes[0] += spec.points - assigned;

    let mut points = PointSet::with_capacity(spec.dim, spec.points + spec.outliers);
    let mut labels = Vec::with_capacity(spec.points);
    let mut coords = vec![0.0; spec.dim];
    for (c, &sz) in sizes.iter().enumerate() {
        for _ in 0..sz {
            for (x, &cc) in coords.iter_mut().zip(centers.point(c)) {
                *x = cc + spec.sigma * gauss(&mut rng);
            }
            points.push(&coords);
            labels.push(c);
        }
    }
    let big = 100.0 * spec.separation * (spec.clusters as f64);
    let mut outlier_ids = Vec::with_capacity(spec.outliers);
    for _ in 0..spec.outliers {
        for x in coords.iter_mut() {
            let v = big + rng.gen_range(0.0..big);
            *x = if rng.gen::<bool>() { v } else { -v };
        }
        outlier_ids.push(points.push(&coords));
    }
    Mixture {
        points,
        labels,
        outlier_ids,
        centers,
    }
}

/// How to split a dataset across sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Uniformly random assignment.
    Random,
    /// Round-robin by index.
    RoundRobin,
    /// Contiguous index blocks — with mixtures generated cluster-by-cluster
    /// this sends whole clusters to single sites (adversarial for
    /// preclustering diversity).
    ByBlock,
    /// Like `Random`, but every planted outlier is forced onto site 0
    /// (adversarial for the `t_i` allocation: one site needs the whole
    /// outlier budget).
    OutlierSkew,
}

/// Splits `points` across `s` sites.
///
/// `outlier_ids` is only consulted by [`PartitionStrategy::OutlierSkew`].
pub fn partition(
    points: &PointSet,
    s: usize,
    strategy: PartitionStrategy,
    outlier_ids: &[usize],
    seed: u64,
) -> Vec<PointSet> {
    assert!(s > 0, "need at least one site");
    let n = points.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut assignment = vec![0usize; n];
    match strategy {
        PartitionStrategy::Random => {
            for a in assignment.iter_mut() {
                *a = rng.gen_range(0..s);
            }
        }
        PartitionStrategy::RoundRobin => {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = i % s;
            }
        }
        PartitionStrategy::ByBlock => {
            let per = n.div_ceil(s);
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = (i / per).min(s - 1);
            }
        }
        PartitionStrategy::OutlierSkew => {
            for a in assignment.iter_mut() {
                *a = rng.gen_range(0..s);
            }
            for &o in outlier_ids {
                assignment[o] = 0;
            }
        }
    }
    let mut shards = vec![PointSet::new(points.dim()); s];
    for (i, a) in assignment.into_iter().enumerate() {
        shards[a].push(points.point(i));
    }
    shards
}

/// Specification for an uncertain-node workload.
#[derive(Clone, Copy, Debug)]
pub struct UncertainSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Honest nodes per site.
    pub nodes_per_site: usize,
    /// Sites.
    pub sites: usize,
    /// Noise nodes (scattered support) in total, all on the last site.
    pub noise_nodes: usize,
    /// Support size per node.
    pub support: usize,
    /// Jitter of support points around the node's true location.
    pub jitter: f64,
    /// Cluster separation.
    pub separation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UncertainSpec {
    fn default() -> Self {
        Self {
            clusters: 3,
            nodes_per_site: 20,
            sites: 3,
            noise_nodes: 4,
            support: 3,
            jitter: 1.0,
            separation: 80.0,
            seed: 0xfade,
        }
    }
}

/// Generates per-site [`NodeSet`] shards: honest nodes jitter around their
/// cluster's center; noise nodes have support scattered across a huge box.
pub fn uncertain_mixture(spec: UncertainSpec) -> Vec<NodeSet> {
    assert!(spec.support > 0 && spec.sites > 0);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut shards = Vec::with_capacity(spec.sites);
    for site in 0..spec.sites {
        let mut ground = PointSet::new(2);
        let mut nodes = Vec::new();
        for j in 0..spec.nodes_per_site {
            let c = (site + j) % spec.clusters;
            let cx = (c as f64) * spec.separation;
            let cy = ((c * c + 1) as f64) * 0.5 * spec.separation;
            let mut support = Vec::with_capacity(spec.support);
            for _ in 0..spec.support {
                let p = ground.push(&[
                    cx + spec.jitter * gauss(&mut rng),
                    cy + spec.jitter * gauss(&mut rng),
                ]);
                support.push(p);
            }
            let probs = uniform_probs(spec.support);
            nodes.push(UncertainNode::new(support, probs));
        }
        if site == spec.sites - 1 {
            let big = 200.0 * spec.separation;
            for _ in 0..spec.noise_nodes {
                let mut support = Vec::with_capacity(spec.support);
                for _ in 0..spec.support {
                    let p = ground.push(&[
                        rng.gen_range(big..2.0 * big) * if rng.gen::<bool>() { 1.0 } else { -1.0 },
                        rng.gen_range(big..2.0 * big),
                    ]);
                    support.push(p);
                }
                nodes.push(UncertainNode::new(support, uniform_probs(spec.support)));
            }
        }
        shards.push(NodeSet { ground, nodes });
    }
    shards
}

/// Specification of a drifting stream with bursty outliers.
#[derive(Clone, Copy, Debug)]
pub struct DriftSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Total points emitted (inliers + outliers), in arrival order.
    pub points: usize,
    /// Dimension.
    pub dim: usize,
    /// Cluster standard deviation.
    pub sigma: f64,
    /// Distance scale between cluster centers at time 0.
    pub separation: f64,
    /// Total distance each cluster center travels over the whole stream,
    /// as a multiple of `separation` (0 disables drift).
    pub drift: f64,
    /// Outliers arrive in bursts of this many consecutive points.
    pub burst_len: usize,
    /// A burst starts every `burst_every` points (0 disables outliers).
    pub burst_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriftSpec {
    fn default() -> Self {
        Self {
            clusters: 4,
            points: 4000,
            dim: 2,
            sigma: 1.0,
            separation: 100.0,
            drift: 0.5,
            burst_len: 4,
            burst_every: 250,
            seed: 0xd81f,
        }
    }
}

/// Output of [`drifting_stream`]: arrival-ordered points with ground truth.
#[derive(Clone, Debug)]
pub struct DriftStream {
    /// All points in arrival order.
    pub points: PointSet,
    /// Cluster id per point (`None` for burst outliers).
    pub labels: Vec<Option<usize>>,
    /// Ids (into `points`) of the burst outliers.
    pub outlier_ids: Vec<usize>,
}

/// Generates a drifting stream: each point is drawn around its cluster's
/// *current* center, which moves linearly along a per-cluster direction as
/// the stream progresses (concept drift). Every `burst_every` points a
/// burst of `burst_len` consecutive far-away outliers is injected —
/// adversarial for any streaming outlier budget, because the budget is
/// demanded all at once rather than uniformly.
pub fn drifting_stream(spec: DriftSpec) -> DriftStream {
    assert!(spec.clusters > 0 && spec.dim > 0 && spec.points > 0);
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // Anchors at time 0 (same well-separated layout as `gaussian_mixture`)
    // plus a unit drift direction per cluster.
    let mut anchors = Vec::with_capacity(spec.clusters);
    let mut directions = Vec::with_capacity(spec.clusters);
    for c in 0..spec.clusters {
        let mut coords = vec![0.0; spec.dim];
        for (d, x) in coords.iter_mut().enumerate() {
            let anchor = ((c * (d + 3) + c * c) % (2 * spec.clusters)) as f64;
            *x = anchor * spec.separation + rng.gen_range(-0.1..0.1) * spec.separation;
        }
        anchors.push(coords);
        let mut dir: Vec<f64> = (0..spec.dim).map(|_| gauss(&mut rng)).collect();
        let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        for x in dir.iter_mut() {
            *x /= norm;
        }
        directions.push(dir);
    }

    let mut points = PointSet::with_capacity(spec.dim, spec.points);
    let mut labels = Vec::with_capacity(spec.points);
    let mut outlier_ids = Vec::new();
    let big = 100.0 * spec.separation * (spec.clusters as f64);
    for i in 0..spec.points {
        let in_burst = spec.burst_every > 0
            && spec.burst_len > 0
            && i % spec.burst_every < spec.burst_len
            && i >= spec.burst_every; // no burst before the stream warms up
        if in_burst {
            let mut coords = Vec::with_capacity(spec.dim);
            for _ in 0..spec.dim {
                let v = big + rng.gen_range(0.0..big);
                coords.push(if rng.gen::<bool>() { v } else { -v });
            }
            outlier_ids.push(points.push(&coords));
            labels.push(None);
            continue;
        }
        let c = rng.gen_range(0..spec.clusters);
        // Progress in [0, 1): how far along its drift path the cluster is.
        let progress = i as f64 / spec.points as f64;
        let travel = spec.drift * spec.separation * progress;
        let mut coords = Vec::with_capacity(spec.dim);
        for d in 0..spec.dim {
            coords.push(anchors[c][d] + travel * directions[c][d] + spec.sigma * gauss(&mut rng));
        }
        labels.push(Some(c));
        points.push(&coords);
    }
    DriftStream {
        points,
        labels,
        outlier_ids,
    }
}

fn uniform_probs(m: usize) -> Vec<f64> {
    // Exact normalization (avoid 1/m rounding drift tripping validation).
    let mut probs = vec![1.0 / m as f64; m];
    let sum: f64 = probs.iter().sum();
    probs[0] += 1.0 - sum;
    probs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_counts_and_labels() {
        let m = gaussian_mixture(MixtureSpec {
            inliers: 100,
            outliers: 7,
            ..Default::default()
        });
        assert_eq!(m.points.len(), 107);
        assert_eq!(m.labels.len(), 100);
        assert_eq!(m.outlier_ids.len(), 7);
        assert_eq!(m.centers.len(), 5);
    }

    #[test]
    fn outliers_are_far() {
        let m = gaussian_mixture(MixtureSpec::default());
        // Every outlier is far from every cluster center.
        for &o in &m.outlier_ids {
            let p = m.points.point(o);
            for c in 0..m.centers.len() {
                let d = dpc_metric::points::sq_dist(p, m.centers.point(c)).sqrt();
                assert!(d > 50.0 * 100.0, "outlier {o} too close: {d}");
            }
        }
    }

    #[test]
    fn inliers_near_their_center() {
        let m = gaussian_mixture(MixtureSpec::default());
        for (i, &lab) in m.labels.iter().enumerate() {
            let d = dpc_metric::points::sq_dist(m.points.point(i), m.centers.point(lab)).sqrt();
            assert!(d < 10.0, "inlier {i} at distance {d} (sigma 1, dim 2)");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = gaussian_mixture(MixtureSpec::default());
        let b = gaussian_mixture(MixtureSpec::default());
        assert_eq!(a.points, b.points);
        let c = gaussian_mixture(MixtureSpec {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn power_law_sizes_decrease() {
        let m = gaussian_mixture(MixtureSpec {
            power_law: true,
            inliers: 1000,
            ..Default::default()
        });
        let mut counts = vec![0usize; 5];
        for &l in &m.labels {
            counts[l] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "sizes {counts:?}");
        }
    }

    #[test]
    fn partition_preserves_points() {
        let m = gaussian_mixture(MixtureSpec {
            inliers: 50,
            outliers: 5,
            ..Default::default()
        });
        for strat in [
            PartitionStrategy::Random,
            PartitionStrategy::RoundRobin,
            PartitionStrategy::ByBlock,
            PartitionStrategy::OutlierSkew,
        ] {
            let shards = partition(&m.points, 4, strat, &m.outlier_ids, 1);
            let total: usize = shards.iter().map(PointSet::len).sum();
            assert_eq!(total, 55, "{strat:?}");
        }
    }

    #[test]
    fn outlier_skew_pins_outliers_to_site_zero() {
        let m = gaussian_mixture(MixtureSpec {
            inliers: 50,
            outliers: 8,
            ..Default::default()
        });
        let shards = partition(
            &m.points,
            4,
            PartitionStrategy::OutlierSkew,
            &m.outlier_ids,
            1,
        );
        // Count far points per shard: all 8 must be on shard 0.
        let far = |p: &[f64]| p.iter().any(|&x| x.abs() > 1e4);
        let far0 = (0..shards[0].len())
            .filter(|&i| far(shards[0].point(i)))
            .count();
        assert_eq!(far0, 8);
        for s in &shards[1..] {
            let f = (0..s.len()).filter(|&i| far(s.point(i))).count();
            assert_eq!(f, 0);
        }
    }

    #[test]
    fn uncertain_mixture_shapes() {
        let shards = uncertain_mixture(UncertainSpec::default());
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].len(), 20);
        assert_eq!(shards[2].len(), 24); // + noise nodes
        for shard in &shards {
            for node in &shard.nodes {
                assert_eq!(node.support_size(), 3);
            }
        }
    }

    #[test]
    fn drift_stream_counts_and_determinism() {
        let spec = DriftSpec {
            points: 1000,
            burst_every: 100,
            burst_len: 3,
            ..Default::default()
        };
        let a = drifting_stream(spec);
        assert_eq!(a.points.len(), 1000);
        assert_eq!(a.labels.len(), 1000);
        // Bursts at 100, 200, ..., 900 (none in the warm-up prefix).
        assert_eq!(a.outlier_ids.len(), 9 * 3);
        for (i, lab) in a.labels.iter().enumerate() {
            assert_eq!(lab.is_none(), a.outlier_ids.contains(&i));
        }
        let b = drifting_stream(spec);
        assert_eq!(a.points, b.points);
        let c = drifting_stream(DriftSpec { seed: 9, ..spec });
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn drift_moves_late_points() {
        // With strong drift, the late points of a cluster are far from its
        // early points; with drift 0 they are not.
        let measure = |drift: f64| {
            let s = drifting_stream(DriftSpec {
                clusters: 1,
                points: 2000,
                drift,
                burst_every: 0,
                sigma: 0.1,
                ..Default::default()
            });
            let early = s.points.point(0).to_vec();
            let late = s.points.point(1999).to_vec();
            dpc_metric::points::sq_dist(&early, &late).sqrt()
        };
        assert!(measure(0.0) < 5.0);
        assert!(measure(2.0) > 100.0, "drift 2 moved {}", measure(2.0));
    }

    #[test]
    fn burst_outliers_are_far() {
        let s = drifting_stream(DriftSpec::default());
        for &o in &s.outlier_ids {
            let p = s.points.point(o);
            assert!(
                p.iter().any(|&x| x.abs() > 1e4),
                "burst outlier {o} too close: {p:?}"
            );
        }
    }

    #[test]
    fn bursts_are_consecutive() {
        let s = drifting_stream(DriftSpec {
            points: 600,
            burst_every: 200,
            burst_len: 5,
            ..Default::default()
        });
        assert_eq!(
            s.outlier_ids,
            vec![200, 201, 202, 203, 204, 400, 401, 402, 403, 404]
        );
    }

    #[test]
    fn blobs_counts_imbalance_and_determinism() {
        let spec = BlobsSpec {
            clusters: 4,
            points: 400,
            outliers: 6,
            dim: 64,
            imbalance: 1.0,
            ..Default::default()
        };
        let m = gaussian_blobs(spec);
        assert_eq!(m.points.len(), 406);
        assert_eq!(m.points.dim(), 64);
        assert_eq!(m.labels.len(), 400);
        assert_eq!(m.outlier_ids.len(), 6);
        // Imbalance: sizes strictly non-increasing and skewed.
        let mut counts = vec![0usize; 4];
        for &l in &m.labels {
            counts[l] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "sizes {counts:?}");
        }
        assert!(counts[0] > 2 * counts[3], "not skewed: {counts:?}");
        // Deterministic by seed.
        let again = gaussian_blobs(spec);
        assert_eq!(m.points, again.points);
        let other = gaussian_blobs(BlobsSpec { seed: 1, ..spec });
        assert_ne!(m.points, other.points);
    }

    #[test]
    fn blobs_inliers_near_centers_outliers_far() {
        let m = gaussian_blobs(BlobsSpec {
            clusters: 3,
            points: 300,
            outliers: 4,
            dim: 16,
            sigma: 0.5,
            ..Default::default()
        });
        for (i, &lab) in m.labels.iter().enumerate() {
            let d = dpc_metric::points::sq_dist(m.points.point(i), m.centers.point(lab)).sqrt();
            // sigma·sqrt(dim) ≈ 2; allow a generous tail.
            assert!(d < 20.0, "inlier {i} at {d}");
        }
        for &o in &m.outlier_ids {
            assert!(m.points.point(o).iter().any(|&x| x.abs() > 1e4));
        }
    }

    #[test]
    fn blobs_balanced_when_imbalance_zero() {
        let m = gaussian_blobs(BlobsSpec {
            clusters: 5,
            points: 500,
            imbalance: 0.0,
            ..Default::default()
        });
        let mut counts = vec![0usize; 5];
        for &l in &m.labels {
            counts[l] += 1;
        }
        assert_eq!(counts, vec![100; 5]);
    }

    #[test]
    fn round_robin_balanced() {
        let m = gaussian_mixture(MixtureSpec {
            inliers: 40,
            outliers: 0,
            ..Default::default()
        });
        let shards = partition(&m.points, 4, PartitionStrategy::RoundRobin, &[], 0);
        for s in &shards {
            assert_eq!(s.len(), 10);
        }
    }
}
