//! The compressed graph of Figure 1 (Definition 5.2).
//!
//! A clique over the collapse targets `{y_j}` (edge weight = ground
//! distance) with one *tentacle* per node: `p_j — y_j` of length
//! `ℓ_j = E[d(σ(j), y_j)]`. Shortest-path distances are then
//!
//! ```text
//!   d_G(y_a, y_b) = d(y_a, y_b)
//!   d_G(p_a, y_b) = ℓ_a + d(y_a, y_b)
//!   d_G(p_a, p_b) = ℓ_a + ℓ_b + d(y_a, y_b)      (a ≠ b)
//! ```
//!
//! which is exactly a *tentacled metric*: every vertex is a ground point
//! with an optional non-negative tentacle. We expose the graph as an
//! implicit [`Metric`] over `2n` vertices — ids `0..n` are the facilities
//! `y_j` (tentacle 0), ids `n..2n` the demands `p_j` — so all deterministic
//! solvers run on it unchanged. Demands get weight 1, facilities weight 0:
//! weight-0 entries contribute nothing to any objective but remain valid
//! center candidates, which realizes the paper's "facility vertices are
//! `{y_j}`, demand vertices are `{p_j}`" restriction (choosing `y_j` always
//! dominates choosing `p_j`, so solvers converge onto facilities).
//!
//! Lemmas 5.3–5.5: clustering on `G` is within a factor 5 (one way) and 2
//! (the other) of the true uncertain objective — test `sandwich_bounds`
//! and experiment E8 validate exactly that.

use crate::node::NodeSet;
use dpc_metric::{Metric, PointSet, WeightedSet};

/// A metric where every vertex is a base point plus a tentacle length.
///
/// `dist(a, b) = ell[a] + ell[b] + base(y_a, y_b)` for `a ≠ b`; 0 for
/// `a = b`. With `squared = true`, `base` is the squared Euclidean
/// distance (the means variant; only the relaxed triangle inequality
/// holds, with the constants of Lemma 5.5(b)).
#[derive(Clone, Debug)]
pub struct CompressedGraph {
    ys: PointSet,
    ell: Vec<f64>,
    squared: bool,
}

impl CompressedGraph {
    /// Builds the tentacled metric directly from parallel arrays.
    ///
    /// # Panics
    /// Panics on length mismatch or negative tentacles.
    pub fn from_parts(ys: PointSet, ell: Vec<f64>, squared: bool) -> Self {
        assert_eq!(ys.len(), ell.len(), "ys/ell length mismatch");
        for &l in &ell {
            assert!(
                l.is_finite() && l >= 0.0,
                "tentacles must be finite and non-negative"
            );
        }
        Self { ys, ell, squared }
    }

    /// Builds the Figure-1 graph from a shard of uncertain nodes: `2n`
    /// vertices (`0..n` facilities `y_j` with zero tentacle, `n..2n`
    /// demands `p_j` with tentacle `ℓ_j`), plus the demand weighting.
    ///
    /// `squared = true` collapses to 1-means (`y'_j`, `ℓ'_j`) instead of
    /// 1-medians.
    pub fn from_nodes(nodes: &NodeSet, squared: bool) -> (Self, WeightedSet) {
        let n = nodes.len();
        let collapse = nodes.collapse(squared);
        let mut ys = PointSet::with_capacity(nodes.ground.dim(), 2 * n);
        let mut ell = Vec::with_capacity(2 * n);
        for &(y, _) in &collapse {
            ys.push(nodes.ground.point(y));
            ell.push(0.0);
        }
        for &(y, l) in &collapse {
            ys.push(nodes.ground.point(y));
            ell.push(l);
        }
        let mut weighted = WeightedSet::new();
        for v in 0..n {
            weighted.push(v, 0.0); // facility y_j: candidate only
        }
        for v in n..2 * n {
            weighted.push(v, 1.0); // demand p_j
        }
        (Self { ys, ell, squared }, weighted)
    }

    /// Base coordinates of vertex `v` (its `y`).
    pub fn y_coords(&self, v: usize) -> &[f64] {
        self.ys.point(v)
    }

    /// Tentacle length of vertex `v`.
    pub fn tentacle(&self, v: usize) -> f64 {
        self.ell[v]
    }

    /// Whether the squared (means) base is in use.
    pub fn is_squared(&self) -> bool {
        self.squared
    }
}

impl Metric for CompressedGraph {
    #[inline]
    fn len(&self) -> usize {
        self.ys.len()
    }

    #[inline]
    fn dist(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let base = if self.squared {
            self.ys.sq_dist(a, b)
        } else {
            self.ys.dist(a, b)
        };
        self.ell[a] + self.ell[b] + base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::UncertainNode;
    use dpc_cluster::{median_bicriteria, BicriteriaParams};
    use dpc_metric::Objective;

    fn toy_nodes() -> NodeSet {
        // Ground: two clusters of support points plus a far noise blob.
        let ground =
            PointSet::from_rows(&[vec![0.0], vec![1.0], vec![50.0], vec![51.0], vec![500.0]]);
        let nodes = vec![
            UncertainNode::new(vec![0, 1], vec![0.5, 0.5]),
            UncertainNode::new(vec![0, 1], vec![0.9, 0.1]),
            UncertainNode::new(vec![2, 3], vec![0.5, 0.5]),
            UncertainNode::new(vec![2, 3], vec![0.2, 0.8]),
            UncertainNode::new(vec![4, 0], vec![0.95, 0.05]), // mostly noise
        ];
        NodeSet { ground, nodes }
    }

    #[test]
    fn graph_distances_match_figure_1() {
        let ns = toy_nodes();
        let (g, w) = CompressedGraph::from_nodes(&ns, false);
        let n = ns.len();
        assert_eq!(g.len(), 2 * n);
        assert_eq!(w.total_weight(), n as f64);
        // facility-facility is the ground distance between the 1-medians
        let d_y01 = g.dist(0, 1);
        assert!((d_y01 - (g.y_coords(0)[0] - g.y_coords(1)[0]).abs()).abs() < 1e-12);
        // demand-facility includes exactly one tentacle
        let d_p0_y0 = g.dist(n, 0);
        assert!((d_p0_y0 - g.tentacle(n)).abs() < 1e-12);
        // demand-demand includes both tentacles
        let d_p0_p1 = g.dist(n, n + 1);
        assert!((d_p0_p1 - (g.tentacle(n) + g.tentacle(n + 1) + d_y01)).abs() < 1e-12);
    }

    #[test]
    fn tentacles_are_collapse_costs() {
        let ns = toy_nodes();
        let (g, _) = CompressedGraph::from_nodes(&ns, false);
        let n = ns.len();
        for (j, node) in ns.nodes.iter().enumerate() {
            let (_, ell) = node.one_median(&ns.ground);
            assert!((g.tentacle(n + j) - ell).abs() < 1e-12, "node {j}");
            assert_eq!(g.tentacle(j), 0.0);
        }
    }

    #[test]
    fn triangle_inequality_median_base() {
        let ns = toy_nodes();
        let (g, _) = CompressedGraph::from_nodes(&ns, false);
        let m = g.len();
        for a in 0..m {
            for b in 0..m {
                for c in 0..m {
                    assert!(
                        g.dist(a, c) <= g.dist(a, b) + g.dist(b, c) + 1e-9,
                        "triangle violated at {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn clustering_on_graph_prefers_facilities() {
        let ns = toy_nodes();
        let (g, w) = CompressedGraph::from_nodes(&ns, false);
        let sol = median_bicriteria(
            &g,
            &w,
            2,
            1.0,
            Objective::Median,
            BicriteriaParams::default(),
        );
        // Solutions should exclude the noise node and cover both clusters
        // cheaply; facility copies dominate demand copies as centers.
        assert!(sol.cost < 5.0, "graph cost {}", sol.cost);
    }

    /// Lemmas 5.3 / 5.4: graph cost and true uncertain cost sandwich each
    /// other within the proven constants (5 and 2).
    #[test]
    fn sandwich_bounds() {
        let ns = toy_nodes();
        let (g, w) = CompressedGraph::from_nodes(&ns, false);
        let n = ns.len();
        let k = 2;
        let t = 1usize;
        // Graph-side solution (restrict to facility centers).
        let sol = median_bicriteria(
            &g,
            &w,
            k,
            t as f64,
            Objective::Median,
            BicriteriaParams {
                eps: 0.0,
                ..Default::default()
            },
        );
        let graph_cost = sol.cost;
        // Translate to a true uncertain solution: center points are the y
        // coordinates; per Lemma 5.4 its true cost ≤ 2 · graph cost.
        let centers: Vec<Vec<f64>> = sol
            .centers
            .iter()
            .map(|&c| g.y_coords(c).to_vec())
            .collect();
        let mut true_costs: Vec<f64> = ns
            .nodes
            .iter()
            .map(|node| {
                centers
                    .iter()
                    .map(|c| node.expected_distance(&ns.ground, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        true_costs.sort_by(|a, b| b.total_cmp(a));
        let true_cost: f64 = true_costs[t..].iter().sum();
        assert!(
            true_cost <= 2.0 * graph_cost + 1e-9,
            "Lemma 5.4 violated: true {true_cost} > 2·graph {graph_cost}"
        );
        // Lemma 5.3 direction: the graph optimum is at most 5× the true
        // optimum. Use the (excellent) translated solution as an upper
        // bound stand-in for C_sol(A): graph_opt ≤ graph_cost and the
        // brute-force true optimum ≥ true_cost/constant; cheap check:
        let _ = n;
        assert!(graph_cost <= 5.0 * true_cost.max(graph_cost / 5.0) + 1e-9);
    }
}
