//! Clustering uncertain data (§5).
//!
//! Input nodes are *distributions* over a finite ground set `P` of points
//! (the "assigned clustering" model of Cormode–McGregor \[8\]): node `j`
//! realizes at `σ(j) ∼ D_j` but is always assigned to the same center
//! `π(j)`. This crate implements the paper's full uncertain-data machinery:
//!
//! * [`node`] — discrete-distribution nodes, expected distances
//!   `d̂(j,p) = E[d(σ(j),p)]`, and the 1-median / 1-mean "collapse" targets
//!   (Definition 5.1), including the paper's `T`-time accounting;
//! * [`compressed`] — the compressed graph `G(A)` of Figure 1 /
//!   Definition 5.2: a clique over the 1-medians with a tentacle `p_j — y_j`
//!   of length `ℓ_j = E[d(σ(j), y_j)]` per node, exposed as an implicit
//!   [`dpc_metric::Metric`]; Lemmas 5.3–5.5 make clustering on `G`
//!   equivalent (up to constants 5 and 2) to the true uncertain objective;
//! * [`algo_uncertain`] — **Algorithm 3**: the distributed compression
//!   scheme — every site builds its local compressed graph and runs the
//!   deterministic machinery of [`dpc_core`] on it, shipping `(y_j, ℓ_j)`
//!   alongside every outlier node (Theorem 5.6);
//! * [`truncated`] — truncated expected distances
//!   `ρ_τ(j,u) = E[max(d(σ(j),u) − τ, 0)]` (Definition 5.7) and the
//!   parametric grid `T = {2^i · d_min/18}`;
//! * [`algo_center_g`] — **Algorithm 4**: the `(k,t)`-center-g algorithm —
//!   parametric search on `τ`, per-τ preclustering under `ρ_{6τ}`, the
//!   coordinator's `Σ C_sol ≤ 12τ̂` selection rule, and the final weighted
//!   center-g solve (Theorem 5.14);
//! * [`monte_carlo`] — realization sampling to estimate the
//!   `E[max]` objective (Equation 3) for experimental validation.

pub mod algo_center_g;
pub mod algo_uncertain;
pub mod compressed;
pub mod monte_carlo;
pub mod node;
pub mod truncated;

pub use algo_center_g::{run_center_g, run_center_g_one_round, CenterGConfig};
pub use algo_uncertain::{run_uncertain_median, UncertainConfig, UncertainSolution};
pub use compressed::CompressedGraph;
pub use monte_carlo::{
    estimate_center_g_cost, estimate_expected_cost, estimate_expected_cost_recorded,
    estimate_expected_cost_with,
};
pub use node::{NodeSet, UncertainNode};
pub use truncated::{tau_grid, truncated_expected_distance};
