//! Uncertain nodes: discrete distributions over a ground point set.
//!
//! Node `j` follows an independent distribution `D_j` over the metric space
//! `P` (here: a finite support inside a [`PointSet`]). The key derived
//! quantities (Definition 5.1):
//!
//! * `d̂(j, u) = E_σ[d(σ(j), u)]` — expected distance to a point;
//! * the 1-median `y_j = argmin_{y∈P} E[d(σ(j), y)]` and its cost
//!   `ℓ_j = E[d(σ(j), y_j)]` (the "collapse cost", the tentacle length of
//!   Figure 1);
//! * the 1-mean `y'_j` with `ℓ'_j = E[d²(σ(j), y'_j)]` for the means
//!   objective.
//!
//! Computing a 1-median over the support is `T = O(m²)` distance
//! evaluations (the paper's footnote 2 lists `T = O(m)` for 1-means in
//! Euclidean space via the centroid; we keep `y ∈ P` per Definition 1.2, so
//! 1-mean over the support is also `O(m²)`, with the `O(m)` centroid
//! available separately for Euclidean experiments).

use dpc_metric::{PointSet, WireReader, WireWriter};
use rand::Rng;

/// A discrete distribution over points of a ground [`PointSet`].
#[derive(Clone, Debug, PartialEq)]
pub struct UncertainNode {
    /// Support: ids into the owning [`NodeSet`]'s ground points.
    pub support: Vec<usize>,
    /// Probabilities, parallel to `support` (positive, summing to 1).
    pub probs: Vec<f64>,
}

impl UncertainNode {
    /// Builds a node, validating the distribution.
    ///
    /// # Panics
    /// Panics on empty support, mismatched lengths, non-positive
    /// probabilities, or probabilities not summing to 1 (±1e-6).
    pub fn new(support: Vec<usize>, probs: Vec<f64>) -> Self {
        assert!(!support.is_empty(), "support must be non-empty");
        assert_eq!(support.len(), probs.len(), "support/probs mismatch");
        let sum: f64 = probs.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "probabilities sum to {sum}, not 1"
        );
        for &p in &probs {
            assert!(p > 0.0, "probabilities must be positive");
        }
        Self { support, probs }
    }

    /// A deterministic node (point mass).
    pub fn deterministic(point: usize) -> Self {
        Self {
            support: vec![point],
            probs: vec![1.0],
        }
    }

    /// Support size `m` (drives `T` and the encoding size `I`).
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// `E[d(σ, u)]` for coordinates `u`.
    pub fn expected_distance(&self, ground: &PointSet, u: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.probs)
            .map(|(&s, &p)| p * ground.sq_dist_to(s, u).sqrt())
            .sum()
    }

    /// `E[d²(σ, u)]` for coordinates `u`.
    pub fn expected_sq_distance(&self, ground: &PointSet, u: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.probs)
            .map(|(&s, &p)| p * ground.sq_dist_to(s, u))
            .sum()
    }

    /// 1-median over the support: `(y_j, ℓ_j)`. `O(m²)` time.
    pub fn one_median(&self, ground: &PointSet) -> (usize, f64) {
        self.argmin_over(ground, &self.support, false)
    }

    /// 1-mean over the support: `(y'_j, ℓ'_j)` with squared distances.
    pub fn one_mean(&self, ground: &PointSet) -> (usize, f64) {
        self.argmin_over(ground, &self.support, true)
    }

    /// 1-median/mean restricted to an explicit candidate set (the paper's
    /// `y ∈ P`; pass all of `P` for the exact definition).
    ///
    /// The `O(m·|candidates|)` expected distances are evaluated with the
    /// blocked bulk kernel — one distance row per support point,
    /// accumulated in support order, so the winner and its cost match the
    /// scalar per-candidate loop exactly.
    pub fn argmin_over(
        &self,
        ground: &PointSet,
        candidates: &[usize],
        squared: bool,
    ) -> (usize, f64) {
        assert!(!candidates.is_empty(), "need candidates");
        let block = dpc_metric::CenterBlock::from_points(ground, candidates);
        let mut row = Vec::with_capacity(candidates.len());
        let mut acc = vec![0.0f64; candidates.len()];
        for (&s, &p) in self.support.iter().zip(&self.probs) {
            block.sq_dists_to_all(ground.point(s), &mut row);
            if squared {
                for (a, &sq) in acc.iter_mut().zip(&row) {
                    *a += p * sq;
                }
            } else {
                for (a, &sq) in acc.iter_mut().zip(&row) {
                    *a += p * sq.sqrt();
                }
            }
        }
        let mut best = (candidates[0], f64::INFINITY);
        for (&c, &v) in candidates.iter().zip(&acc) {
            if v < best.1 {
                best = (c, v);
            }
        }
        best
    }

    /// Euclidean 1-mean centroid (`T = O(m)`, footnote 2) — the
    /// unconstrained minimizer of `E[d²]`, not necessarily in `P`.
    pub fn centroid(&self, ground: &PointSet) -> Vec<f64> {
        let mut acc = vec![0.0; ground.dim()];
        for (&s, &p) in self.support.iter().zip(&self.probs) {
            for (a, &c) in acc.iter_mut().zip(ground.point(s)) {
                *a += p * c;
            }
        }
        acc
    }

    /// Samples a realization (an id into the ground set).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let mut target: f64 = rng.gen();
        for (&s, &p) in self.support.iter().zip(&self.probs) {
            if target < p {
                return s;
            }
            target -= p;
        }
        *self.support.last().expect("non-empty support")
    }

    /// Serializes the full distribution (the paper's `I` bytes): support
    /// coordinates and probabilities.
    pub fn encode(&self, ground: &PointSet, w: &mut WireWriter) {
        w.put_varint(self.support.len() as u64);
        for (&s, &p) in self.support.iter().zip(&self.probs) {
            w.put_point(ground.point(s));
            w.put_f64(p);
        }
    }

    /// Decodes a node encoded by [`Self::encode`], appending its support
    /// points to `ground` and referencing them.
    pub fn decode(ground: &mut PointSet, r: &mut WireReader) -> Self {
        let m = r.get_varint() as usize;
        let mut support = Vec::with_capacity(m);
        let mut probs = Vec::with_capacity(m);
        let dim = ground.dim();
        let mut pt = Vec::with_capacity(dim);
        for _ in 0..m {
            r.read_point_into(dim, &mut pt);
            support.push(ground.push(&pt));
            probs.push(r.get_f64());
        }
        Self { support, probs }
    }

    /// Wire size in bytes (the `I` of Tables 1–2).
    pub fn wire_bytes(&self, dim: usize) -> usize {
        // varint(m) + m · (point + prob)
        let m = self.support.len();
        dpc_metric::encode::varint_bytes(m as u64) + m * (8 * dim + 8)
    }
}

/// A site's shard of uncertain input: the local ground points plus the
/// nodes defined over them.
#[derive(Clone, Debug)]
pub struct NodeSet {
    /// Ground points this shard's supports live in.
    pub ground: PointSet,
    /// The uncertain nodes.
    pub nodes: Vec<UncertainNode>,
}

impl NodeSet {
    /// Empty shard of the given dimension.
    pub fn new(dim: usize) -> Self {
        Self {
            ground: PointSet::new(dim),
            nodes: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the shard holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All 1-medians (or 1-means) with their collapse costs.
    pub fn collapse(&self, squared: bool) -> Vec<(usize, f64)> {
        self.nodes
            .iter()
            .map(|n| {
                if squared {
                    n.one_mean(&self.ground)
                } else {
                    n.one_median(&self.ground)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ground() -> PointSet {
        PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn expected_distance_linearity() {
        let g = ground();
        let n = UncertainNode::new(vec![0, 2], vec![0.5, 0.5]);
        // E[d to coordinate 1.0] = 0.5·1 + 0.5·1 = 1
        assert_eq!(n.expected_distance(&g, &[1.0]), 1.0);
        // E[d² to 1.0] = 0.5·1 + 0.5·1 = 1
        assert_eq!(n.expected_sq_distance(&g, &[1.0]), 1.0);
        assert_eq!(n.expected_distance(&g, &[0.0]), 1.0);
        assert_eq!(n.expected_sq_distance(&g, &[0.0]), 2.0);
    }

    #[test]
    fn one_median_picks_support_minimizer() {
        let g = ground();
        // Mass 0.8 at 0, 0.2 at 10: 1-median is 0 (E[d]=2), not 10 (E[d]=8).
        let n = UncertainNode::new(vec![0, 3], vec![0.8, 0.2]);
        let (y, ell) = n.one_median(&g);
        assert_eq!(y, 0);
        assert!((ell - 2.0).abs() < 1e-12);
    }

    #[test]
    fn argmin_over_full_ground_beats_support() {
        let g = PointSet::from_rows(&[vec![0.0], vec![4.0], vec![5.0]]);
        // Mass 0.5/0.5 at 0 and 5. Over the support, E[d²] ties at 12.5;
        // over all of P, the point 4 wins with E[d²] = 8.5.
        let n = UncertainNode::new(vec![0, 2], vec![0.5, 0.5]);
        let (y_sup, c_sup) = n.one_mean(&g);
        assert_eq!(y_sup, 0);
        assert!((c_sup - 12.5).abs() < 1e-12);
        let (y_all, c_all) = n.argmin_over(&g, &[0, 1, 2], true);
        assert_eq!(y_all, 1);
        assert!((c_all - 8.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_node_is_point_mass() {
        let g = ground();
        let n = UncertainNode::deterministic(2);
        assert_eq!(n.one_median(&g), (2, 0.0));
        assert_eq!(n.expected_distance(&g, &[2.0]), 0.0);
    }

    #[test]
    fn centroid_is_weighted_mean() {
        let g = ground();
        let n = UncertainNode::new(vec![0, 3], vec![0.5, 0.5]);
        assert_eq!(n.centroid(&g), vec![5.0]);
    }

    #[test]
    fn sampling_matches_distribution() {
        let g = ground();
        let n = UncertainNode::new(vec![0, 3], vec![0.25, 0.75]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if n.sample(&mut rng) == 3 {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.02, "freq {freq}");
        let _ = g;
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = ground();
        let n = UncertainNode::new(vec![1, 3], vec![0.3, 0.7]);
        let mut w = WireWriter::new();
        n.encode(&g, &mut w);
        assert_eq!(w.len(), n.wire_bytes(1));
        let mut new_ground = PointSet::new(1);
        let mut r = WireReader::new(w.finish());
        let back = UncertainNode::decode(&mut new_ground, &mut r);
        assert_eq!(back.probs, n.probs);
        assert_eq!(new_ground.point(back.support[0]), g.point(1));
        assert_eq!(new_ground.point(back.support[1]), g.point(3));
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn rejects_unnormalized() {
        let _ = UncertainNode::new(vec![0, 1], vec![0.5, 0.6]);
    }

    #[test]
    fn collapse_of_nodeset() {
        let mut ns = NodeSet::new(1);
        ns.ground = ground();
        ns.nodes.push(UncertainNode::deterministic(1));
        ns.nodes
            .push(UncertainNode::new(vec![0, 3], vec![0.9, 0.1]));
        let c = ns.collapse(false);
        assert_eq!(c[0], (1, 0.0));
        assert_eq!(c[1].0, 0);
        assert!((c[1].1 - 1.0).abs() < 1e-12);
    }
}
