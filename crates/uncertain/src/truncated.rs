//! Truncated expected distances (Definition 5.7) and the parametric τ grid.
//!
//! `L_τ(x,y) = max{d(x,y) − τ, 0}` and `ρ_τ(j,u) = E_σ[L_τ(σ(j), u)]`.
//! `L_τ` is not a metric, but satisfies `L_τ(a,b) + L_τ(b,c) ≥ L_{2τ}(a,c)`
//! (Lemma 5.12's engine) and the 3-hop pseudo-triangle inequality of
//! \[15, Lemma 4.1\] that Lemma 5.9 uses. Algorithm 4 sweeps
//! `τ ∈ T = {2^i · d_min/18 : 0 ≤ i ≤ ⌈log₂ Δ⌉ + 2}`.

use crate::node::UncertainNode;
use dpc_metric::PointSet;

/// `ρ_τ(j, u) = E[max(d(σ(j), u) − τ, 0)]` for coordinates `u`.
pub fn truncated_expected_distance(
    node: &UncertainNode,
    ground: &PointSet,
    u: &[f64],
    tau: f64,
) -> f64 {
    node.support
        .iter()
        .zip(&node.probs)
        .map(|(&s, &p)| {
            let d = ground.sq_dist_to(s, u).sqrt();
            p * (d - tau).max(0.0)
        })
        .sum()
}

/// The parametric grid `T = {2^i · d_min/18 : 0 ≤ i ≤ ⌈log₂ Δ⌉ + 2}`
/// (Algorithm 4, line 2), where `Δ = d_max/d_min`.
///
/// # Panics
/// Panics unless `0 < d_min ≤ d_max`.
pub fn tau_grid(d_min: f64, d_max: f64) -> Vec<f64> {
    assert!(d_min > 0.0 && d_max >= d_min, "need 0 < d_min <= d_max");
    let delta = d_max / d_min;
    let imax = delta.log2().ceil() as usize + 2;
    (0..=imax)
        .map(|i| (2.0f64).powi(i as i32) * d_min / 18.0)
        .collect()
}

/// Minimum and maximum pairwise distance over a point set (`d_min`,
/// `d_max`), ignoring coincident pairs. Returns `None` when fewer than two
/// distinct points exist.
pub fn distance_range(points: &PointSet) -> Option<(f64, f64)> {
    let n = points.len();
    let mut dmin = f64::INFINITY;
    let mut dmax: f64 = 0.0;
    for a in 0..n {
        for b in 0..a {
            let d = points.dist(a, b);
            if d > 0.0 {
                dmin = dmin.min(d);
                dmax = dmax.max(d);
            }
        }
    }
    if dmin.is_finite() {
        Some((dmin, dmax))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_at_zero_is_expected_distance() {
        let g = PointSet::from_rows(&[vec![0.0], vec![10.0]]);
        let n = UncertainNode::new(vec![0, 1], vec![0.5, 0.5]);
        let at = truncated_expected_distance(&n, &g, &[0.0], 0.0);
        assert!((at - n.expected_distance(&g, &[0.0])).abs() < 1e-12);
    }

    #[test]
    fn truncation_clamps_per_realization() {
        let g = PointSet::from_rows(&[vec![0.0], vec![10.0]]);
        let n = UncertainNode::new(vec![0, 1], vec![0.5, 0.5]);
        // from u=0: realizations at distance 0 and 10; tau=4 clamps to 0, 6
        let v = truncated_expected_distance(&n, &g, &[0.0], 4.0);
        assert!((v - 3.0).abs() < 1e-12);
        // tau beyond dmax: 0
        assert_eq!(truncated_expected_distance(&n, &g, &[0.0], 100.0), 0.0);
    }

    #[test]
    fn grid_covers_range() {
        let grid = tau_grid(1.0, 64.0);
        // i up to ceil(log2 64)+2 = 8 -> 9 values
        assert_eq!(grid.len(), 9);
        assert!((grid[0] - 1.0 / 18.0).abs() < 1e-12);
        // The top value exceeds d_max/6 (the τ_max feasibility anchor of
        // Lemma 5.10).
        assert!(*grid.last().unwrap() > 64.0 / 6.0);
        // geometric doubling
        for w in grid.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn distance_range_ignores_duplicates() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![0.0], vec![3.0], vec![7.0]]);
        let (dmin, dmax) = distance_range(&ps).unwrap();
        assert_eq!(dmin, 3.0);
        assert_eq!(dmax, 7.0);
        let solo = PointSet::from_rows(&[vec![1.0]]);
        assert!(distance_range(&solo).is_none());
        let dup = PointSet::from_rows(&[vec![1.0], vec![1.0]]);
        assert!(distance_range(&dup).is_none());
    }
}
