//! Monte-Carlo validation of uncertain objectives.
//!
//! The per-point objectives (Equations 1–2) are linear in the node
//! distributions, so they evaluate exactly; the *global* center objective
//! `E[max_j d(σ(j), π(j))]` (Equation 3) does not factorize — E and max do
//! not commute — and is estimated here by sampling full realizations. The
//! experiments use this as the ground truth Algorithm 4's output is
//! compared against (E9).

use crate::node::NodeSet;
use dpc_metric::{CenterBlock, PointSet, ThreadBudget};
use dpc_obs::{Counter, RecorderHandle};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Exact per-point expected cost (Equation 1 / 2 style): each node is
/// assigned to its best center by expected distance; the worst `t` nodes
/// are excluded.
///
/// `squared` selects the means objective; `center_pp` takes the max instead
/// of the sum.
pub fn estimate_expected_cost(
    shards: &[NodeSet],
    centers: &PointSet,
    t: usize,
    squared: bool,
    center_pp: bool,
) -> f64 {
    estimate_expected_cost_with(
        shards,
        centers,
        t,
        squared,
        center_pp,
        ThreadBudget::serial(),
    )
}

/// [`estimate_expected_cost`] with an explicit thread budget.
///
/// The per-node expected-distance loop is restructured around the bulk
/// kernel: every support point contributes one blocked distance row over
/// all centers (accumulated in support order, so values match the scalar
/// `expected_distance` loop exactly), and independent nodes fan out
/// across the budget.
pub fn estimate_expected_cost_with(
    shards: &[NodeSet],
    centers: &PointSet,
    t: usize,
    squared: bool,
    center_pp: bool,
    threads: ThreadBudget,
) -> f64 {
    estimate_expected_cost_recorded(
        shards,
        centers,
        t,
        squared,
        center_pp,
        threads,
        &RecorderHandle::noop(),
    )
}

/// [`estimate_expected_cost_with`] flushing kernel counters to
/// `recorder`: every support point pays one exact blocked row over all
/// `k` centers, so queries = total support size and scanned = that times
/// `k` (nothing is pruned on this exact path). Values are identical to
/// the unrecorded call.
pub fn estimate_expected_cost_recorded(
    shards: &[NodeSet],
    centers: &PointSet,
    t: usize,
    squared: bool,
    center_pp: bool,
    threads: ThreadBudget,
    recorder: &RecorderHandle,
) -> f64 {
    if centers.is_empty() {
        return 0.0;
    }
    if recorder.enabled() {
        let support: u64 = shards
            .iter()
            .flat_map(|s| s.nodes.iter())
            .map(|n| n.support.len() as u64)
            .sum();
        recorder.add(Counter::KernelQueries, support);
        recorder.add(Counter::CandidatesScanned, support * centers.len() as u64);
    }
    let block = CenterBlock::new(centers);
    let k = centers.len();
    let mut costs: Vec<f64> = Vec::new();
    for shard in shards {
        let start = costs.len();
        costs.resize(start + shard.nodes.len(), 0.0);
        let chunk = &mut costs[start..];
        dpc_metric::kernel::par_chunks_mut(threads, chunk, |offset, out| {
            let mut row = Vec::with_capacity(k);
            let mut acc = vec![0.0f64; k];
            for (o, best) in out.iter_mut().enumerate() {
                let node = &shard.nodes[offset + o];
                acc.iter_mut().for_each(|a| *a = 0.0);
                for (&s, &p) in node.support.iter().zip(&node.probs) {
                    block.sq_dists_to_all(shard.ground.point(s), &mut row);
                    if squared {
                        for (a, &sq) in acc.iter_mut().zip(&row) {
                            *a += p * sq;
                        }
                    } else {
                        for (a, &sq) in acc.iter_mut().zip(&row) {
                            *a += p * sq.sqrt();
                        }
                    }
                }
                *best = acc.iter().copied().fold(f64::INFINITY, f64::min);
            }
        });
    }
    if costs.is_empty() {
        return 0.0;
    }
    costs.sort_by(|a, b| b.total_cmp(a));
    let rest = &costs[t.min(costs.len())..];
    if center_pp {
        rest.first().copied().unwrap_or(0.0)
    } else {
        rest.iter().sum()
    }
}

/// Monte-Carlo estimate of the center-g objective
/// `E[max_{j∉O} d(σ(j), π(j))]` (Equation 3).
///
/// The assignment `π` and the excluded set `O` are fixed *before* sampling
/// (assigned clustering): each node maps to its best center by expected
/// distance, and the `t` nodes with the largest expected assignment
/// distance are excluded.
pub fn estimate_center_g_cost(
    shards: &[NodeSet],
    centers: &PointSet,
    t: usize,
    samples: usize,
    seed: u64,
) -> f64 {
    if centers.is_empty() {
        return 0.0;
    }
    // Fix π and O.
    struct Entry<'a> {
        shard: &'a NodeSet,
        node: usize,
        center: usize,
        expected: f64,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for shard in shards {
        for (j, node) in shard.nodes.iter().enumerate() {
            let (center, expected) = (0..centers.len())
                .map(|c| (c, node.expected_distance(&shard.ground, centers.point(c))))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty centers");
            entries.push(Entry {
                shard,
                node: j,
                center,
                expected,
            });
        }
    }
    entries.sort_by(|a, b| b.expected.total_cmp(&a.expected));
    let kept = &entries[t.min(entries.len())..];
    if kept.is_empty() {
        return 0.0;
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..samples {
        let mut worst: f64 = 0.0;
        for e in kept {
            let node = &e.shard.nodes[e.node];
            let realized = node.sample(&mut rng);
            let d = e
                .shard
                .ground
                .sq_dist_to(realized, centers.point(e.center))
                .sqrt();
            worst = worst.max(d);
        }
        acc += worst;
    }
    acc / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::UncertainNode;

    fn shard() -> NodeSet {
        let ground = PointSet::from_rows(&[vec![0.0], vec![2.0], vec![100.0]]);
        NodeSet {
            ground,
            nodes: vec![
                UncertainNode::new(vec![0, 1], vec![0.5, 0.5]),
                UncertainNode::deterministic(1),
                UncertainNode::deterministic(2),
            ],
        }
    }

    #[test]
    fn expected_cost_excludes_worst() {
        let s = shard();
        let centers = PointSet::from_rows(&[vec![1.0]]);
        // node 0: E[d] = 1; node 1: 1; node 2: 99
        let all = estimate_expected_cost(std::slice::from_ref(&s), &centers, 0, false, false);
        assert!((all - 101.0).abs() < 1e-9);
        let t1 = estimate_expected_cost(&[s], &centers, 1, false, false);
        assert!((t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn center_pp_takes_max() {
        let s = shard();
        let centers = PointSet::from_rows(&[vec![1.0]]);
        let v = estimate_expected_cost(&[s], &centers, 1, false, true);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn center_g_at_least_max_of_expectations() {
        // E[max] >= max E (Jensen-type); with one deterministic far node
        // excluded, E[max] of the two remaining ~ max realized distance.
        let s = shard();
        let centers = PointSet::from_rows(&[vec![1.0]]);
        let g = estimate_center_g_cost(std::slice::from_ref(&s), &centers, 1, 4000, 11);
        let pp = estimate_expected_cost(&[s], &centers, 1, false, true);
        assert!(g >= pp - 0.05, "E[max] {g} vs max-E {pp}");
        // node 0 realizes at 0 or 2 (distance 1 either way), node 1 at
        // distance 1 -> E[max] = 1 exactly.
        assert!((g - 1.0).abs() < 0.05, "g {g}");
    }

    #[test]
    fn deterministic_nodes_have_zero_variance() {
        let ground = PointSet::from_rows(&[vec![0.0], vec![5.0]]);
        let s = NodeSet {
            ground,
            nodes: vec![
                UncertainNode::deterministic(0),
                UncertainNode::deterministic(1),
            ],
        };
        let centers = PointSet::from_rows(&[vec![0.0]]);
        let g = estimate_center_g_cost(&[s], &centers, 0, 50, 3);
        assert!((g - 5.0).abs() < 1e-9);
    }
}
