//! **Algorithm 3**: distributed partial clustering of uncertain data via
//! the compression scheme (Theorem 5.6).
//!
//! Every site collapses its nodes (1-median / 1-mean), builds the local
//! compressed graph (Figure 1), and runs the *deterministic* distributed
//! machinery on it — Algorithm 1 for median/means, Algorithm 2's
//! Gonzalez-marginal machinery for center-pp. The single amendment (line 4
//! of Algorithm 3): whenever a site would communicate a demand vertex
//! `p_j`, it ships the pair `(y_j, ℓ_j)` — a point plus one scalar — which
//! at most doubles communication. The coordinator's merged instance is
//! again a tentacled metric, so the final solve is the same deterministic
//! solver once more. Output centers are points of `P` (the `y`
//! coordinates), per Definition 1.2.

use crate::compressed::CompressedGraph;
use crate::node::NodeSet;
use bytes::Bytes;
use dpc_cluster::{
    charikar_center, gonzalez_with, median_bicriteria, BicriteriaParams, CenterParams,
    LocalSearchParams, Solution,
};
use dpc_coordinator::{
    run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site,
};
use dpc_core::allocation::allocate_outliers;
use dpc_core::hull::{geometric_grid, ConvexProfile};
use dpc_core::wire::ThresholdMsg;
use dpc_metric::{
    NearestAssigner, Objective, PointSet, ThreadBudget, WeightedSet, WireReader, WireWriter,
};

/// Which uncertain objective Algorithm 3 optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UObjective {
    /// Uncertain `(k,t)`-median (Equation 1).
    Median,
    /// Uncertain `(k,t)`-means.
    Means,
    /// Uncertain `(k,t)`-center-pp (Equation 2, per-point max).
    CenterPp,
}

/// Configuration for the distributed uncertain protocol.
#[derive(Clone, Copy, Debug)]
pub struct UncertainConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Outlier budget `t`.
    pub t: usize,
    /// Grid/allocation ratio `ρ`.
    pub rho: f64,
    /// Coordinator-side outlier relaxation `ε`.
    pub eps: f64,
    /// The objective.
    pub objective: UObjective,
    /// λ-bisection iterations (median/means).
    pub lambda_iters: usize,
    /// Inner local-search tuning (median/means).
    pub ls: LocalSearchParams,
    /// Coordinator greedy-disk tuning (center-pp).
    pub charikar: CenterParams,
    /// Thread budget for the bulk kernels in the site and coordinator
    /// solvers (wall-clock only).
    pub threads: ThreadBudget,
}

impl UncertainConfig {
    /// Defaults for uncertain `(k,t)`-median.
    pub fn new(k: usize, t: usize) -> Self {
        Self {
            k,
            t,
            rho: 2.0,
            eps: 1.0,
            objective: UObjective::Median,
            lambda_iters: 12,
            ls: LocalSearchParams::default(),
            charikar: CenterParams::default(),
            threads: ThreadBudget::serial(),
        }
    }

    /// Caps the bulk-kernel thread budget.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = ThreadBudget::new(n);
        self
    }

    /// Switch to the means objective.
    pub fn means(mut self) -> Self {
        self.objective = UObjective::Means;
        self
    }

    /// Switch to the center-pp objective.
    pub fn center_pp(mut self) -> Self {
        self.objective = UObjective::CenterPp;
        self
    }

    fn squared(&self) -> bool {
        self.objective == UObjective::Means
    }
}

/// A site→coordinator summary over tentacled entities `(y, ℓ, weight)`.
#[derive(Clone, Debug, PartialEq)]
pub struct TentacledMsg {
    /// Entity base points.
    pub ys: PointSet,
    /// Entity tentacles (collapse costs; 0 for pure points).
    pub ells: Vec<f64>,
    /// Entity weights (attached node counts; 1 for shipped outliers).
    pub weights: Vec<f64>,
    /// Locally ignored node count `t_i`.
    pub t_i: u64,
}

impl TentacledMsg {
    fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_varint(self.ys.dim() as u64);
        w.put_varint(self.ys.len() as u64);
        for (i, p) in self.ys.iter() {
            w.put_point(p);
            w.put_f64(self.ells[i]);
            w.put_f64(self.weights[i]);
        }
        w.put_varint(self.t_i);
        w.finish()
    }

    fn decode(buf: Bytes) -> Self {
        let mut r = WireReader::new(buf);
        let dim = r.get_varint() as usize;
        let n = r.get_varint() as usize;
        let mut ys = PointSet::with_capacity(dim, n);
        let mut ells = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut p = Vec::with_capacity(dim);
        for _ in 0..n {
            r.read_point_into(dim, &mut p);
            ys.push(&p);
            ells.push(r.get_f64());
            weights.push(r.get_f64());
        }
        let t_i = r.get_varint();
        TentacledMsg {
            ys,
            ells,
            weights,
            t_i,
        }
    }
}

/// Output of Algorithm 3.
#[derive(Clone, Debug)]
pub struct UncertainSolution {
    /// Chosen centers, as points of `P` (the `y` coordinates of the chosen
    /// vertices — Definition 1.2 requires `K ⊆ P`).
    pub centers: PointSet,
    /// Coordinator's weighted-instance objective value.
    pub coordinator_cost: f64,
    /// Outlier weight excluded at the coordinator.
    pub excluded_weight: f64,
    /// Total `Σ t_i` shipped by sites.
    pub shipped_outliers: u64,
}

/// Site-side state.
struct UncertainSite<'a> {
    data: &'a NodeSet,
    site_id: usize,
    cfg: UncertainConfig,
    grid: Vec<usize>,
    graph: Option<CompressedGraph>,
    demands: Option<WeightedSet>,
    sols: Vec<Solution>,
    gonzalez_order: Vec<usize>,
    gonzalez_radii: Vec<f64>,
    profile: Option<ConvexProfile>,
}

impl<'a> UncertainSite<'a> {
    fn new(data: &'a NodeSet, site_id: usize, cfg: UncertainConfig) -> Self {
        Self {
            data,
            site_id,
            cfg,
            grid: Vec::new(),
            graph: None,
            demands: None,
            sols: Vec::new(),
            gonzalez_order: Vec::new(),
            gonzalez_radii: Vec::new(),
            profile: None,
        }
    }

    fn empty_msg(&self) -> Bytes {
        TentacledMsg {
            ys: PointSet::new(self.data.ground.dim().max(1)),
            ells: Vec::new(),
            weights: Vec::new(),
            t_i: 0,
        }
        .encode()
    }

    fn build_profile(&mut self) -> Bytes {
        let n = self.data.len();
        self.grid = geometric_grid(self.cfg.t, self.cfg.rho.max(1.0 + 1e-9));
        if n == 0 {
            let profile = ConvexProfile::lower_hull(&[(0, 0.0)]);
            let mut w = WireWriter::new();
            profile.encode(&mut w);
            self.profile = Some(profile);
            return w.finish();
        }
        let (graph, demands) = CompressedGraph::from_nodes(self.data, self.cfg.squared());
        let mut pts = Vec::with_capacity(self.grid.len());
        match self.cfg.objective {
            UObjective::Median | UObjective::Means => {
                let mut ls = self.cfg.ls;
                ls.seed = ls.seed.wrapping_add(self.site_id as u64);
                ls.threads = self.cfg.threads;
                for &q in &self.grid {
                    let sol = if q >= n {
                        Solution {
                            centers: vec![0],
                            cost: 0.0,
                            outliers: Vec::new(),
                            assignment: vec![0; demands.len()],
                        }
                    } else {
                        let params = BicriteriaParams {
                            eps: 0.0,
                            lambda_iters: self.cfg.lambda_iters,
                            ls,
                        };
                        median_bicriteria(
                            &graph,
                            &demands,
                            2 * self.cfg.k,
                            q as f64,
                            Objective::Median,
                            params,
                        )
                    };
                    pts.push((q, sol.cost));
                    self.sols.push(sol);
                }
            }
            UObjective::CenterPp => {
                // Gonzalez over the demand vertices (ids n..2n) under the
                // graph metric; marginals are insertion radii.
                let demand_ids: Vec<usize> = (n..2 * n).collect();
                let prefix = (2 * self.cfg.k + self.cfg.t + 1).min(n);
                let ord = gonzalez_with(&graph, &demand_ids, prefix, 0, self.cfg.threads);
                self.gonzalez_order = ord.order.clone();
                self.gonzalez_radii = ord.radii.clone();
                // Cumulative profile (same construction as Algorithm 2).
                let t = self.cfg.t;
                let mut cum = vec![0.0f64; t + 1];
                for q in (0..t).rev() {
                    let idx = 2 * self.cfg.k + q; // radius of the (2k+q+1)-th
                    let marg = if idx < self.gonzalez_radii.len() {
                        self.gonzalez_radii[idx]
                    } else {
                        0.0
                    };
                    cum[q] = cum[q + 1] + marg;
                }
                for &q in &self.grid {
                    pts.push((q, cum[q]));
                }
            }
        }
        let profile = ConvexProfile::lower_hull(&pts);
        let mut w = WireWriter::new();
        profile.encode(&mut w);
        self.profile = Some(profile);
        self.graph = Some(graph);
        self.demands = Some(demands);
        w.finish()
    }

    fn t_from_threshold(&self, thr: &ThresholdMsg) -> usize {
        let prof = self.profile.as_ref().expect("profile built");
        let mut ti = 0usize;
        for q in 1..=self.cfg.t {
            let m = prof.marginal(q);
            let wins = m > thr.threshold
                || (m == thr.threshold && (self.site_id as u64, q as u64) <= (thr.i0, thr.q0));
            if wins {
                ti = q;
            } else {
                break;
            }
        }
        ti
    }

    fn respond_threshold(&mut self, msg: &Bytes) -> Bytes {
        let thr = ThresholdMsg::decode(msg.clone());
        let n = self.data.len();
        if n == 0 {
            return self.empty_msg();
        }
        let prof = self.profile.as_ref().expect("profile built");
        let ti = if thr.exceptional {
            prof.next_vertex_at_or_after((thr.q0 as usize).min(self.cfg.t))
        } else {
            self.t_from_threshold(&thr)
        };
        let graph = self.graph.as_ref().expect("graph built");
        match self.cfg.objective {
            UObjective::Median | UObjective::Means => {
                let demands = self.demands.as_ref().expect("demands built");
                let gi = self
                    .grid
                    .binary_search(&ti)
                    .unwrap_or_else(|_| panic!("t_i = {ti} not a grid point"));
                let centers = self.sols[gi].centers.clone();
                let sol = Solution::evaluate_with(
                    graph,
                    demands,
                    centers,
                    (ti.min(n)) as f64,
                    Objective::Median,
                    self.cfg.threads,
                );
                // Centers: tentacled entities with aggregated weights.
                let excluded: Vec<usize> = sol.outlier_positions();
                let mut is_out = vec![false; demands.len()];
                for &e in &excluded {
                    is_out[e] = true;
                }
                let mut weights = vec![0.0f64; sol.centers.len()];
                for (e, (id, w)) in demands.iter().enumerate() {
                    let _ = id;
                    if !is_out[e] && w > 0.0 {
                        weights[sol.assignment[e]] += w;
                    }
                }
                let mut ys = PointSet::new(self.data.ground.dim());
                let mut ells = Vec::new();
                let mut out_weights = Vec::new();
                for (ci, &c) in sol.centers.iter().enumerate() {
                    ys.push(graph.y_coords(c));
                    ells.push(graph.tentacle(c));
                    out_weights.push(weights[ci]);
                }
                // Outliers: ship (y_j, ℓ_j) per ignored demand (weight 1).
                for &e in &excluded {
                    let v = demands.ids()[e];
                    ys.push(graph.y_coords(v));
                    ells.push(graph.tentacle(v));
                    out_weights.push(1.0);
                }
                TentacledMsg {
                    ys,
                    ells,
                    weights: out_weights,
                    t_i: ti as u64,
                }
                .encode()
            }
            UObjective::CenterPp => {
                let prefix = (2 * self.cfg.k + ti).min(self.gonzalez_order.len());
                let chosen = &self.gonzalez_order[..prefix];
                // Attach every demand to its nearest prefix vertex, in one
                // bulk assignment pass.
                let demand_ids: Vec<usize> = (n..2 * n).collect();
                let assigned = NearestAssigner::with_threads(graph, self.cfg.threads)
                    .assign(&demand_ids, chosen);
                let mut weights = vec![0.0f64; prefix];
                for &pos in &assigned.pos {
                    weights[pos] += 1.0;
                }
                let mut ys = PointSet::new(self.data.ground.dim());
                let mut ells = Vec::new();
                for &v in chosen {
                    ys.push(graph.y_coords(v));
                    ells.push(graph.tentacle(v));
                }
                TentacledMsg {
                    ys,
                    ells,
                    weights,
                    t_i: ti as u64,
                }
                .encode()
            }
        }
    }
}

impl Site for UncertainSite<'_> {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        match round {
            0 => self.build_profile(),
            1 => self.respond_threshold(msg),
            r => panic!("uncertain site has no round {r}"),
        }
    }
}

/// Coordinator-side state.
struct UncertainCoordinator {
    cfg: UncertainConfig,
    dim: usize,
    result: Option<UncertainSolution>,
}

impl Coordinator for UncertainCoordinator {
    type Output = UncertainSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        // The uncertain protocols do not tolerate dropout: every reply
        // feeds the τ̂/threshold selection, so a missing site is fatal.
        let replies: Vec<Bytes> = replies
            .into_iter()
            .map(|r| r.expect("uncertain protocol does not tolerate site dropout"))
            .collect();
        match round {
            0 => {
                let mut w = WireWriter::new();
                w.put_varint(self.cfg.k as u64);
                w.put_varint(self.cfg.t as u64);
                w.put_f64(self.cfg.rho);
                CoordinatorStep::Broadcast(w.finish())
            }
            1 => {
                let profiles: Vec<ConvexProfile> = replies
                    .iter()
                    .map(|b| {
                        let mut r = WireReader::new(b.clone());
                        ConvexProfile::decode(&mut r)
                    })
                    .collect();
                let alloc = allocate_outliers(&profiles, self.cfg.t, self.cfg.rho);
                let msgs = (0..replies.len())
                    .map(|i| {
                        ThresholdMsg {
                            threshold: alloc.threshold,
                            i0: alloc.i0 as u64,
                            q0: alloc.q0 as u64,
                            exceptional: i == alloc.i0 && self.cfg.t > 0,
                        }
                        .encode()
                    })
                    .collect();
                CoordinatorStep::Messages(msgs)
            }
            2 => {
                self.result = Some(self.solve_final(replies));
                CoordinatorStep::Finish
            }
            r => panic!("uncertain coordinator has no round {r}"),
        }
    }

    fn finish(self) -> UncertainSolution {
        self.result.expect("protocol finished")
    }
}

impl UncertainCoordinator {
    fn solve_final(&mut self, replies: Vec<Bytes>) -> UncertainSolution {
        let msgs: Vec<TentacledMsg> = replies.into_iter().map(TentacledMsg::decode).collect();
        let dim = msgs
            .iter()
            .find(|m| !m.ys.is_empty())
            .map(|m| m.ys.dim())
            .unwrap_or(self.dim);
        let mut ys = PointSet::new(dim);
        let mut ells = Vec::new();
        let mut weighted = WeightedSet::new();
        let mut shipped = 0u64;
        for m in &msgs {
            shipped += m.t_i;
            let off = ys.extend_from(&m.ys);
            for (j, (&l, &w)) in m.ells.iter().zip(&m.weights).enumerate() {
                ells.push(l);
                weighted.push(off + j, w);
            }
        }
        if weighted.is_empty() {
            return UncertainSolution {
                centers: PointSet::new(dim),
                coordinator_cost: 0.0,
                excluded_weight: 0.0,
                shipped_outliers: 0,
            };
        }
        let metric = CompressedGraph::from_parts(ys.clone(), ells, self.cfg.squared());
        let sol = match self.cfg.objective {
            UObjective::Median | UObjective::Means => {
                let mut ls = self.cfg.ls;
                ls.threads = self.cfg.threads;
                let params = BicriteriaParams {
                    eps: self.cfg.eps,
                    lambda_iters: self.cfg.lambda_iters,
                    ls,
                };
                median_bicriteria(
                    &metric,
                    &weighted,
                    self.cfg.k,
                    self.cfg.t as f64,
                    Objective::Median,
                    params,
                )
            }
            UObjective::CenterPp => charikar_center(
                &metric,
                &weighted,
                self.cfg.k,
                self.cfg.t as f64,
                CenterParams {
                    threads: self.cfg.threads,
                    ..self.cfg.charikar
                },
            ),
        };
        UncertainSolution {
            centers: ys.subset(&sol.centers),
            coordinator_cost: sol.cost,
            excluded_weight: sol.outlier_weight(),
            shipped_outliers: shipped,
        }
    }
}

/// Runs Algorithm 3 over the node shards.
pub fn run_uncertain_median(
    shards: &[NodeSet],
    cfg: UncertainConfig,
    options: RunOptions,
) -> ProtocolOutput<UncertainSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    let dim = shards[0].ground.dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .enumerate()
        .map(|(i, ns)| Box::new(UncertainSite::new(ns, i, cfg)) as Box<dyn Site + '_>)
        .collect();
    let coordinator = UncertainCoordinator {
        cfg,
        dim,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::estimate_expected_cost;
    use crate::node::UncertainNode;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Two uncertain clusters (nodes jitter around two sites' worth of
    /// ground locations) plus noise nodes with scattered support.
    fn shards(seed: u64) -> Vec<NodeSet> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for site in 0..2 {
            let center = site as f64 * 100.0;
            let mut ground = PointSet::new(2);
            let mut nodes = Vec::new();
            for _ in 0..12 {
                // Each node: 3 support points near the cluster center.
                let mut support = Vec::new();
                for _ in 0..3 {
                    let p =
                        ground.push(&[center + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
                    support.push(p);
                }
                nodes.push(UncertainNode::new(support, vec![0.4, 0.3, 0.3]));
            }
            if site == 1 {
                // Noise nodes with far-flung support.
                for _ in 0..2 {
                    let a = ground.push(&[rng.gen_range(5e3..6e3), 9e3]);
                    let b = ground.push(&[-7e3, rng.gen_range(1e3..2e3)]);
                    nodes.push(UncertainNode::new(vec![a, b], vec![0.5, 0.5]));
                }
            }
            out.push(NodeSet { ground, nodes });
        }
        out
    }

    #[test]
    fn uncertain_median_recovers_clusters() {
        let sh = shards(3);
        let cfg = UncertainConfig::new(2, 2);
        let out = run_uncertain_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let cost = estimate_expected_cost(&sh, &out.output.centers, 4, false, false);
        // 24 honest nodes with ~1-unit jitter: expected cost O(24·2); noise
        // nodes excluded. A solution paying for noise costs > 5e3.
        assert!(cost < 150.0, "uncertain median cost {cost}");
        assert_eq!(out.stats.num_rounds(), 2);
    }

    #[test]
    fn uncertain_means_runs() {
        let sh = shards(5);
        let cfg = UncertainConfig::new(2, 2).means();
        let out = run_uncertain_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let cost = estimate_expected_cost(&sh, &out.output.centers, 4, true, false);
        assert!(cost < 500.0, "uncertain means cost {cost}");
    }

    #[test]
    fn uncertain_center_pp_runs() {
        let sh = shards(7);
        let cfg = UncertainConfig::new(2, 2).center_pp();
        let out = run_uncertain_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let cost = estimate_expected_cost(&sh, &out.output.centers, 4, false, true);
        assert!(cost < 20.0, "uncertain center-pp cost {cost}");
    }

    #[test]
    fn tentacled_msg_roundtrip() {
        let msg = TentacledMsg {
            ys: PointSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            ells: vec![0.0, 0.7],
            weights: vec![5.0, 1.0],
            t_i: 1,
        };
        assert_eq!(TentacledMsg::decode(msg.encode()), msg);
    }

    #[test]
    fn empty_site_tolerated() {
        let mut sh = shards(9);
        sh.push(NodeSet::new(2));
        let cfg = UncertainConfig::new(2, 2);
        let out = run_uncertain_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let cost = estimate_expected_cost(&sh, &out.output.centers, 4, false, false);
        assert!(cost < 150.0, "cost {cost}");
    }

    #[test]
    fn deterministic_nodes_match_deterministic_algorithm_shape() {
        // Point-mass nodes: the compressed graph has zero tentacles, so
        // Algorithm 3 degenerates to Algorithm 1 on the ground points.
        let mut ground = PointSet::new(1);
        let mut nodes = Vec::new();
        for i in 0..10 {
            let p = ground.push(&[i as f64 * 0.1]);
            nodes.push(UncertainNode::deterministic(p));
        }
        let far = ground.push(&[1e4]);
        nodes.push(UncertainNode::deterministic(far));
        let sh = vec![NodeSet { ground, nodes }];
        let cfg = UncertainConfig::new(1, 1);
        let out = run_uncertain_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let cost = estimate_expected_cost(&sh, &out.output.centers, 2, false, false);
        assert!(cost < 3.0, "cost {cost}");
    }
}
