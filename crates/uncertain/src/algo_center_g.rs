//! **Algorithm 4**: distributed uncertain `(k,t)`-center-g (Theorem 5.14).
//!
//! The global objective `E[max_j d(σ(j), π(j))]` does not factorize over
//! nodes, so the compression scheme of Algorithm 3 is not enough. Following
//! \[15\], the algorithm works with the truncated expected distances
//! `ρ_τ(j,u) = E[max(d − τ, 0)]` and performs a parametric search over
//! `τ ∈ T = {2^i d_min/18}`:
//!
//! 1. sites report their local `(d_min, d_max)`; the coordinator combines
//!    and broadcasts the global range (the `s·log Δ` term of the bound);
//! 2. for *every* `τ ∈ T`, each site preclusters its nodes under
//!    `ρ_{6τ}` — Gonzalez's traversal on the node-node truncated metric —
//!    and ships the `O(log t)` cumulative-radius hull per τ;
//! 3. the coordinator runs the water-filling allocation per τ, finds
//!    `τ̂ = min{τ : Σ_i C_sol(A_i, 2k, t_i(τ), ρ_{6τ}) ≤ 12τ}`
//!    (Lemma 5.10's selection rule; costs are read off the shipped
//!    profiles), and returns the τ̂-allocation thresholds;
//! 4. sites ship the `2k` preclustering centers as *collapsed points*
//!    (`sk·B` bytes) and the `t_i` tentative outliers as *full
//!    distributions* (`t·I` bytes — an outlier's whole distribution is
//!    needed to price it globally); the coordinator solves the weighted
//!    center instance on expected distances (the collapsing argument of
//!    Lemma 5.11 bounds the error by `O(τ̂) = O(C_opt)`).
//!
//! We spend 3 protocol rounds instead of the paper's 2: Algorithm 4's
//! line 1 ("all parties compute d_min and d_max") is itself a round unless
//! the range is known a priori; the communication totals match the bound.

use crate::node::{NodeSet, UncertainNode};
use crate::truncated::{distance_range, tau_grid};
use bytes::Bytes;
use dpc_cluster::{charikar_center, gonzalez_with, CenterParams};
use dpc_coordinator::{
    run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site,
};
use dpc_core::allocation::allocate_outliers;
use dpc_core::hull::{geometric_grid, ConvexProfile};
use dpc_metric::{MatrixMetric, Metric, PointSet, WeightedSet, WireReader, WireWriter};

/// Configuration for Algorithm 4.
#[derive(Clone, Copy, Debug)]
pub struct CenterGConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Outlier budget `t`.
    pub t: usize,
    /// Allocation ratio `ρ`.
    pub rho: f64,
    /// Coordinator greedy-disk tuning.
    pub charikar: CenterParams,
    /// Thread budget for the bulk kernels (per-τ Gonzalez relax, the
    /// coordinator disk scans). Wall-clock only.
    pub threads: dpc_metric::ThreadBudget,
}

impl CenterGConfig {
    /// Defaults: `ρ = 2`.
    pub fn new(k: usize, t: usize) -> Self {
        Self {
            k,
            t,
            rho: 2.0,
            charikar: CenterParams::default(),
            threads: dpc_metric::ThreadBudget::serial(),
        }
    }

    /// Caps the bulk-kernel thread budget.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = dpc_metric::ThreadBudget::new(n);
        self
    }
}

/// Output of Algorithm 4 (same shape as Algorithm 3's).
pub use crate::algo_uncertain::UncertainSolution;

/// Truncated node↔node distance: route through one of the two 1-medians,
/// whichever is cheaper (symmetric by construction).
fn node_node_dist(
    a: &UncertainNode,
    b: &UncertainNode,
    ground: &PointSet,
    ya: usize,
    yb: usize,
    tau: f64,
) -> f64 {
    let via = |y: usize| {
        let u = ground.point(y);
        crate::truncated::truncated_expected_distance(a, ground, u, tau)
            + crate::truncated::truncated_expected_distance(b, ground, u, tau)
    };
    via(ya).min(via(yb))
}

/// Per-τ preclustering state kept by a site between rounds.
struct TauState {
    order: Vec<usize>,
    profile: ConvexProfile,
}

/// Site-side state of Algorithm 4.
struct CenterGSite<'a> {
    data: &'a NodeSet,
    site_id: usize,
    cfg: CenterGConfig,
    /// 1-medians of the local nodes (collapse targets).
    y: Vec<usize>,
    taus: Vec<f64>,
    states: Vec<TauState>,
}

impl<'a> CenterGSite<'a> {
    fn new(data: &'a NodeSet, site_id: usize, cfg: CenterGConfig) -> Self {
        Self {
            data,
            site_id,
            cfg,
            y: Vec::new(),
            taus: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Round 0: local distance range over the support points.
    fn report_range(&mut self) -> Bytes {
        let mut w = WireWriter::new();
        match distance_range(&self.data.ground) {
            Some((lo, hi)) => {
                w.put_f64(lo);
                w.put_f64(hi);
            }
            None => {
                w.put_f64(f64::INFINITY);
                w.put_f64(0.0);
            }
        }
        w.finish()
    }

    /// Round 1: per-τ preclustering profiles.
    fn build_profiles(&mut self, msg: &Bytes) -> Bytes {
        let mut r = WireReader::new(msg.clone());
        let d_min = r.get_f64();
        let d_max = r.get_f64();
        self.taus = if d_min.is_finite() && d_min > 0.0 {
            tau_grid(d_min, d_max.max(d_min))
        } else {
            vec![0.0]
        };
        let n = self.data.len();
        let grid = geometric_grid(self.cfg.t, self.cfg.rho.max(1.0 + 1e-9));
        let mut w = WireWriter::new();
        w.put_varint(self.taus.len() as u64);
        if n > 0 {
            self.y = self
                .data
                .collapse(false)
                .into_iter()
                .map(|(y, _)| y)
                .collect();
        }
        for &tau in &self.taus.clone() {
            if n == 0 {
                let profile = ConvexProfile::lower_hull(&[(0, 0.0)]);
                profile.encode(&mut w);
                self.states.push(TauState {
                    order: Vec::new(),
                    profile,
                });
                continue;
            }
            // Node-node matrix under ρ_{6τ}.
            let m6 = MatrixMetric::from_fn(n, |i, j| {
                node_node_dist(
                    &self.data.nodes[i],
                    &self.data.nodes[j],
                    &self.data.ground,
                    self.y[i],
                    self.y[j],
                    6.0 * tau,
                )
            });
            let ids: Vec<usize> = (0..n).collect();
            let prefix = (2 * self.cfg.k + self.cfg.t + 1).min(n);
            let ord = gonzalez_with(&m6, &ids, prefix, 0, self.cfg.threads);
            // Cumulative-radius profile on the geometric grid.
            let t = self.cfg.t;
            let mut cum = vec![0.0f64; t + 1];
            for q in (0..t).rev() {
                let idx = 2 * self.cfg.k + q;
                let marg = if idx < ord.radii.len() {
                    ord.radii[idx]
                } else {
                    0.0
                };
                cum[q] = cum[q + 1] + marg;
            }
            let pts: Vec<(usize, f64)> = grid.iter().map(|&q| (q, cum[q])).collect();
            let profile = ConvexProfile::lower_hull(&pts);
            profile.encode(&mut w);
            self.states.push(TauState {
                order: ord.order,
                profile,
            });
        }
        w.finish()
    }

    /// Round 2: the τ̂ allocation arrived; ship the preclustering.
    fn respond_threshold(&mut self, msg: &Bytes) -> Bytes {
        let mut r = WireReader::new(msg.clone());
        let tau_idx = r.get_varint() as usize;
        let threshold = r.get_f64();
        let i0 = r.get_varint();
        let q0 = r.get_varint();
        let exceptional = r.get_varint() != 0;

        let n = self.data.len();
        let mut w = WireWriter::new();
        let dim = self.data.ground.dim();
        if n == 0 {
            w.put_varint(dim as u64);
            w.put_varint(0); // points
            w.put_varint(0); // nodes
            w.put_varint(0); // t_i
            return w.finish();
        }
        let state = &self.states[tau_idx.min(self.states.len() - 1)];
        let ti = if exceptional {
            state
                .profile
                .next_vertex_at_or_after((q0 as usize).min(self.cfg.t))
        } else {
            let mut ti = 0usize;
            for q in 1..=self.cfg.t {
                let m = state.profile.marginal(q);
                let wins = m > threshold
                    || (m == threshold && (self.site_id as u64, q as u64) <= (i0, q0));
                if wins {
                    ti = q;
                } else {
                    break;
                }
            }
            ti
        };
        let prefix = (2 * self.cfg.k + ti).min(state.order.len());
        let chosen = &state.order[..prefix];
        // Attach every node to its nearest prefix node under ρ_{6τ̂}
        // (recompute distances on demand; O(prefix · n · m²) worst case).
        let tau = self.taus[tau_idx.min(self.taus.len() - 1)];
        let mut weights = vec![0.0f64; prefix];
        for j in 0..n {
            let mut best = (0usize, f64::INFINITY);
            for (pos, &c) in chosen.iter().enumerate() {
                let d = node_node_dist(
                    &self.data.nodes[j],
                    &self.data.nodes[c],
                    &self.data.ground,
                    self.y[j],
                    self.y[c],
                    6.0 * tau,
                );
                if d < best.1 {
                    best = (pos, d);
                }
            }
            weights[best.0] += 1.0;
        }
        // First 2k prefix entries ship as collapsed points (sk·B); the
        // rest (the t_i tentative outliers) ship as full distributions
        // (t·I).
        let cut = (2 * self.cfg.k).min(prefix);
        w.put_varint(dim as u64);
        w.put_varint(cut as u64);
        for (pos, &c) in chosen[..cut].iter().enumerate() {
            w.put_point(self.data.ground.point(self.y[c]));
            w.put_f64(weights[pos]);
        }
        w.put_varint((prefix - cut) as u64);
        for (pos, &c) in chosen[cut..].iter().enumerate() {
            self.data.nodes[c].encode(&self.data.ground, &mut w);
            w.put_f64(weights[cut + pos]);
        }
        w.put_varint(ti as u64);
        w.finish()
    }
}

impl Site for CenterGSite<'_> {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        match round {
            0 => self.report_range(),
            1 => self.build_profiles(msg),
            2 => self.respond_threshold(msg),
            r => panic!("center-g site has no round {r}"),
        }
    }
}

/// A merged entity at the coordinator: a collapsed point or a full node.
enum Entity {
    Point(Vec<f64>),
    Node {
        node: UncertainNode,
        ground: PointSet,
        y: usize,
    },
}

impl Entity {
    /// Representative coordinates (for output centers).
    fn coords(&self) -> Vec<f64> {
        match self {
            Entity::Point(p) => p.clone(),
            Entity::Node { node: _, ground, y } => ground.point(*y).to_vec(),
        }
    }
}

/// Expected distance between two merged entities (τ = 0 at the final
/// solve; the τ̂-preclustering already absorbed the truncation per
/// Lemma 5.11).
fn entity_dist(a: &Entity, b: &Entity) -> f64 {
    match (a, b) {
        (Entity::Point(p), Entity::Point(q)) => dpc_metric::points::sq_dist(p, q).sqrt(),
        (Entity::Point(p), Entity::Node { node, ground, .. })
        | (Entity::Node { node, ground, .. }, Entity::Point(p)) => {
            node.expected_distance(ground, p)
        }
        (
            Entity::Node {
                node: na,
                ground: ga,
                y: ya,
            },
            Entity::Node {
                node: nb,
                ground: gb,
                y: yb,
            },
        ) => {
            let via_a = {
                let u = ga.point(*ya);
                na.expected_distance(ga, u) + nb.expected_distance(gb, u)
            };
            let via_b = {
                let u = gb.point(*yb);
                na.expected_distance(ga, u) + nb.expected_distance(gb, u)
            };
            via_a.min(via_b)
        }
    }
}

/// Coordinator-side state of Algorithm 4.
struct CenterGCoordinator {
    cfg: CenterGConfig,
    dim: usize,
    /// `d_min/18`, fixed when the global range is combined in round 1.
    tau_base: f64,
    result: Option<UncertainSolution>,
}

impl Coordinator for CenterGCoordinator {
    type Output = UncertainSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        // The center-g protocol does not tolerate dropout: the τ grid is
        // aligned across sites, so a missing reply is fatal.
        let replies: Vec<Bytes> = replies
            .into_iter()
            .map(|r| r.expect("center-g protocol does not tolerate site dropout"))
            .collect();
        match round {
            0 => {
                let mut w = WireWriter::new();
                w.put_varint(self.cfg.k as u64);
                w.put_varint(self.cfg.t as u64);
                CoordinatorStep::Broadcast(w.finish())
            }
            1 => {
                // Combine local ranges, broadcast the global one.
                let mut d_min = f64::INFINITY;
                let mut d_max: f64 = 0.0;
                for b in &replies {
                    let mut r = WireReader::new(b.clone());
                    d_min = d_min.min(r.get_f64());
                    d_max = d_max.max(r.get_f64());
                }
                self.tau_base = if d_min.is_finite() && d_min > 0.0 {
                    d_min / 18.0
                } else {
                    1.0
                };
                let mut w = WireWriter::new();
                w.put_f64(d_min);
                w.put_f64(d_max);
                CoordinatorStep::Broadcast(w.finish())
            }
            2 => {
                // Per-τ allocation; pick τ̂ by the Lemma 5.10 rule.
                let per_site: Vec<Vec<ConvexProfile>> = replies
                    .iter()
                    .map(|b| {
                        let mut r = WireReader::new(b.clone());
                        let cnt = r.get_varint() as usize;
                        (0..cnt).map(|_| ConvexProfile::decode(&mut r)).collect()
                    })
                    .collect();
                let n_taus = per_site.iter().map(Vec::len).max().unwrap_or(1);
                let mut chosen: Option<(usize, dpc_core::allocation::Allocation)> = None;
                let mut taus_checked = 0usize;
                for ti in 0..n_taus {
                    let profiles: Vec<ConvexProfile> = per_site
                        .iter()
                        .map(|ps| {
                            ps.get(ti)
                                .cloned()
                                .unwrap_or_else(|| ConvexProfile::lower_hull(&[(0, 0.0)]))
                        })
                        .collect();
                    let alloc = allocate_outliers(&profiles, self.cfg.t, self.cfg.rho);
                    // Cost proxy: the residual max-radius of each site after
                    // ignoring t_i nodes = the next marginal.
                    let total: f64 = profiles
                        .iter()
                        .zip(&alloc.t_i)
                        .map(|(p, &ti)| p.marginal(ti + 1))
                        .sum();
                    let tau = self.tau_value(ti);
                    taus_checked = ti;
                    if total <= 12.0 * tau {
                        chosen = Some((ti, alloc));
                        break;
                    }
                }
                let (tau_idx, alloc) = chosen.unwrap_or_else(|| {
                    // Fallback (always feasible at τ_max per Lemma 5.10).
                    let profiles: Vec<ConvexProfile> = per_site
                        .iter()
                        .map(|ps| {
                            ps.last()
                                .cloned()
                                .unwrap_or_else(|| ConvexProfile::lower_hull(&[(0, 0.0)]))
                        })
                        .collect();
                    (
                        taus_checked,
                        allocate_outliers(&profiles, self.cfg.t, self.cfg.rho),
                    )
                });
                let msgs = (0..replies.len())
                    .map(|i| {
                        let mut w = WireWriter::new();
                        w.put_varint(tau_idx as u64);
                        w.put_f64(alloc.threshold);
                        w.put_varint(alloc.i0 as u64);
                        w.put_varint(alloc.q0 as u64);
                        w.put_varint(u64::from(i == alloc.i0 && self.cfg.t > 0));
                        w.finish()
                    })
                    .collect();
                CoordinatorStep::Messages(msgs)
            }
            3 => {
                self.result = Some(self.solve_final(replies));
                CoordinatorStep::Finish
            }
            r => panic!("center-g coordinator has no round {r}"),
        }
    }

    fn finish(self) -> UncertainSolution {
        self.result.expect("protocol finished")
    }
}

impl CenterGCoordinator {
    /// The τ value for grid index `i` (`2^i · d_min/18`, from the range
    /// combined in round 1).
    fn tau_value(&self, i: usize) -> f64 {
        self.tau_base * (2.0f64).powi(i as i32)
    }

    fn solve_final(&mut self, replies: Vec<Bytes>) -> UncertainSolution {
        let mut entities: Vec<Entity> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut shipped = 0u64;
        let mut dim = self.dim;
        for b in replies {
            let mut r = WireReader::new(b);
            let d = r.get_varint() as usize;
            if d > 0 {
                dim = d;
            }
            let npts = r.get_varint() as usize;
            for _ in 0..npts {
                let p = r.get_point(dim);
                entities.push(Entity::Point(p));
                weights.push(r.get_f64());
            }
            let nnodes = r.get_varint() as usize;
            for _ in 0..nnodes {
                let mut ground = PointSet::new(dim);
                let node = UncertainNode::decode(&mut ground, &mut r);
                let (y, _) = node.one_median(&ground);
                entities.push(Entity::Node { node, ground, y });
                weights.push(r.get_f64());
            }
            shipped += r.get_varint();
        }
        if entities.is_empty() {
            return UncertainSolution {
                centers: PointSet::new(dim.max(1)),
                coordinator_cost: 0.0,
                excluded_weight: 0.0,
                shipped_outliers: 0,
            };
        }
        let n = entities.len();
        let metric = MatrixMetric::from_fn(n, |i, j| entity_dist(&entities[i], &entities[j]));
        let weighted = WeightedSet::from_parts((0..n).collect(), weights);
        let sol = charikar_center(
            &metric,
            &weighted,
            self.cfg.k,
            self.cfg.t as f64,
            CenterParams {
                threads: self.cfg.threads,
                ..self.cfg.charikar
            },
        );
        let mut centers = PointSet::new(dim);
        for &c in &sol.centers {
            centers.push(&entities[c].coords());
        }
        UncertainSolution {
            centers,
            coordinator_cost: sol.cost,
            excluded_weight: sol.outlier_weight(),
            shipped_outliers: shipped,
        }
    }
}

/// Runs Algorithm 4 over the node shards.
pub fn run_center_g(
    shards: &[NodeSet],
    cfg: CenterGConfig,
    options: RunOptions,
) -> ProtocolOutput<UncertainSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    let dim = shards[0].ground.dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .enumerate()
        .map(|(i, ns)| Box::new(CenterGSite::new(ns, i, cfg)) as Box<dyn Site + '_>)
        .collect();
    let coordinator = CenterGCoordinator {
        cfg,
        dim,
        tau_base: 1.0,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::estimate_center_g_cost;
    use crate::node::UncertainNode;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn shards(seed: u64) -> Vec<NodeSet> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for site in 0..2 {
            let center = site as f64 * 60.0;
            let mut ground = PointSet::new(2);
            let mut nodes = Vec::new();
            for _ in 0..8 {
                let mut support = Vec::new();
                for _ in 0..2 {
                    let p =
                        ground.push(&[center + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
                    support.push(p);
                }
                nodes.push(UncertainNode::new(support, vec![0.5, 0.5]));
            }
            if site == 0 {
                let a = ground.push(&[4e3, -4e3]);
                let b = ground.push(&[4e3, -4.1e3]);
                nodes.push(UncertainNode::new(vec![a, b], vec![0.5, 0.5]));
            }
            out.push(NodeSet { ground, nodes });
        }
        out
    }

    #[test]
    fn center_g_recovers_clusters() {
        let sh = shards(13);
        let cfg = CenterGConfig::new(2, 1);
        let out = run_center_g(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        // Monte-Carlo E[max] with the noise node excluded must be O(cluster
        // jitter), far below the 4e3 of paying for the noise node.
        let g = estimate_center_g_cost(&sh, &out.output.centers, 1, 500, 7);
        assert!(g < 60.0, "E[max] estimate {g}");
        assert_eq!(out.stats.num_rounds(), 3);
    }

    #[test]
    fn comm_includes_full_distributions_for_outliers() {
        let sh = shards(17);
        let cfg = CenterGConfig::new(2, 1);
        let out = run_center_g(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        // The final round must be heavier than points alone: t·I term.
        let last = out.stats.rounds.last().unwrap();
        let upstream: usize = last.sites_to_coordinator.iter().sum();
        assert!(upstream > 0);
    }

    #[test]
    fn single_site_degenerate() {
        let sh = vec![shards(19).remove(0)];
        let cfg = CenterGConfig::new(1, 1);
        let out = run_center_g(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let g = estimate_center_g_cost(&sh, &out.output.centers, 1, 300, 23);
        assert!(g < 60.0, "E[max] {g}");
    }
}

// ---------------------------------------------------------------------------
// 1-round variant (Table 2, last row): O(s(kB + tI)·log Δ) communication.
// ---------------------------------------------------------------------------

/// Site for the 1-round center-g protocol: with the global distance range
/// known a priori (the assumption that removes the range round — e.g.
/// sensor-range limits), each site ships, for *every* `τ ∈ T`, its full
/// `t`-hedged preclustering: `2k` collapsed points, `t` full outlier
/// distributions, and the residual-radius cost scalar the coordinator's
/// `Σ ≤ 12τ` rule needs. One round, `O(s(kB + tI)·log Δ)` bytes.
struct OneRoundCenterGSite<'a> {
    data: &'a NodeSet,
    cfg: CenterGConfig,
    d_min: f64,
    d_max: f64,
}

impl OneRoundCenterGSite<'_> {
    fn ship_all_taus(&mut self) -> Bytes {
        let n = self.data.len();
        let taus = if self.d_min > 0.0 && self.d_min.is_finite() {
            tau_grid(self.d_min, self.d_max.max(self.d_min))
        } else {
            vec![0.0]
        };
        let dim = self.data.ground.dim();
        let mut w = WireWriter::new();
        w.put_varint(dim as u64);
        w.put_varint(taus.len() as u64);
        if n == 0 {
            for _ in &taus {
                w.put_f64(0.0); // residual cost
                w.put_varint(0); // points
                w.put_varint(0); // nodes
            }
            return w.finish();
        }
        let y: Vec<usize> = self
            .data
            .collapse(false)
            .into_iter()
            .map(|(y, _)| y)
            .collect();
        for &tau in &taus {
            let m6 = MatrixMetric::from_fn(n, |i, j| {
                node_node_dist(
                    &self.data.nodes[i],
                    &self.data.nodes[j],
                    &self.data.ground,
                    y[i],
                    y[j],
                    6.0 * tau,
                )
            });
            let ids: Vec<usize> = (0..n).collect();
            let prefix_len = (2 * self.cfg.k + self.cfg.t).min(n);
            let ord = gonzalez_with(&m6, &ids, prefix_len + 1, 0, self.cfg.threads);
            // Residual cost proxy: the next insertion radius.
            let residual = if prefix_len < ord.radii.len() {
                ord.radii[prefix_len]
            } else {
                0.0
            };
            let chosen = &ord.order[..prefix_len.min(ord.order.len())];
            // Reassign against the prefix only (gonzalez ran one selection
            // further to expose the residual radius).
            let mut weights = vec![0.0f64; chosen.len()];
            for j in 0..n {
                let (pos, _) = m6.nearest(j, chosen).expect("non-empty prefix");
                weights[pos] += 1.0;
            }
            let cut = (2 * self.cfg.k).min(chosen.len());
            w.put_f64(residual);
            w.put_varint(cut as u64);
            for (pos, &c) in chosen[..cut].iter().enumerate() {
                w.put_point(self.data.ground.point(y[c]));
                w.put_f64(weights[pos]);
            }
            w.put_varint((chosen.len() - cut) as u64);
            for (pos, &c) in chosen[cut..].iter().enumerate() {
                self.data.nodes[c].encode(&self.data.ground, &mut w);
                w.put_f64(weights[cut + pos]);
            }
        }
        w.finish()
    }
}

impl Site for OneRoundCenterGSite<'_> {
    fn handle(&mut self, round: usize, _msg: &Bytes) -> Bytes {
        assert_eq!(round, 0, "one-round site called twice");
        self.ship_all_taus()
    }
}

/// Coordinator for the 1-round center-g protocol.
struct OneRoundCenterGCoordinator {
    cfg: CenterGConfig,
    dim: usize,
    tau_base: f64,
    result: Option<UncertainSolution>,
}

/// One site's per-τ shipment, decoded.
struct TauShipment {
    residual: f64,
    entities: Vec<Entity>,
    weights: Vec<f64>,
}

impl Coordinator for OneRoundCenterGCoordinator {
    type Output = UncertainSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        let replies: Vec<Bytes> = replies
            .into_iter()
            .map(|r| r.expect("one-round center-g protocol does not tolerate site dropout"))
            .collect();
        match round {
            0 => CoordinatorStep::Broadcast(Bytes::new()),
            1 => {
                // Decode: per site, per τ, the shipment.
                let mut per_site: Vec<Vec<TauShipment>> = Vec::with_capacity(replies.len());
                let mut dim = self.dim;
                for b in replies {
                    let mut r = WireReader::new(b);
                    let d = r.get_varint() as usize;
                    if d > 0 {
                        dim = d;
                    }
                    let ntaus = r.get_varint() as usize;
                    let mut ships = Vec::with_capacity(ntaus);
                    for _ in 0..ntaus {
                        let residual = r.get_f64();
                        let mut entities = Vec::new();
                        let mut weights = Vec::new();
                        let npts = r.get_varint() as usize;
                        for _ in 0..npts {
                            entities.push(Entity::Point(r.get_point(dim)));
                            weights.push(r.get_f64());
                        }
                        let nnodes = r.get_varint() as usize;
                        for _ in 0..nnodes {
                            let mut ground = PointSet::new(dim);
                            let node = UncertainNode::decode(&mut ground, &mut r);
                            let (yc, _) = node.one_median(&ground);
                            entities.push(Entity::Node {
                                node,
                                ground,
                                y: yc,
                            });
                            weights.push(r.get_f64());
                        }
                        ships.push(TauShipment {
                            residual,
                            entities,
                            weights,
                        });
                    }
                    per_site.push(ships);
                }
                // τ̂ rule: smallest τ with Σ residual ≤ 12τ.
                let n_taus = per_site.iter().map(Vec::len).max().unwrap_or(1);
                let mut tau_idx = n_taus.saturating_sub(1);
                for ti in 0..n_taus {
                    let total: f64 = per_site
                        .iter()
                        .map(|s| s.get(ti).map_or(0.0, |x| x.residual))
                        .sum();
                    let tau = self.tau_base * (2.0f64).powi(ti as i32);
                    if total <= 12.0 * tau {
                        tau_idx = ti;
                        break;
                    }
                }
                // Merge the τ̂ shipments and solve with exactly t outliers.
                let mut entities: Vec<Entity> = Vec::new();
                let mut weights: Vec<f64> = Vec::new();
                for ships in &mut per_site {
                    if ships.is_empty() {
                        continue;
                    }
                    let idx = tau_idx.min(ships.len() - 1);
                    let s = &mut ships[idx];
                    entities.append(&mut s.entities);
                    weights.append(&mut s.weights);
                }
                let result = if entities.is_empty() {
                    UncertainSolution {
                        centers: PointSet::new(dim.max(1)),
                        coordinator_cost: 0.0,
                        excluded_weight: 0.0,
                        shipped_outliers: 0,
                    }
                } else {
                    let n = entities.len();
                    let metric =
                        MatrixMetric::from_fn(n, |i, j| entity_dist(&entities[i], &entities[j]));
                    let weighted = WeightedSet::from_parts((0..n).collect(), weights);
                    let sol = charikar_center(
                        &metric,
                        &weighted,
                        self.cfg.k,
                        self.cfg.t as f64,
                        CenterParams {
                            threads: self.cfg.threads,
                            ..self.cfg.charikar
                        },
                    );
                    let mut centers = PointSet::new(dim);
                    for &c in &sol.centers {
                        centers.push(&entities[c].coords());
                    }
                    UncertainSolution {
                        centers,
                        coordinator_cost: sol.cost,
                        excluded_weight: sol.outlier_weight(),
                        shipped_outliers: (self.cfg.t * per_site.len()) as u64,
                    }
                };
                self.result = Some(result);
                CoordinatorStep::Finish
            }
            r => panic!("one-round center-g coordinator has no round {r}"),
        }
    }

    fn finish(self) -> UncertainSolution {
        self.result.expect("protocol finished")
    }
}

/// Runs the 1-round center-g protocol (Table 2, last row). The global
/// distance range `(d_min, d_max)` must be known a priori — that is the
/// assumption that removes the extra rounds; obtain it from
/// [`crate::truncated::distance_range`] over the ground sets if needed
/// (at the cost of a round, which is what [`run_center_g`] does).
pub fn run_center_g_one_round(
    shards: &[NodeSet],
    cfg: CenterGConfig,
    d_min: f64,
    d_max: f64,
    options: RunOptions,
) -> ProtocolOutput<UncertainSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    let dim = shards[0].ground.dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .map(|ns| {
            Box::new(OneRoundCenterGSite {
                data: ns,
                cfg,
                d_min,
                d_max,
            }) as Box<dyn Site + '_>
        })
        .collect();
    let tau_base = if d_min > 0.0 && d_min.is_finite() {
        d_min / 18.0
    } else {
        1.0
    };
    let coordinator = OneRoundCenterGCoordinator {
        cfg,
        dim,
        tau_base,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

#[cfg(test)]
mod one_round_tests {
    use super::*;
    use crate::monte_carlo::estimate_center_g_cost;
    use crate::node::UncertainNode;
    use crate::truncated::distance_range;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn shards(seed: u64) -> Vec<NodeSet> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for site in 0..3 {
            let center = site as f64 * 70.0;
            let mut ground = PointSet::new(2);
            let mut nodes = Vec::new();
            for _ in 0..7 {
                let a = ground.push(&[center + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
                let b = ground.push(&[center + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
                nodes.push(UncertainNode::new(vec![a, b], vec![0.5, 0.5]));
            }
            if site == 2 {
                let a = ground.push(&[5e3, 5e3]);
                let b = ground.push(&[5e3, 5.1e3]);
                nodes.push(UncertainNode::new(vec![a, b], vec![0.5, 0.5]));
            }
            out.push(NodeSet { ground, nodes });
        }
        out
    }

    fn global_range(shards: &[NodeSet]) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for s in shards {
            if let Some((a, b)) = distance_range(&s.ground) {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        (lo, hi)
    }

    #[test]
    fn one_round_center_g_quality() {
        let sh = shards(71);
        let (lo, hi) = global_range(&sh);
        let out = run_center_g_one_round(
            &sh,
            CenterGConfig::new(3, 1),
            lo,
            hi,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(out.stats.num_rounds(), 1);
        let g = estimate_center_g_cost(&sh, &out.output.centers, 1, 400, 5);
        assert!(g < 70.0, "E[max] {g}");
    }

    #[test]
    fn one_round_ships_more_than_multi_round() {
        // The tau sweep is shipped in full: bytes carry the log Delta
        // factor relative to the adaptive 3-round protocol's final round.
        let sh = shards(73);
        let (lo, hi) = global_range(&sh);
        let cfg = CenterGConfig::new(2, 1);
        let one = run_center_g_one_round(
            &sh,
            cfg,
            lo,
            hi,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let multi = run_center_g(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(
            one.stats.upstream_bytes() > multi.stats.upstream_bytes(),
            "1-round {}B should exceed adaptive {}B",
            one.stats.upstream_bytes(),
            multi.stats.upstream_bytes()
        );
    }

    #[test]
    fn one_round_empty_site() {
        let mut sh = shards(79);
        sh.push(NodeSet::new(2));
        let (lo, hi) = global_range(&sh);
        let out = run_center_g_one_round(
            &sh,
            CenterGConfig::new(2, 1),
            lo,
            hi,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(out.output.centers.len() <= 2);
    }
}
