//! Property-based tests of the uncertain-data machinery.

use dpc_metric::{Metric, PointSet};
use dpc_uncertain::*;
use proptest::prelude::*;

fn arb_nodeset(max_nodes: usize) -> impl Strategy<Value = NodeSet> {
    let node = (
        proptest::collection::vec(proptest::collection::vec(-1e3f64..1e3, 2..=2), 1..4usize),
        proptest::collection::vec(0.05f64..1.0, 1..4usize),
    );
    proptest::collection::vec(node, 2..max_nodes).prop_map(|raw| {
        let mut ground = PointSet::new(2);
        let mut nodes = Vec::new();
        for (coords, weights) in raw {
            let m = coords.len().min(weights.len());
            let support: Vec<usize> = coords[..m].iter().map(|c| ground.push(c)).collect();
            let total: f64 = weights[..m].iter().sum();
            let mut probs: Vec<f64> = weights[..m].iter().map(|w| w / total).collect();
            let sum: f64 = probs.iter().sum();
            probs[0] += 1.0 - sum;
            nodes.push(UncertainNode::new(support, probs));
        }
        NodeSet { ground, nodes }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn one_median_minimizes_over_support(ns in arb_nodeset(8)) {
        for node in &ns.nodes {
            let (y, ell) = node.one_median(&ns.ground);
            prop_assert!(node.support.contains(&y));
            for &s in &node.support {
                let alt = node.expected_distance(&ns.ground, ns.ground.point(s));
                prop_assert!(ell <= alt + 1e-9);
            }
        }
    }

    #[test]
    fn expected_distance_respects_triangle_via_y(ns in arb_nodeset(6)) {
        // d-hat(j, u) <= ell_j + d(y_j, u): the collapse inequality used
        // throughout Section 5.
        for node in &ns.nodes {
            let (y, ell) = node.one_median(&ns.ground);
            for g in 0..ns.ground.len() {
                let u = ns.ground.point(g);
                let dhat = node.expected_distance(&ns.ground, u);
                let via = ell + ns.ground.sq_dist_to(y, u).sqrt();
                prop_assert!(dhat <= via + 1e-6);
                // and the reverse direction within 2x (y is the 1-median):
                prop_assert!(via <= 2.0 * dhat + ell + 1e-6);
            }
        }
    }

    #[test]
    fn compressed_graph_is_a_metric(ns in arb_nodeset(6)) {
        let (g, _) = CompressedGraph::from_nodes(&ns, false);
        let n = g.len();
        for a in 0..n {
            prop_assert_eq!(g.dist(a, a), 0.0);
            for b in 0..n {
                prop_assert!((g.dist(a, b) - g.dist(b, a)).abs() < 1e-9);
                for c in 0..n {
                    prop_assert!(g.dist(a, c) <= g.dist(a, b) + g.dist(b, c) + 1e-6);
                }
            }
        }
    }

    #[test]
    fn truncation_monotone_in_tau(ns in arb_nodeset(5), tau in 0.0f64..50.0) {
        for node in &ns.nodes {
            for gpt in 0..ns.ground.len() {
                let u = ns.ground.point(gpt);
                let a = truncated_expected_distance(node, &ns.ground, u, tau);
                let b = truncated_expected_distance(node, &ns.ground, u, tau + 1.0);
                prop_assert!(b <= a + 1e-9, "rho_tau must decrease in tau");
                prop_assert!(a <= node.expected_distance(&ns.ground, u) + 1e-9);
                // 1-Lipschitz in tau:
                prop_assert!(a - b <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn node_encode_decode(ns in arb_nodeset(5)) {
        use dpc_metric::{WireReader, WireWriter};
        for node in &ns.nodes {
            let mut w = WireWriter::new();
            node.encode(&ns.ground, &mut w);
            prop_assert_eq!(w.len(), node.wire_bytes(2));
            let mut ground2 = PointSet::new(2);
            let mut r = WireReader::new(w.finish());
            let back = UncertainNode::decode(&mut ground2, &mut r);
            prop_assert_eq!(&back.probs, &node.probs);
            for (i, &s) in back.support.iter().enumerate() {
                prop_assert_eq!(ground2.point(s), ns.ground.point(node.support[i]));
            }
        }
    }

    #[test]
    fn sampling_stays_in_support(ns in arb_nodeset(5), seed in 0u64..16) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        for node in &ns.nodes {
            for _ in 0..16 {
                let s = node.sample(&mut rng);
                prop_assert!(node.support.contains(&s));
            }
        }
    }
}
