//! The truncated distance `L_τ` of Definition 5.7.
//!
//! `L_τ(x,y) = max{d(x,y) − τ, 0}`. For `τ > 0` this is *not* a metric, but
//! it satisfies the weak triangle inequality
//! `L_τ(u₁,u₂) + L_τ(u₂,u₃) ≥ L_{2τ}(u₁,u₃)` that Lemma 5.12 relies on, and
//! the hop-scaling `ρ_{3τ}(j,m) ≤ ρ_τ(j,m') + ρ_τ(i,m') + ρ_τ(i,m)` used in
//! Lemma 5.9. Algorithm 4 performs a parametric search over `τ` on this
//! family.

use crate::metric::Metric;

/// Wraps a metric with the truncation `max{d − τ, 0}`.
#[derive(Clone, Copy, Debug)]
pub struct TruncatedMetric<M> {
    inner: M,
    tau: f64,
}

impl<M: Metric> TruncatedMetric<M> {
    /// Builds `L_τ` over `inner`.
    ///
    /// # Panics
    /// Panics if `tau` is negative or not finite.
    pub fn new(inner: M, tau: f64) -> Self {
        assert!(
            tau.is_finite() && tau >= 0.0,
            "tau must be finite and non-negative"
        );
        Self { inner, tau }
    }

    /// The truncation threshold τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

/// Scalar form of the truncation, usable without a wrapper.
#[inline]
pub fn truncate(d: f64, tau: f64) -> f64 {
    (d - tau).max(0.0)
}

impl<M: Metric> Metric for TruncatedMetric<M> {
    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        truncate(self.inner.dist(i, j), self.tau)
    }

    fn dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        // Ride the inner metric's bulk kernel, truncating in place.
        self.inner.dist_to_many_into(i, js, out);
        for o in out.iter_mut() {
            *o = truncate(*o, self.tau);
        }
    }

    fn assign_block(&self, ids: &[usize], centers: &[usize], pos: &mut [usize], dist: &mut [f64]) {
        // Truncation is monotone but NOT injective: every candidate
        // within τ collapses to distance 0, and the scalar rule keeps the
        // *first* such candidate. Delegating the arg-min to the inner
        // metric would pick the inner-nearest instead, so compute inner
        // distances in bulk and run the scalar scan on truncated values.
        let mut scratch = vec![0.0f64; centers.len()];
        for ((p, d), &i) in pos.iter_mut().zip(dist.iter_mut()).zip(ids) {
            self.inner.dist_to_many_into(i, centers, &mut scratch);
            let (mut bp, mut bd) = (0usize, f64::INFINITY);
            for (c, &raw) in scratch.iter().enumerate() {
                let t = truncate(raw, self.tau);
                if t < bd {
                    bd = t;
                    bp = c;
                }
            }
            *p = bp;
            *d = bd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{EuclideanMetric, MatrixMetric};
    use crate::points::PointSet;

    #[test]
    fn truncation_clamps_at_zero() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
        let m = TruncatedMetric::new(EuclideanMetric::new(&ps), 2.0);
        assert_eq!(m.dist(0, 1), 0.0); // 1 - 2 clamps
        assert_eq!(m.dist(0, 2), 8.0); // 10 - 2
        assert_eq!(m.len(), 3);
        assert_eq!(m.tau(), 2.0);
    }

    #[test]
    fn tau_zero_is_identity() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![3.0]]);
        let e = EuclideanMetric::new(&ps);
        let m = TruncatedMetric::new(e, 0.0);
        assert_eq!(m.dist(0, 1), e.dist(0, 1));
    }

    #[test]
    fn weak_triangle_inequality() {
        // L_tau(u1,u2) + L_tau(u2,u3) >= L_{2tau}(u1,u3) (used by Lemma 5.12).
        let m = MatrixMetric::from_fn(3, |i, j| ((i as f64) - (j as f64)).abs() * 4.0);
        for tau in [0.0, 0.5, 1.0, 3.0, 10.0] {
            let lt = TruncatedMetric::new(&m, tau);
            let l2t = TruncatedMetric::new(&m, 2.0 * tau);
            assert!(
                lt.dist(0, 1) + lt.dist(1, 2) + 1e-12 >= l2t.dist(0, 2),
                "violated at tau={tau}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_tau() {
        let ps = PointSet::from_rows(&[vec![0.0]]);
        let _ = TruncatedMetric::new(EuclideanMetric::new(&ps), -1.0);
    }
}
