//! Dense point storage.
//!
//! Points live in `R^d` and are stored in a single flat `Vec<f64>` in
//! row-major order, which keeps distance evaluation cache-friendly (the
//! innermost loop of every algorithm in this workspace is a scan over one or
//! two rows of this buffer).

use serde::{Deserialize, Serialize};

/// Index of a point inside a [`PointSet`].
///
/// Kept as a plain `usize` alias (rather than a newtype) because point ids
/// are used as raw indices in hot loops throughout the workspace.
pub type PointId = usize;

/// A set of `n` points in `R^dim`, stored flat and row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointSet {
    dim: usize,
    data: Vec<f64>,
}

impl PointSet {
    /// Creates an empty point set of the given dimension.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "PointSet dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty point set with capacity for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "PointSet dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a point set from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "PointSet dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Builds a point set from explicit rows.
    ///
    /// # Panics
    /// Panics if rows disagree on dimension.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let dim = rows[0].len();
        let mut ps = Self::with_capacity(dim, rows.len());
        for r in rows {
            ps.push(r);
        }
        ps
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: PointId) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point, returning its id.
    ///
    /// # Panics
    /// Panics if `coords.len() != dim`.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.dim, "coordinate dimension mismatch");
        let id = self.len();
        self.data.extend_from_slice(coords);
        id
    }

    /// Appends all points of `other`, returning the id offset at which they
    /// were inserted (point `j` of `other` becomes `offset + j` here).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn extend_from(&mut self, other: &PointSet) -> PointId {
        assert_eq!(self.dim, other.dim, "dimension mismatch in extend_from");
        let offset = self.len();
        self.data.extend_from_slice(&other.data);
        offset
    }

    /// Builds a new point set containing the given points, in order.
    pub fn subset(&self, ids: &[PointId]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dim, ids.len());
        for &i in ids {
            out.push(self.point(i));
        }
        out
    }

    /// Iterator over `(id, coords)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.data.chunks_exact(self.dim).enumerate()
    }

    /// Raw flat buffer (row-major).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Squared Euclidean distance between points `i` and `j`.
    #[inline]
    pub fn sq_dist(&self, i: PointId, j: PointId) -> f64 {
        sq_dist(self.point(i), self.point(j))
    }

    /// Euclidean distance between points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.sq_dist(i, j).sqrt()
    }

    /// Squared Euclidean distance between point `i` and an arbitrary
    /// coordinate vector.
    #[inline]
    pub fn sq_dist_to(&self, i: PointId, coords: &[f64]) -> f64 {
        sq_dist(self.point(i), coords)
    }

    /// Coordinate-wise mean of the given points with the given non-negative
    /// weights (the weighted 1-mean in Euclidean space).
    ///
    /// Returns `None` when the total weight is zero or `ids` is empty.
    pub fn weighted_centroid(&self, ids: &[PointId], weights: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(ids.len(), weights.len());
        let total: f64 = weights.iter().sum();
        if ids.is_empty() || total <= 0.0 {
            return None;
        }
        let mut acc = vec![0.0; self.dim];
        for (&i, &w) in ids.iter().zip(weights) {
            for (a, &c) in acc.iter_mut().zip(self.point(i)) {
                *a += w * c;
            }
        }
        for a in &mut acc {
            *a /= total;
        }
        Some(acc)
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// # Panics
/// Debug-asserts equal lengths; in release mismatched lengths silently use
/// the shorter prefix, so callers must uphold the contract.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut ps = PointSet::new(2);
        assert!(ps.is_empty());
        let a = ps.push(&[0.0, 0.0]);
        let b = ps.push(&[3.0, 4.0]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
        assert_eq!(ps.dist(a, b), 5.0);
        assert_eq!(ps.sq_dist(a, b), 25.0);
    }

    #[test]
    fn from_rows_and_subset() {
        let ps = PointSet::from_rows(&[vec![1.0], vec![2.0], vec![4.0]]);
        assert_eq!(ps.len(), 3);
        let sub = ps.subset(&[2, 0]);
        assert_eq!(sub.point(0), &[4.0]);
        assert_eq!(sub.point(1), &[1.0]);
    }

    #[test]
    fn extend_from_offsets() {
        let mut a = PointSet::from_rows(&[vec![0.0, 0.0]]);
        let b = PointSet::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let off = a.extend_from(&b);
        assert_eq!(off, 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.point(2), &[2.0, 2.0]);
    }

    #[test]
    fn weighted_centroid_basic() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0]]);
        let c = ps.weighted_centroid(&[0, 1], &[1.0, 1.0]).unwrap();
        assert_eq!(c, vec![1.0, 1.0]);
        let c = ps.weighted_centroid(&[0, 1], &[3.0, 1.0]).unwrap();
        assert_eq!(c, vec![0.5, 0.5]);
        assert!(ps.weighted_centroid(&[], &[]).is_none());
        assert!(ps.weighted_centroid(&[0], &[0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_flat_rejects_ragged() {
        let _ = PointSet::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dim() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0]);
    }

    #[test]
    fn iter_matches_point() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let collected: Vec<_> = ps.iter().map(|(i, p)| (i, p.to_vec())).collect();
        assert_eq!(collected, vec![(0, vec![1.0, 2.0]), (1, vec![3.0, 4.0])]);
    }
}
