//! Weighted point sets.
//!
//! Preclustering replaces each local cluster with its center, weighted by the
//! number of attached points (Theorem 2.1). The coordinator then solves a
//! *weighted* `(k,t)` problem where excluding an outlier removes *units of
//! weight* — and, per Remark 1 of the paper, the coordinator may exclude
//! fewer copies of an aggregated point than its full weight.

use crate::points::PointId;

/// A multiset of points: parallel arrays of ids (into some [`crate::PointSet`]
/// or [`crate::Metric`] index space) and non-negative weights.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedSet {
    ids: Vec<PointId>,
    weights: Vec<f64>,
}

impl WeightedSet {
    /// Empty set.
    pub fn new() -> Self {
        Self {
            ids: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Builds from parallel arrays.
    ///
    /// # Panics
    /// Panics on length mismatch or a negative/non-finite weight.
    pub fn from_parts(ids: Vec<PointId>, weights: Vec<f64>) -> Self {
        assert_eq!(ids.len(), weights.len(), "ids/weights length mismatch");
        for &w in &weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
        }
        Self { ids, weights }
    }

    /// Uniform unit weights over `0..n`.
    pub fn unit(n: usize) -> Self {
        Self {
            ids: (0..n).collect(),
            weights: vec![1.0; n],
        }
    }

    /// Adds a weighted point.
    pub fn push(&mut self, id: PointId, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative"
        );
        self.ids.push(id);
        self.weights.push(weight);
    }

    /// Number of (distinct) entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total weight (multiset cardinality).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The id array.
    pub fn ids(&self) -> &[PointId] {
        &self.ids
    }

    /// The weight array.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Iterator over `(id, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, f64)> + '_ {
        self.ids.iter().copied().zip(self.weights.iter().copied())
    }
}

impl Default for WeightedSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weights() {
        let w = WeightedSet::unit(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_weight(), 3.0);
        assert_eq!(w.ids(), &[0, 1, 2]);
    }

    #[test]
    fn push_and_iter() {
        let mut w = WeightedSet::new();
        assert!(w.is_empty());
        w.push(7, 2.5);
        w.push(3, 0.0);
        assert_eq!(w.total_weight(), 2.5);
        let v: Vec<_> = w.iter().collect();
        assert_eq!(v, vec![(7, 2.5), (3, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let mut w = WeightedSet::new();
        w.push(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_parts() {
        let _ = WeightedSet::from_parts(vec![1, 2], vec![1.0]);
    }
}
