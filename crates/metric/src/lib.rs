//! Metric substrate for distributed partial clustering.
//!
//! This crate provides the geometric and metric primitives every other crate
//! builds on:
//!
//! * [`PointSet`] — a dense, flat collection of points in `R^d`;
//! * [`Metric`] — the distance-oracle abstraction used by all clustering
//!   algorithms (the paper's `d(·,·)`), with Euclidean, squared-Euclidean
//!   (for `(k,t)`-means), matrix-backed and truncated (`L_τ`) implementations;
//! * [`weighted`] — weighted point sets produced by preclustering (a center
//!   standing in for the points attached to it);
//! * [`cost`] — outlier-aware cost evaluation for the three objectives
//!   (median / means / center), the paper's `C_sol(Z, k, t, d)`;
//! * [`encode`] — the compact wire encoding used to charge *actual bytes* to
//!   every message in the coordinator model (the paper's `B`);
//! * [`kernel`] — the bulk distance layer: blocked nearest-center kernels
//!   ([`NearestAssigner`], [`CenterBlock`], [`BoundedAssigner`]) and the
//!   [`ThreadBudget`] that caps intra-kernel parallelism so it composes
//!   with sweep- and site-level threading instead of oversubscribing;
//! * [`layout`] — cache-aware scan-order permutations (Morton/Z-order)
//!   that group spatially close queries into adjacent slots before a
//!   blocked scan, with results scattered back to original positions.
//!
//! # The kernel layer (v2)
//!
//! Every solver's hot path is "distances from one point to many
//! candidates". The [`Metric`] trait therefore carries bulk hooks
//! ([`Metric::dist_to_many`], [`Metric::assign_block`], …) next to the
//! one-pair [`Metric::dist`]; concrete metrics override them with blocked
//! kernels ([`EuclideanMetric`] uses `‖x‖² + ‖c‖² − 2x·c` with precomputed
//! squared norms and exact winner resolution). Three v2 mechanisms sit
//! behind those hooks, each engaging only where it wins:
//!
//! * **GEMM-style tiles** — low dimensions with enough candidates run a
//!   register-blocked micro-kernel: queries transposed into lane-major
//!   tiles of [`kernel::TILE_Q`], dot-form scores accumulated with
//!   `chunks_exact` so LLVM autovectorizes, and every winner re-resolved
//!   through the canonical scalar sum (an absolute error envelope on the
//!   approximate scores decides which candidates can be skipped safely).
//! * **Triangle-inequality bounds** — iterative callers (Lloyd) hold a
//!   [`BoundedAssigner`] whose per-query lower bounds shrink by center
//!   drift each round, so most queries pay one exact distance instead of
//!   `k` after the first iteration; skips fire only on margin-separated
//!   strict domination, never on ties.
//! * **Z-order layout** — [`BoundedAssigner`] gathers its queries into a
//!   Morton-sorted contiguous buffer ([`layout::zorder_permutation`]), so
//!   neighbouring scan slots prune against similar centers; centers are
//!   never reordered (their positions feed the tie-break).
//!
//! The contract is strict and unchanged by all three:
//! bulk results — selected ids, tie-breaks, and distance values — equal
//! the scalar loop's bit for bit ([`SquaredMetric`]'s squared routing is
//! the one documented ~1-ulp exception), so protocol transcripts stay
//! byte-identical no matter which form runs, at any thread budget.
//!
//! The paper's Definition 1.1 (`(k,t)`-median/means/center) is expressed here
//! as: choose `k` center indices and discard up to `t` units of weight so the
//! remaining assignment cost is minimized. Everything in this crate is
//! deterministic and allocation-conscious; distance evaluation is the hot
//! path of the whole workspace.

pub mod cost;
pub mod encode;
pub mod kernel;
pub mod layout;
pub mod metric;
pub mod points;
pub mod truncated;
pub mod weighted;

pub use cost::{
    center_cost, cost_excluding_outliers, cost_excluding_outliers_with, means_cost, median_cost,
    Objective,
};
pub use encode::{WireReader, WireWriter};
pub use kernel::{
    sq_dists_to_coords, Assignment, Assignment2, Assignment2C, BoundedAssigner, CenterBlock,
    NearestAssigner, ThreadBudget,
};
pub use layout::zorder_permutation;
pub use metric::{CrossMetric, EuclideanMetric, MatrixMetric, Metric, SquaredMetric};
pub use points::{PointId, PointSet};
pub use truncated::TruncatedMetric;
pub use weighted::WeightedSet;
