//! Cache-aware scan-order layout: Morton/Z-order permutations.
//!
//! Blocked kernels walk their query list in whatever order the caller
//! supplies; when neighbouring queries are far apart in space, the
//! screened scans take wildly different branch paths and the gathered
//! row buffer has no reuse structure. A Morton (Z-order) sort groups
//! spatially close points into adjacent scan slots, so consecutive
//! queries tend to prune against the same centers with similar bounds.
//!
//! The permutation reorders **only the scan order of the queries** —
//! each query's result depends on nothing but its own coordinates and
//! the (untouched) center list, so scattering results back to original
//! slots reproduces the unpermuted output bit-for-bit. Centers are never
//! reordered: their positions feed the `(sq, pos)` lex tie-break.

use crate::points::PointSet;

/// Coordinates interleaved into one Morton key. Past this many
/// dimensions extra axes add nothing to locality (keys would get under
/// 8 bits per axis), so only the leading axes are encoded.
const MORTON_MAX_DIMS: usize = 8;

/// Bits of the quantized value actually interleaved per axis.
fn bits_per_axis(d_used: usize) -> u32 {
    ((64 / d_used) as u32).min(16)
}

/// Z-order permutation of `ids`: `perm[s]` is the entry index (into
/// `ids`) scanned at slot `s`. Deterministic — keys tie-break on entry
/// index — and always a valid permutation of `0..ids.len()`, including
/// degenerate inputs (constant axes, single point, dim 0).
pub fn zorder_permutation(points: &PointSet, ids: &[usize]) -> Vec<usize> {
    let n = ids.len();
    let dim = points.dim();
    let mut perm: Vec<usize> = (0..n).collect();
    if n < 2 || dim == 0 {
        return perm;
    }
    let d_used = dim.min(MORTON_MAX_DIMS);
    let bits = bits_per_axis(d_used);
    let cells = (1u64 << bits) - 1;

    // Bounding box over the encoded axes.
    let mut lo = vec![f64::INFINITY; d_used];
    let mut hi = vec![f64::NEG_INFINITY; d_used];
    for &id in ids {
        let p = points.point(id);
        for (a, &v) in p.iter().take(d_used).enumerate() {
            if v < lo[a] {
                lo[a] = v;
            }
            if v > hi[a] {
                hi[a] = v;
            }
        }
    }
    let scale: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| {
            let span = h - l;
            if span > 0.0 && span.is_finite() {
                cells as f64 / span
            } else {
                0.0
            }
        })
        .collect();

    let keys: Vec<u64> = ids
        .iter()
        .map(|&id| {
            let p = points.point(id);
            let mut key = 0u64;
            for a in 0..d_used {
                let q = ((p[a] - lo[a]) * scale[a]).clamp(0.0, cells as f64) as u64;
                // Interleave: bit b of axis a lands at b*d_used + a.
                for b in 0..bits {
                    key |= ((q >> b) & 1) << (b as usize * d_used + a);
                }
            }
            key
        })
        .collect();

    perm.sort_by_key(|&e| (keys[e], e));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(rows: &[&[f64]]) -> PointSet {
        let dim = rows[0].len();
        let mut flat = Vec::new();
        for r in rows {
            flat.extend_from_slice(r);
        }
        PointSet::from_flat(dim, flat)
    }

    fn is_permutation(perm: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        perm.iter().all(|&e| {
            if e >= n || seen[e] {
                return false;
            }
            seen[e] = true;
            true
        }) && perm.len() == n
    }

    #[test]
    fn permutation_is_valid_and_deterministic() {
        let ps = set(&[
            &[0.0, 0.0],
            &[10.0, 10.0],
            &[0.1, 0.2],
            &[9.9, 9.8],
            &[5.0, 5.0],
        ]);
        let ids = vec![0, 1, 2, 3, 4];
        let p1 = zorder_permutation(&ps, &ids);
        let p2 = zorder_permutation(&ps, &ids);
        assert!(is_permutation(&p1, ids.len()));
        assert_eq!(p1, p2);
    }

    #[test]
    fn groups_spatial_neighbors() {
        let ps = set(&[&[0.0, 0.0], &[10.0, 10.0], &[0.1, 0.2], &[9.9, 9.8]]);
        let perm = zorder_permutation(&ps, &[0, 1, 2, 3]);
        // The two near-origin points occupy adjacent scan slots, as do
        // the two far ones.
        let slot = |e: usize| perm.iter().position(|&x| x == e).unwrap();
        assert_eq!(slot(0).abs_diff(slot(2)), 1);
        assert_eq!(slot(1).abs_diff(slot(3)), 1);
    }

    #[test]
    fn degenerate_inputs_still_permute() {
        let ps = set(&[&[3.0], &[3.0], &[3.0]]);
        let perm = zorder_permutation(&ps, &[0, 1, 2]);
        assert!(is_permutation(&perm, 3));
        // Constant axis: falls back to input order via the index tie-break.
        assert_eq!(perm, vec![0, 1, 2]);

        let one = zorder_permutation(&ps, &[2]);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn high_dim_uses_leading_axes() {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..6 {
            let mut r = vec![i as f64; 32];
            r[0] = (5 - i) as f64;
            rows.push(r);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let ps = set(&refs);
        let ids: Vec<usize> = (0..6).collect();
        let perm = zorder_permutation(&ps, &ids);
        assert!(is_permutation(&perm, 6));
    }
}
