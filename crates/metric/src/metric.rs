//! The distance-oracle abstraction (the paper's `d(·,·)`).
//!
//! All clustering algorithms in this workspace are generic over [`Metric`],
//! which exposes distances between indexed points. Concrete implementations:
//!
//! * [`EuclideanMetric`] — `d(i,j) = ‖x_i − x_j‖₂` over a [`PointSet`];
//! * [`SquaredMetric`] — squares another metric, used for the `(k,t)`-means
//!   objective (note: only a *relaxed* triangle inequality holds, with
//!   factor 2, exactly as the paper's Lemma 3.2 / Corollary 2.2 exploit);
//! * [`MatrixMetric`] — an explicit distance matrix, used for arbitrary
//!   graphs/oracles (e.g. the compressed graph of Figure 1) and test
//!   fixtures;
//! * [`TruncatedMetric`](crate::truncated::TruncatedMetric) — the paper's
//!   `L_τ(x,y) = max{d(x,y) − τ, 0}` (Definition 5.7).

use crate::points::PointSet;

/// A (pseudo-)metric over `n` indexed points.
///
/// Implementations must be cheap to query and `Sync` so sites can evaluate
/// distances from worker threads. The trait deliberately does *not* require
/// the triangle inequality — `(k,t)`-means works with squared distances,
/// which satisfy only `d(x,z) ≤ 2(d(x,y) + d(y,z))`.
pub trait Metric: Sync {
    /// Number of points the oracle covers (valid indices are `0..len()`).
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// True when the oracle covers no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance from `i` to the nearest point in `centers`, together with
    /// the arg-min position *within the slice*. Returns `None` on an empty
    /// slice.
    fn nearest(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &c) in centers.iter().enumerate() {
            let d = self.dist(i, c);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((pos, d));
            }
        }
        best
    }
}

impl<M: Metric + ?Sized> Metric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
}

/// Euclidean distance over a borrowed [`PointSet`].
#[derive(Clone, Copy, Debug)]
pub struct EuclideanMetric<'a> {
    points: &'a PointSet,
}

impl<'a> EuclideanMetric<'a> {
    /// Wraps a point set.
    pub fn new(points: &'a PointSet) -> Self {
        Self { points }
    }

    /// The underlying points.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }
}

impl Metric for EuclideanMetric<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.points.dist(i, j)
    }
}

/// Squares an inner metric; the distance function of the `(k,t)`-means
/// objective (`d²(p, K)` in Definition 1.1).
#[derive(Clone, Copy, Debug)]
pub struct SquaredMetric<M> {
    inner: M,
}

impl<M: Metric> SquaredMetric<M> {
    /// Wraps `inner`, returning `inner.dist(i,j)²` from [`Metric::dist`].
    pub fn new(inner: M) -> Self {
        Self { inner }
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Metric> Metric for SquaredMetric<M> {
    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        let d = self.inner.dist(i, j);
        d * d
    }
}

/// An explicit symmetric distance matrix.
///
/// Used for arbitrary finite metrics: test fixtures, shortest-path metrics,
/// and the compressed graph of the uncertain-data reduction. Stores the full
/// `n × n` matrix for O(1) queries.
#[derive(Clone, Debug)]
pub struct MatrixMetric {
    n: usize,
    d: Vec<f64>,
}

impl MatrixMetric {
    /// Builds from a full row-major `n × n` matrix.
    ///
    /// # Panics
    /// Panics if the buffer is not `n²` long, the diagonal is non-zero, the
    /// matrix is asymmetric, or any entry is negative/NaN.
    pub fn from_matrix(n: usize, d: Vec<f64>) -> Self {
        assert_eq!(d.len(), n * n, "matrix buffer must be n^2 long");
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0, "diagonal must be zero");
            for j in 0..i {
                let a = d[i * n + j];
                let b = d[j * n + i];
                assert!(
                    a.is_finite() && a >= 0.0,
                    "distances must be finite and non-negative"
                );
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "matrix must be symmetric"
                );
            }
        }
        Self { n, d }
    }

    /// Materializes any metric into a matrix (O(n²) space/time).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        let n = m.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..i {
                let v = m.dist(i, j);
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        Self { n, d }
    }

    /// Builds by evaluating `f(i, j)` for every pair `j < i` and mirroring.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..i {
                let v = f(i, j);
                assert!(
                    v.is_finite() && v >= 0.0,
                    "distances must be finite and non-negative"
                );
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        Self { n, d }
    }
}

impl Metric for MatrixMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }
}

/// Distances between two *different* point sets (queries from one set,
/// candidate centers from another), used when the coordinator evaluates the
/// final solution against original data.
#[derive(Clone, Copy, Debug)]
pub struct CrossMetric<'a> {
    queries: &'a PointSet,
    centers: &'a PointSet,
}

impl<'a> CrossMetric<'a> {
    /// Builds the oracle; `dist(q, c)` is Euclidean between `queries[q]` and
    /// `centers[c]`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn new(queries: &'a PointSet, centers: &'a PointSet) -> Self {
        assert_eq!(queries.dim(), centers.dim(), "dimension mismatch");
        Self { queries, centers }
    }

    /// Distance between query `q` and center `c`.
    #[inline]
    pub fn dist(&self, q: usize, c: usize) -> f64 {
        self.queries.sq_dist_to(q, self.centers.point(c)).sqrt()
    }

    /// Nearest center for query `q`; `None` if `centers` is empty.
    pub fn nearest(&self, q: usize) -> Option<(usize, f64)> {
        (0..self.centers.len())
            .map(|c| (c, self.dist(q, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_points() -> PointSet {
        PointSet::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]])
    }

    #[test]
    fn euclidean_basics() {
        let ps = three_points();
        let m = EuclideanMetric::new(&ps);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dist(0, 1), 5.0);
        assert_eq!(m.dist(1, 2), 5.0);
        assert_eq!(m.dist(0, 2), 10.0);
        assert_eq!(m.dist(2, 2), 0.0);
    }

    #[test]
    fn squared_metric_squares() {
        let ps = three_points();
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        assert_eq!(m.dist(0, 1), 25.0);
        assert_eq!(m.dist(0, 2), 100.0);
    }

    #[test]
    fn squared_relaxed_triangle() {
        // d²(0,2) ≤ 2 (d²(0,1) + d²(1,2)) — the relaxed triangle inequality
        // the means analysis relies on.
        let ps = three_points();
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        assert!(m.dist(0, 2) <= 2.0 * (m.dist(0, 1) + m.dist(1, 2)));
    }

    #[test]
    fn nearest_picks_min() {
        let ps = three_points();
        let m = EuclideanMetric::new(&ps);
        let (pos, d) = m.nearest(0, &[2, 1]).unwrap();
        assert_eq!(pos, 1); // point 1 (slice position 1) at distance 5
        assert_eq!(d, 5.0);
        assert!(m.nearest(0, &[]).is_none());
    }

    #[test]
    fn matrix_roundtrip() {
        let ps = three_points();
        let e = EuclideanMetric::new(&ps);
        let m = MatrixMetric::from_metric(&e);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m.dist(i, j) - e.dist(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn matrix_rejects_asymmetry() {
        let _ = MatrixMetric::from_matrix(2, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn cross_metric_nearest() {
        let q = PointSet::from_rows(&[vec![0.0, 0.0]]);
        let c = PointSet::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.5]]);
        let x = CrossMetric::new(&q, &c);
        let (idx, d) = x.nearest(0).unwrap();
        assert_eq!(idx, 1);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_fn_builds_symmetric() {
        let m = MatrixMetric::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.dist(2, 1), 3.0);
        assert_eq!(m.dist(1, 2), 3.0);
        assert_eq!(m.dist(0, 0), 0.0);
    }
}
