//! The distance-oracle abstraction (the paper's `d(·,·)`).
//!
//! All clustering algorithms in this workspace are generic over [`Metric`],
//! which exposes distances between indexed points. Concrete implementations:
//!
//! * [`EuclideanMetric`] — `d(i,j) = ‖x_i − x_j‖₂` over a [`PointSet`];
//! * [`SquaredMetric`] — squares another metric, used for the `(k,t)`-means
//!   objective (note: only a *relaxed* triangle inequality holds, with
//!   factor 2, exactly as the paper's Lemma 3.2 / Corollary 2.2 exploit);
//! * [`MatrixMetric`] — an explicit distance matrix, used for arbitrary
//!   graphs/oracles (e.g. the compressed graph of Figure 1) and test
//!   fixtures;
//! * [`TruncatedMetric`](crate::truncated::TruncatedMetric) — the paper's
//!   `L_τ(x,y) = max{d(x,y) − τ, 0}` (Definition 5.7).

use crate::kernel::{nearest_row_pruned, top2_row_pruned};
use crate::points::{sq_dist, PointSet};

/// A (pseudo-)metric over `n` indexed points.
///
/// Implementations must be cheap to query and `Sync` so sites can evaluate
/// distances from worker threads. The trait deliberately does *not* require
/// the triangle inequality — `(k,t)`-means works with squared distances,
/// which satisfy only `d(x,z) ≤ 2(d(x,y) + d(y,z))`.
///
/// # Bulk kernels
///
/// Besides the one-pair [`Metric::dist`], the trait carries *bulk* hooks —
/// [`Metric::dist_to_many_into`], [`Metric::assign_block`] and friends —
/// with scalar-loop defaults. Implementations override them with blocked,
/// cache-friendly kernels; [`crate::NearestAssigner`] fans them across a
/// [`crate::ThreadBudget`]. Every bulk hook is contractually **output
/// equivalent** to its scalar default: the same selected positions (ties
/// included: first candidate wins under strict `<`) and the same distance
/// values bit for bit — protocol code whose wire bytes depend on either
/// may switch freely between the scalar and bulk forms. Two deliberate,
/// documented exceptions: [`SquaredMetric`]'s bulk squared kernels skip
/// the scalar path's `sqrt`-then-square round trip (values may differ by
/// ~1 ulp), and [`EuclideanMetric`] resolves winners in the *squared*
/// domain — equivalent to the root domain except in the rounding
/// collision where two distinct squared values round to the same square
/// root, in which case the squared comparison (the tighter one) decides.
/// `crates/metric/tests/proptest_kernels.rs` pins the contracts.
pub trait Metric: Sync {
    /// Number of points the oracle covers (valid indices are `0..len()`).
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// True when the oracle covers no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distances from `i` to each of `js`, written into `out` (which is
    /// resized to `js.len()`). The bulk form of a `dist` loop.
    fn dist_to_many(&self, i: usize, js: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.resize(js.len(), 0.0);
        self.dist_to_many_into(i, js, out);
    }

    /// Slice-filling core of [`Metric::dist_to_many`] (`out.len()` must
    /// equal `js.len()`); this is the hook blocked kernels override.
    fn dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        for (o, &j) in out.iter_mut().zip(js) {
            *o = self.dist(i, j);
        }
    }

    /// *Squared* distances from `i` to each of `js`. The default squares
    /// [`Metric::dist`]; metrics with a native squared form (Euclidean)
    /// override it to skip the root entirely, which is what lets
    /// [`SquaredMetric`] route the means objective over the squared
    /// kernel instead of squaring a square root.
    fn sq_dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        self.dist_to_many_into(i, js, out);
        for o in out.iter_mut() {
            *o *= *o;
        }
    }

    /// Distance from `i` to the nearest point in `centers`, together with
    /// the arg-min position *within the slice*; on ties the first
    /// candidate wins. Returns `None` on an empty slice.
    fn nearest_in(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &c) in centers.iter().enumerate() {
            let d = self.dist(i, c);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((pos, d));
            }
        }
        best
    }

    /// Historical alias of [`Metric::nearest_in`].
    fn nearest(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        self.nearest_in(i, centers)
    }

    /// Nearest-center positions and distances for a block of query ids
    /// (`pos.len() == dist.len() == ids.len()`, `centers` non-empty).
    /// Override with a blocked kernel; outputs must match the scalar
    /// [`Metric::nearest_in`] loop exactly.
    fn assign_block(&self, ids: &[usize], centers: &[usize], pos: &mut [usize], dist: &mut [f64]) {
        for ((p, d), &i) in pos.iter_mut().zip(dist.iter_mut()).zip(ids) {
            let (bp, bd) = self.nearest_in(i, centers).expect("non-empty centers");
            *p = bp;
            *d = bd;
        }
    }

    /// [`Metric::assign_block`] with *squared* distances (same winners —
    /// squaring is monotone on non-negative distances).
    fn assign_block_sq(
        &self,
        ids: &[usize],
        centers: &[usize],
        pos: &mut [usize],
        dist: &mut [f64],
    ) {
        self.assign_block(ids, centers, pos, dist);
        for d in dist.iter_mut() {
            *d *= *d;
        }
    }

    /// True when [`Metric::relax_min_block`] can actually skip work via
    /// pruning (partial-distance aborts and the like) for this oracle's
    /// data. When `false`, the bulk relax is just the scalar loop behind
    /// a dispatch — callers that interleave relax with their own
    /// bookkeeping (the farthest-first traversal) do better fusing both
    /// into one pass than paying for a second sweep over the state.
    fn relax_min_prunes(&self) -> bool {
        false
    }

    /// Relaxes per-query nearest state against one new candidate `c`:
    /// wherever `dist(id, c) < best_d`, the distance and `mark` are
    /// written. The farthest-first traversal's inner loop. Overrides may
    /// skip queries provably unable to improve (partial-distance abort);
    /// the resulting state is identical to the scalar loop either way.
    fn relax_min_block(
        &self,
        c: usize,
        ids: &[usize],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        for ((bd, bp), &i) in best_d.iter_mut().zip(best_pos.iter_mut()).zip(ids) {
            let d = self.dist(i, c);
            if d < *bd {
                *bd = d;
                *bp = mark;
            }
        }
    }

    /// Nearest and second-nearest distances for a block of query ids —
    /// the local-search state. Matches the scalar two-slot update loop
    /// (`d < d1` shifts, `else d < d2` replaces) exactly.
    fn assign2_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        for (e, &i) in ids.iter().enumerate() {
            let (mut bc, mut b1, mut b2) = (0usize, f64::INFINITY, f64::INFINITY);
            for (pos, &c) in centers.iter().enumerate() {
                let d = self.dist(i, c);
                if d < b1 {
                    b2 = b1;
                    b1 = d;
                    bc = pos;
                } else if d < b2 {
                    b2 = d;
                }
            }
            c1[e] = bc;
            d1[e] = b1;
            d2[e] = b2;
        }
    }

    /// [`Metric::assign2_block`] that also reports the runner-up's
    /// *position* — the state incremental local search maintains across
    /// swaps. Both slots follow the scalar two-slot update (strict `<`,
    /// first candidate wins ties), so `(d1, c1)` and `(d2, c2)` are the
    /// two lexicographically smallest `(distance, position)` pairs.
    fn assign2c_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        c2: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        for (e, &i) in ids.iter().enumerate() {
            let (mut bc1, mut bc2, mut b1, mut b2) = (0usize, 0usize, f64::INFINITY, f64::INFINITY);
            for (pos, &c) in centers.iter().enumerate() {
                let d = self.dist(i, c);
                if d < b1 {
                    b2 = b1;
                    bc2 = bc1;
                    b1 = d;
                    bc1 = pos;
                } else if d < b2 {
                    b2 = d;
                    bc2 = pos;
                }
            }
            c1[e] = bc1;
            c2[e] = bc2;
            d1[e] = b1;
            d2[e] = b2;
        }
    }

    /// Per-query norms supporting [`Metric::relax_min_block_bounded`]'s
    /// O(1) skip test. Empty (the default) means the metric has no such
    /// bound and callers should use the plain [`Metric::relax_min_block`];
    /// the farthest-first traversal computes this once and amortizes it
    /// over every relax round.
    fn relax_norms(&self, _ids: &[usize]) -> Vec<f64> {
        Vec::new()
    }

    /// [`Metric::relax_min_block`] with per-query norms from
    /// [`Metric::relax_norms`]: overrides may use the reverse triangle
    /// inequality `|‖x‖ − ‖c‖| ≤ d(x, c)` to skip queries whose incumbent
    /// already beats that lower bound, at O(1) per query instead of
    /// O(dim). State after the call is identical to the scalar loop.
    fn relax_min_block_bounded(
        &self,
        c: usize,
        ids: &[usize],
        _norms: &[f64],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        self.relax_min_block(c, ids, best_d, best_pos, mark);
    }
}

impl<M: Metric + ?Sized> Metric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
    fn dist_to_many(&self, i: usize, js: &[usize], out: &mut Vec<f64>) {
        (**self).dist_to_many(i, js, out)
    }
    fn dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        (**self).dist_to_many_into(i, js, out)
    }
    fn sq_dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        (**self).sq_dist_to_many_into(i, js, out)
    }
    fn nearest_in(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        (**self).nearest_in(i, centers)
    }
    fn assign_block(&self, ids: &[usize], centers: &[usize], pos: &mut [usize], dist: &mut [f64]) {
        (**self).assign_block(ids, centers, pos, dist)
    }
    fn assign_block_sq(
        &self,
        ids: &[usize],
        centers: &[usize],
        pos: &mut [usize],
        dist: &mut [f64],
    ) {
        (**self).assign_block_sq(ids, centers, pos, dist)
    }
    fn relax_min_prunes(&self) -> bool {
        (**self).relax_min_prunes()
    }
    fn relax_min_block(
        &self,
        c: usize,
        ids: &[usize],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        (**self).relax_min_block(c, ids, best_d, best_pos, mark)
    }
    fn assign2_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        (**self).assign2_block(ids, centers, c1, d1, d2)
    }
    fn assign2c_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        c2: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        (**self).assign2c_block(ids, centers, c1, c2, d1, d2)
    }
    fn relax_norms(&self, ids: &[usize]) -> Vec<f64> {
        (**self).relax_norms(ids)
    }
    fn relax_min_block_bounded(
        &self,
        c: usize,
        ids: &[usize],
        norms: &[f64],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        (**self).relax_min_block_bounded(c, ids, norms, best_d, best_pos, mark)
    }
}

/// Pruning break-even for the Euclidean relax kernel: at or below this
/// dimension a squared distance costs less than one abort stride, so the
/// partial-distance machinery cannot pay for itself and the bulk relax
/// degenerates to the scalar loop.
const RELAX_PRUNE_MIN_DIM: usize = 8;

/// Euclidean distance over a borrowed [`PointSet`].
#[derive(Clone, Copy, Debug)]
pub struct EuclideanMetric<'a> {
    points: &'a PointSet,
}

impl<'a> EuclideanMetric<'a> {
    /// Wraps a point set.
    pub fn new(points: &'a PointSet) -> Self {
        Self { points }
    }

    /// The underlying points.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }
}

impl Metric for EuclideanMetric<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.points.dist(i, j)
    }

    fn dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        crate::kernel::sq_dists_scattered(self.points, self.points.point(i), js, out);
        for o in out.iter_mut() {
            *o = o.sqrt();
        }
    }

    fn sq_dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        // Native squared form: no root, no re-square.
        crate::kernel::sq_dists_scattered(self.points, self.points.point(i), js, out);
    }

    fn nearest_in(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        // Compare in the squared domain (same winner, same ties — the
        // root is monotone) and take one root at the end instead of one
        // per candidate.
        let x = self.points.point(i);
        let mut best: Option<(usize, f64)> = None;
        for (pos, &c) in centers.iter().enumerate() {
            let sq = sq_dist(x, self.points.point(c));
            if best.is_none_or(|(_, bd)| sq < bd) {
                best = Some((pos, sq));
            }
        }
        best.map(|(pos, sq)| (pos, sq.sqrt()))
    }

    fn assign_block(&self, ids: &[usize], centers: &[usize], pos: &mut [usize], dist: &mut [f64]) {
        self.assign_block_sq(ids, centers, pos, dist);
        for d in dist.iter_mut() {
            *d = d.sqrt();
        }
    }

    fn assign_block_sq(
        &self,
        ids: &[usize],
        centers: &[usize],
        pos: &mut [usize],
        dist: &mut [f64],
    ) {
        // Pruned dot form with precomputed norms; winners are resolved
        // exactly (see `nearest_row_pruned`), so ids and distances match
        // the scalar scan bit for bit. In the low-dimension band where
        // the partial-distance screen degenerates, the tiled GEMM-style
        // micro-kernel runs instead (same exact resolution).
        let g = crate::kernel::gather_rows(self.points, centers);
        let dim = self.points.dim();
        // Discarded tally: the trait carries no recorder; bulk callers
        // count queries coarsely at the NearestAssigner layer instead.
        let mut stats = crate::kernel::ScanStats::default();
        if crate::kernel::tiled_engages(dim, centers.len()) {
            crate::kernel::assign_sq_tiled(
                self.points,
                ids,
                &g.rows,
                &g.root_norms,
                &g.sq_norms,
                dim,
                pos,
                dist,
                &mut stats,
            );
            return;
        }
        let mut screen = Vec::with_capacity(centers.len());
        for ((p, d), &i) in pos.iter_mut().zip(dist.iter_mut()).zip(ids) {
            let (bp, bsq) = nearest_row_pruned(
                self.points.point(i),
                &g.rows,
                &g.root_norms,
                dim,
                &mut screen,
                &mut stats,
            );
            *p = bp;
            *d = bsq;
        }
    }

    fn relax_min_prunes(&self) -> bool {
        self.points.dim() > RELAX_PRUNE_MIN_DIM
    }

    fn relax_min_block(
        &self,
        c: usize,
        ids: &[usize],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        // Partial-distance abort against a conservatively inflated square
        // of the incumbent: an abort proves the new distance cannot be
        // strictly smaller, so skipped queries keep exactly the state the
        // scalar loop would have kept. Below one abort stride the
        // machinery cannot pay for itself — use the plain loop.
        let row = self.points.point(c);
        if self.points.dim() <= RELAX_PRUNE_MIN_DIM {
            for ((bd, bp), &i) in best_d.iter_mut().zip(best_pos.iter_mut()).zip(ids) {
                let d = sq_dist(self.points.point(i), row).sqrt();
                if d < *bd {
                    *bd = d;
                    *bp = mark;
                }
            }
            return;
        }
        for ((bd, bp), &i) in best_d.iter_mut().zip(best_pos.iter_mut()).zip(ids) {
            let limit = if bd.is_finite() {
                let bb = *bd * *bd;
                bb + bb * 1e-9
            } else {
                f64::INFINITY
            };
            if let Some(sq) =
                crate::kernel::resume_sq_abort(self.points.point(i), row, 0.0, 0, limit)
            {
                let d = sq.sqrt();
                if d < *bd {
                    *bd = d;
                    *bp = mark;
                }
            }
        }
    }

    fn assign2_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        // Pruned two-slot update in the squared domain (equivalent
        // winners and runner-up — monotone transform), roots only on the
        // two outputs.
        let g = crate::kernel::gather_rows(self.points, centers);
        let dim = self.points.dim();
        let mut screen = Vec::with_capacity(centers.len());
        let mut stats = crate::kernel::ScanStats::default();
        for (e, &i) in ids.iter().enumerate() {
            let (bc, _, b1, b2) = top2_row_pruned(
                self.points.point(i),
                &g.rows,
                &g.root_norms,
                dim,
                &mut screen,
                &mut stats,
            );
            c1[e] = bc;
            d1[e] = b1.sqrt();
            d2[e] = b2.sqrt();
        }
    }

    fn assign2c_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        c2: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        let g = crate::kernel::gather_rows(self.points, centers);
        let dim = self.points.dim();
        let mut screen = Vec::with_capacity(centers.len());
        let mut stats = crate::kernel::ScanStats::default();
        for (e, &i) in ids.iter().enumerate() {
            let (bc1, bc2, b1, b2) = top2_row_pruned(
                self.points.point(i),
                &g.rows,
                &g.root_norms,
                dim,
                &mut screen,
                &mut stats,
            );
            c1[e] = bc1;
            c2[e] = bc2;
            d1[e] = b1.sqrt();
            d2[e] = b2.sqrt();
        }
    }

    fn relax_norms(&self, ids: &[usize]) -> Vec<f64> {
        ids.iter()
            .map(|&i| {
                let p = self.points.point(i);
                p.iter().map(|v| v * v).sum::<f64>().sqrt()
            })
            .collect()
    }

    fn relax_min_block_bounded(
        &self,
        c: usize,
        ids: &[usize],
        norms: &[f64],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        if norms.is_empty() {
            self.relax_min_block(c, ids, best_d, best_pos, mark);
            return;
        }
        // Reverse triangle inequality: d(x, c) ≥ |‖x‖ − ‖c‖|. Deflated by
        // a margin that over-covers the norms' rounding error, the bound
        // certifies "cannot beat the incumbent" in O(1) per query — the
        // skip leaves exactly the state the scalar loop would keep.
        let row = self.points.point(c);
        let rc = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        let prune = self.points.dim() > RELAX_PRUNE_MIN_DIM;
        for (((bd, bp), &i), &nx) in best_d
            .iter_mut()
            .zip(best_pos.iter_mut())
            .zip(ids)
            .zip(norms)
        {
            if (nx - rc).abs() - 1e-9 * (nx + rc) >= *bd {
                continue;
            }
            let x = self.points.point(i);
            let d = if prune && bd.is_finite() {
                let bb = *bd * *bd;
                match crate::kernel::resume_sq_abort(x, row, 0.0, 0, bb + bb * 1e-9) {
                    Some(sq) => sq.sqrt(),
                    None => continue,
                }
            } else {
                sq_dist(x, row).sqrt()
            };
            if d < *bd {
                *bd = d;
                *bp = mark;
            }
        }
    }
}

/// Squares an inner metric; the distance function of the `(k,t)`-means
/// objective (`d²(p, K)` in Definition 1.1).
#[derive(Clone, Copy, Debug)]
pub struct SquaredMetric<M> {
    inner: M,
}

impl<M: Metric> SquaredMetric<M> {
    /// Wraps `inner`, returning `inner.dist(i,j)²` from [`Metric::dist`].
    pub fn new(inner: M) -> Self {
        Self { inner }
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Metric> Metric for SquaredMetric<M> {
    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        let d = self.inner.dist(i, j);
        d * d
    }

    fn dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        // Route straight through the inner metric's squared kernel: for a
        // Euclidean inner metric this skips the sqrt-then-re-square round
        // trip of the scalar path (values may differ from `dist` by ~1
        // ulp; winners and orderings are identical).
        self.inner.sq_dist_to_many_into(i, js, out);
    }

    fn nearest_in(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        // Squaring is monotone: the inner winner is this metric's winner.
        self.inner.nearest_in(i, centers).map(|(p, d)| (p, d * d))
    }

    fn assign_block(&self, ids: &[usize], centers: &[usize], pos: &mut [usize], dist: &mut [f64]) {
        self.inner.assign_block_sq(ids, centers, pos, dist);
    }

    fn assign2_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        self.inner.assign2_block(ids, centers, c1, d1, d2);
        for (a, b) in d1.iter_mut().zip(d2.iter_mut()) {
            *a *= *a;
            *b *= *b;
        }
    }

    fn assign2c_block(
        &self,
        ids: &[usize],
        centers: &[usize],
        c1: &mut [usize],
        c2: &mut [usize],
        d1: &mut [f64],
        d2: &mut [f64],
    ) {
        // Monotone squaring: the inner metric's two lex-smallest pairs
        // are this metric's two lex-smallest pairs.
        self.inner.assign2c_block(ids, centers, c1, c2, d1, d2);
        for (a, b) in d1.iter_mut().zip(d2.iter_mut()) {
            *a *= *a;
            *b *= *b;
        }
    }
}

/// An explicit symmetric distance matrix.
///
/// Used for arbitrary finite metrics: test fixtures, shortest-path metrics,
/// and the compressed graph of the uncertain-data reduction. Stores the full
/// `n × n` matrix for O(1) queries.
#[derive(Clone, Debug)]
pub struct MatrixMetric {
    n: usize,
    d: Vec<f64>,
}

impl MatrixMetric {
    /// Builds from a full row-major `n × n` matrix.
    ///
    /// # Panics
    /// Panics if the buffer is not `n²` long, the diagonal is non-zero, the
    /// matrix is asymmetric, or any entry is negative/NaN.
    pub fn from_matrix(n: usize, d: Vec<f64>) -> Self {
        assert_eq!(d.len(), n * n, "matrix buffer must be n^2 long");
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0, "diagonal must be zero");
            for j in 0..i {
                let a = d[i * n + j];
                let b = d[j * n + i];
                assert!(
                    a.is_finite() && a >= 0.0,
                    "distances must be finite and non-negative"
                );
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "matrix must be symmetric"
                );
            }
        }
        Self { n, d }
    }

    /// Materializes any metric into a matrix (O(n²) space/time).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        let n = m.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..i {
                let v = m.dist(i, j);
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        Self { n, d }
    }

    /// Builds by evaluating `f(i, j)` for every pair `j < i` and mirroring.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..i {
                let v = f(i, j);
                assert!(
                    v.is_finite() && v >= 0.0,
                    "distances must be finite and non-negative"
                );
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        Self { n, d }
    }
}

impl Metric for MatrixMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    fn dist_to_many_into(&self, i: usize, js: &[usize], out: &mut [f64]) {
        // One contiguous row per query: gather within it.
        let row = &self.d[i * self.n..(i + 1) * self.n];
        for (o, &j) in out.iter_mut().zip(js) {
            *o = row[j];
        }
    }

    fn nearest_in(&self, i: usize, centers: &[usize]) -> Option<(usize, f64)> {
        let row = &self.d[i * self.n..(i + 1) * self.n];
        let mut best: Option<(usize, f64)> = None;
        for (pos, &c) in centers.iter().enumerate() {
            let d = row[c];
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((pos, d));
            }
        }
        best
    }
}

/// Distances between two *different* point sets (queries from one set,
/// candidate centers from another), used when the coordinator evaluates the
/// final solution against original data.
#[derive(Clone, Copy, Debug)]
pub struct CrossMetric<'a> {
    queries: &'a PointSet,
    centers: &'a PointSet,
}

impl<'a> CrossMetric<'a> {
    /// Builds the oracle; `dist(q, c)` is Euclidean between `queries[q]` and
    /// `centers[c]`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn new(queries: &'a PointSet, centers: &'a PointSet) -> Self {
        assert_eq!(queries.dim(), centers.dim(), "dimension mismatch");
        Self { queries, centers }
    }

    /// Distance between query `q` and center `c`.
    #[inline]
    pub fn dist(&self, q: usize, c: usize) -> f64 {
        self.queries.sq_dist_to(q, self.centers.point(c)).sqrt()
    }

    /// Nearest center for query `q`; `None` if `centers` is empty.
    pub fn nearest(&self, q: usize) -> Option<(usize, f64)> {
        (0..self.centers.len())
            .map(|c| (c, self.dist(q, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_points() -> PointSet {
        PointSet::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]])
    }

    #[test]
    fn euclidean_basics() {
        let ps = three_points();
        let m = EuclideanMetric::new(&ps);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dist(0, 1), 5.0);
        assert_eq!(m.dist(1, 2), 5.0);
        assert_eq!(m.dist(0, 2), 10.0);
        assert_eq!(m.dist(2, 2), 0.0);
    }

    #[test]
    fn squared_metric_squares() {
        let ps = three_points();
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        assert_eq!(m.dist(0, 1), 25.0);
        assert_eq!(m.dist(0, 2), 100.0);
    }

    #[test]
    fn squared_relaxed_triangle() {
        // d²(0,2) ≤ 2 (d²(0,1) + d²(1,2)) — the relaxed triangle inequality
        // the means analysis relies on.
        let ps = three_points();
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        assert!(m.dist(0, 2) <= 2.0 * (m.dist(0, 1) + m.dist(1, 2)));
    }

    #[test]
    fn nearest_picks_min() {
        let ps = three_points();
        let m = EuclideanMetric::new(&ps);
        let (pos, d) = m.nearest(0, &[2, 1]).unwrap();
        assert_eq!(pos, 1); // point 1 (slice position 1) at distance 5
        assert_eq!(d, 5.0);
        assert!(m.nearest(0, &[]).is_none());
    }

    #[test]
    fn matrix_roundtrip() {
        let ps = three_points();
        let e = EuclideanMetric::new(&ps);
        let m = MatrixMetric::from_metric(&e);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m.dist(i, j) - e.dist(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn matrix_rejects_asymmetry() {
        let _ = MatrixMetric::from_matrix(2, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn cross_metric_nearest() {
        let q = PointSet::from_rows(&[vec![0.0, 0.0]]);
        let c = PointSet::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.5]]);
        let x = CrossMetric::new(&q, &c);
        let (idx, d) = x.nearest(0).unwrap();
        assert_eq!(idx, 1);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_fn_builds_symmetric() {
        let m = MatrixMetric::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.dist(2, 1), 3.0);
        assert_eq!(m.dist(1, 2), 3.0);
        assert_eq!(m.dist(0, 0), 0.0);
    }
}
