//! Bulk distance kernels: batched, pruned, optionally threaded
//! nearest-center evaluation.
//!
//! Every solver in the workspace bottoms out in "distance from one point
//! to many candidates" — assignment steps, farthest-first relaxation,
//! swap-delta evaluation, outlier scoring. Evaluating those as one-pair
//! [`Metric::dist`] calls pays the full `O(d)` per-coordinate cost for
//! every candidate, including the overwhelming majority that lose by a
//! mile. The bulk layer restructures the loop around three levers:
//!
//! * **norm-bound pruning** — [`EuclideanMetric`] assignment precomputes
//!   `‖c‖` per center once per block; `d(x,c) ≥ |‖x‖ − ‖c‖|` then rejects
//!   most losing candidates in O(1), before any per-coordinate work. On
//!   clustered data this is where the order of magnitude comes from.
//! * **the dot form** — survivors are scored as `‖x‖² + ‖c‖² − 2·x·c`
//!   with precomputed squared norms (cheaper and better-pipelined than
//!   the difference form), and only candidates whose score lands within a
//!   conservative error tolerance of the incumbent pay for an exact pass.
//! * **thread-level parallelism** — per-query results are independent, so
//!   chunks of queries fan out across a [`ThreadBudget`] with no change
//!   in any output value.
//!
//! Both pruning rules are margin-deflated so floating-point error can
//! never discard a true winner, and every surviving comparison runs on
//! the exact [`sq_dist`] summation under the same strict-`<`, first-wins
//! rule as the scalar path — selected ids, tie-breaks, and distance
//! values are bit-identical to the scalar loop, so the bulk layer is
//! drop-in for protocol code whose wire bytes depend on either.
//!
//! [`EuclideanMetric`]: crate::EuclideanMetric

use crate::metric::Metric;
use crate::points::{sq_dist, PointSet};
use dpc_obs::{Counter, RecorderHandle};

/// How many independent candidate accumulators the blocked kernels
/// interleave. Four `f64` chains cover the FMA latency/throughput gap on
/// every mainstream core without spilling registers.
pub const LANES: usize = 4;

/// Queries per work unit when a kernel is split across threads. Small
/// enough to balance uneven chunks, large enough that the per-spawn cost
/// disappears.
const MIN_CHUNK: usize = 256;

/// An explicit cap on the threads a bulk kernel may use.
///
/// Kernels default to [`ThreadBudget::serial`] so library calls never
/// oversubscribe by surprise: a `Sweep::grid` already runs one job per
/// worker thread, and the channel/TCP transports already run one thread
/// per site. Opt into intra-kernel parallelism where a single job owns the
/// machine (`Job::threads`, CLI `--threads`).
///
/// Threading never changes any output value: queries are split into
/// chunks, every per-query result is computed independently, and
/// reductions over queries stay on the calling thread in index order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadBudget(usize);

impl ThreadBudget {
    /// One thread: run on the caller, spawn nothing.
    pub fn serial() -> Self {
        Self(1)
    }

    /// Up to `n` threads (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Self(n.max(1))
    }

    /// One thread per available core.
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The thread cap.
    pub fn get(self) -> usize {
        self.0
    }

    /// True when the budget admits no worker threads.
    pub fn is_serial(self) -> bool {
        self.0 <= 1
    }
}

impl Default for ThreadBudget {
    fn default() -> Self {
        Self::serial()
    }
}

/// Runs `work(start, out_chunk)` over disjoint chunks of `out`, in
/// parallel up to the budget. `start` is the offset of the chunk within
/// `out`. Falls back to one inline call when the budget is serial or the
/// input is small. The building block for custom bulk passes whose
/// per-element results are independent (each chunk writes only its own
/// slice, so outputs are identical at any budget).
pub fn par_chunks_mut<T: Send>(
    budget: ThreadBudget,
    out: &mut [T],
    work: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = out.len();
    let threads = budget.get().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads <= 1 {
        work(0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let work = &work;
            scope.spawn(move || work(c * chunk, slice));
        }
    });
}

/// Like [`par_chunks_mut`] over two parallel output slices (positions and
/// distances) that must be chunked identically.
pub(crate) fn par_chunks_mut2<A: Send, B: Send>(
    budget: ThreadBudget,
    a: &mut [A],
    b: &mut [B],
    work: impl Fn(usize, &mut [A], &mut [B]) + Sync,
) {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let threads = budget.get().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads <= 1 {
        work(0, a, b);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, (sa, sb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let work = &work;
            scope.spawn(move || work(c * chunk, sa, sb));
        }
    });
}

/// A full point→center assignment: for each queried point, the position
/// (within the candidate slice) of its nearest center and the distance to
/// it, under the metric's own distance (squared for a squared metric).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment {
    /// Nearest-center position per query, into the candidate slice.
    pub pos: Vec<usize>,
    /// Distance to that center, per query.
    pub dist: Vec<f64>,
}

impl Assignment {
    /// An empty assignment to reuse across calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of assigned queries.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when nothing has been assigned.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Nearest *and* second-nearest distances per query — the state the
/// single-swap local search maintains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment2 {
    /// Nearest-center position per query.
    pub c1: Vec<usize>,
    /// Distance to the nearest center.
    pub d1: Vec<f64>,
    /// Distance to the second-nearest center (`∞` with one candidate).
    pub d2: Vec<f64>,
}

/// Batched nearest-center evaluation over a [`Metric`].
///
/// Dispatches to the metric's blocked kernels ([`Metric::assign_block`]
/// and friends) chunk by chunk, fanning chunks across the thread budget.
/// All outputs — selected positions, tie-breaks, and distance values —
/// are identical to the scalar `metric.nearest(i, centers)` loop,
/// regardless of the budget.
#[derive(Clone, Copy, Debug)]
pub struct NearestAssigner<'a, M: Metric + ?Sized> {
    metric: &'a M,
    threads: ThreadBudget,
    recorder: Option<&'a RecorderHandle>,
}

impl<'a, M: Metric + ?Sized> NearestAssigner<'a, M> {
    /// A serial assigner (no worker threads).
    pub fn new(metric: &'a M) -> Self {
        Self {
            metric,
            threads: ThreadBudget::serial(),
            recorder: None,
        }
    }

    /// An assigner with an explicit thread budget.
    pub fn with_threads(metric: &'a M, threads: ThreadBudget) -> Self {
        Self {
            metric,
            threads,
            recorder: None,
        }
    }

    /// An assigner that flushes query/candidate counters to `recorder`
    /// (one amortized flush per bulk call — coarse counts, since generic
    /// metrics hide their pruning decisions behind the trait).
    pub fn with_recorder(
        metric: &'a M,
        threads: ThreadBudget,
        recorder: &'a RecorderHandle,
    ) -> Self {
        Self {
            metric,
            threads,
            recorder: Some(recorder),
        }
    }

    /// The thread budget in effect.
    pub fn threads(&self) -> ThreadBudget {
        self.threads
    }

    /// Flushes one bulk call's worth of coarse counters (`queries`
    /// queries over `candidates` candidates each).
    #[inline]
    fn tally(&self, queries: usize, candidates: usize) {
        if let Some(rec) = self.recorder {
            if rec.enabled() {
                rec.add(Counter::KernelQueries, queries as u64);
                rec.add(Counter::CandidatesScanned, (queries * candidates) as u64);
            }
        }
    }

    /// Assigns every id to its nearest candidate in `centers`.
    pub fn assign(&self, ids: &[usize], centers: &[usize]) -> Assignment {
        let mut out = Assignment::new();
        self.assign_into(ids, centers, &mut out);
        out
    }

    /// [`Self::assign`] into a reusable buffer.
    pub fn assign_into(&self, ids: &[usize], centers: &[usize], out: &mut Assignment) {
        assert!(!centers.is_empty(), "assign requires candidates");
        out.pos.clear();
        out.pos.resize(ids.len(), 0);
        out.dist.clear();
        out.dist.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut2(self.threads, &mut out.pos, &mut out.dist, |start, p, d| {
            metric.assign_block(&ids[start..start + p.len()], centers, p, d);
        });
        self.tally(ids.len(), centers.len());
    }

    /// Like [`Self::assign`], but distances are the metric's *squared*
    /// distances (positions and ties are unchanged — squaring is monotone).
    pub fn assign_sq(&self, ids: &[usize], centers: &[usize]) -> Assignment {
        assert!(!centers.is_empty(), "assign requires candidates");
        let mut out = Assignment::new();
        out.pos.resize(ids.len(), 0);
        out.dist.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut2(self.threads, &mut out.pos, &mut out.dist, |start, p, d| {
            metric.assign_block_sq(&ids[start..start + p.len()], centers, p, d);
        });
        self.tally(ids.len(), centers.len());
        out
    }

    /// Nearest and second-nearest per id — the local-search state update.
    pub fn assign2(&self, ids: &[usize], centers: &[usize]) -> Assignment2 {
        let mut out = Assignment2 {
            c1: vec![0; ids.len()],
            d1: vec![f64::INFINITY; ids.len()],
            d2: vec![f64::INFINITY; ids.len()],
        };
        if centers.is_empty() {
            return out;
        }
        let metric = self.metric;
        let n = ids.len();
        self.tally(n, centers.len());
        let threads = self.threads.get().min(n.div_ceil(MIN_CHUNK)).max(1);
        if threads <= 1 {
            metric.assign2_block(ids, centers, &mut out.c1, &mut out.d1, &mut out.d2);
            return out;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let iter = out
                .c1
                .chunks_mut(chunk)
                .zip(out.d1.chunks_mut(chunk))
                .zip(out.d2.chunks_mut(chunk))
                .enumerate();
            for (c, ((sc, sd1), sd2)) in iter {
                let start = c * chunk;
                scope.spawn(move || {
                    metric.assign2_block(&ids[start..start + sc.len()], centers, sc, sd1, sd2);
                });
            }
        });
        out
    }

    /// Distances from one anchor to every id, in id order — the bulk form
    /// of the farthest-first relax step and the swap-delta inner loop.
    pub fn dists_from(&self, from: usize, ids: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut(self.threads, out, |start, d| {
            metric.dist_to_many_into(from, &ids[start..start + d.len()], d);
        });
        self.tally(ids.len(), 1);
    }

    /// Squared-distance variant of [`Self::dists_from`].
    pub fn sq_dists_from(&self, from: usize, ids: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut(self.threads, out, |start, d| {
            metric.sq_dist_to_many_into(from, &ids[start..start + d.len()], d);
        });
        self.tally(ids.len(), 1);
    }

    /// Relaxes nearest-candidate state against a new candidate `c` in
    /// bulk ([`Metric::relax_min_block`] per chunk): wherever
    /// `dist(id, c) < best_d`, writes the distance and `mark`. The
    /// farthest-first traversal's inner loop.
    pub fn relax_min(
        &self,
        c: usize,
        ids: &[usize],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        let metric = self.metric;
        par_chunks_mut2(self.threads, best_d, best_pos, |start, bd, bp| {
            metric.relax_min_block(c, &ids[start..start + bd.len()], bd, bp, mark);
        });
        self.tally(ids.len(), 1);
    }
}

// ---------------------------------------------------------------------------
// Flat Euclidean kernels shared by EuclideanMetric and CenterBlock.
// ---------------------------------------------------------------------------

/// Exact per-pair squared distances from one query row to `LANES`-blocked
/// candidate rows in a gathered `k × dim` buffer. Each pair keeps the
/// scalar summation order; blocking only interleaves independent pairs.
pub(crate) fn sq_dists_row(x: &[f64], rows: &[f64], dim: usize, out: &mut [f64]) {
    debug_assert_eq!(rows.len(), dim * out.len());
    let k = out.len();
    let mut c = 0;
    while c + LANES <= k {
        let base = c * dim;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (d, &xd) in x.iter().enumerate() {
            let e0 = xd - rows[base + d];
            let e1 = xd - rows[base + dim + d];
            let e2 = xd - rows[base + 2 * dim + d];
            let e3 = xd - rows[base + 3 * dim + d];
            a0 += e0 * e0;
            a1 += e1 * e1;
            a2 += e2 * e2;
            a3 += e3 * e3;
        }
        out[c] = a0;
        out[c + 1] = a1;
        out[c + 2] = a2;
        out[c + 3] = a3;
        c += LANES;
    }
    while c < k {
        out[c] = sq_dist(x, &rows[c * dim..(c + 1) * dim]);
        c += 1;
    }
}

/// Exact per-pair squared distances from the coordinate row `x` to the
/// scattered rows `js` of `points`, `LANES` pairs in flight. Per-pair
/// summation order matches [`sq_dist`] exactly.
pub(crate) fn sq_dists_scattered(points: &PointSet, x: &[f64], js: &[usize], out: &mut [f64]) {
    debug_assert_eq!(js.len(), out.len());
    let k = js.len();
    let mut c = 0;
    while c + LANES <= k {
        let r0 = points.point(js[c]);
        let r1 = points.point(js[c + 1]);
        let r2 = points.point(js[c + 2]);
        let r3 = points.point(js[c + 3]);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (d, &xd) in x.iter().enumerate() {
            let e0 = xd - r0[d];
            let e1 = xd - r1[d];
            let e2 = xd - r2[d];
            let e3 = xd - r3[d];
            a0 += e0 * e0;
            a1 += e1 * e1;
            a2 += e2 * e2;
            a3 += e3 * e3;
        }
        out[c] = a0;
        out[c + 1] = a1;
        out[c + 2] = a2;
        out[c + 3] = a3;
        c += LANES;
    }
    while c < k {
        out[c] = sq_dist(x, points.point(js[c]));
        c += 1;
    }
}

/// The gathered, norm-annotated candidate rows the pruned kernels scan:
/// contiguous row-major coordinates plus the precomputed norms `‖c‖`
/// behind the O(1) lower bound.
pub(crate) struct GatheredRows {
    pub rows: Vec<f64>,
    pub root_norms: Vec<f64>,
}

/// Gathers the listed rows of `points` (the center-side precomputation of
/// the pruned kernels).
pub(crate) fn gather_rows(points: &PointSet, ids: &[usize]) -> GatheredRows {
    let dim = points.dim();
    let mut rows = Vec::with_capacity(ids.len() * dim);
    let mut root_norms = Vec::with_capacity(ids.len());
    for &i in ids {
        let r = points.point(i);
        rows.extend_from_slice(r);
        let n: f64 = r.iter().map(|&v| v * v).sum();
        root_norms.push(n.sqrt());
    }
    GatheredRows { rows, root_norms }
}

/// Dot product with interleaved accumulators — used only for the
/// *approximate* `‖x‖` behind the margin-deflated norm bound, so
/// reassociating the sum is fine (exact decisions always go back through
/// [`sq_dist`]).
fn dot_approx(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut d = 0;
    while d + LANES <= n {
        acc[0] += a[d] * b[d];
        acc[1] += a[d + 1] * b[d + 1];
        acc[2] += a[d + 2] * b[d + 2];
        acc[3] += a[d + 3] * b[d + 3];
        d += LANES;
    }
    let mut tail = 0.0;
    while d < n {
        tail += a[d] * b[d];
        d += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Safety margin for the O(1) norm bound: the bound must beat the
/// incumbent by this relative factor before a candidate is skipped.
/// Floating-point error in `‖x‖` / `‖c‖` is a few ulps; the 1e-9 margin
/// over-covers it by orders of magnitude, so the bound can never discard
/// a true winner.
const PRUNE_MARGIN: f64 = 1.0 - 1e-9;

/// Leading coordinates used by the candidate-ordering screen. Two
/// coordinates are enough to separate real cluster structure and keep the
/// screen pass at ~half the cost of a four-wide one.
const SCREEN_DIMS: usize = 2;

/// Coordinates accumulated between abort checks of a partial sum.
const ABORT_STRIDE: usize = 8;

/// Resumes the canonical [`sq_dist`] accumulation of `x` vs `row` from
/// `acc` at coordinate `start`, aborting once the partial sum strictly
/// exceeds `limit`. Partial sums of squares are monotone, so an abort
/// proves the full sum exceeds `limit` — **exactly**, no tolerance.
/// A completed sum is bit-identical to [`sq_dist`] (same single
/// accumulator, same coordinate order).
#[inline]
pub(crate) fn resume_sq_abort(
    x: &[f64],
    row: &[f64],
    mut acc: f64,
    start: usize,
    limit: f64,
) -> Option<f64> {
    let n = x.len();
    debug_assert_eq!(row.len(), n);
    let mut d = start;
    while d < n {
        let stop = (d + ABORT_STRIDE).min(n);
        while d < stop {
            let e = x[d] - row[d];
            acc += e * e;
            d += 1;
        }
        if acc > limit {
            return None;
        }
    }
    Some(acc)
}

/// Local tally of pruning effectiveness for one batch of pruned-kernel
/// queries. Call sites accumulate into a plain stack value and flush the
/// totals to a recorder once per batch (never per candidate), keeping
/// the disabled-recorder path free of any shared-state traffic.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ScanStats {
    /// Candidate centers considered (k per query).
    pub scanned: u64,
    /// Candidates whose exact sum ran to completion; the rest were
    /// pruned by an O(1) bound or a partial-distance abort.
    pub completed: u64,
}

impl ScanStats {
    /// Flushes `queries` queries' worth of tallies to `rec` if it is
    /// enabled (one branch on the disabled path).
    #[inline]
    pub fn flush(self, rec: &RecorderHandle, queries: u64) {
        if rec.enabled() {
            rec.add(Counter::KernelQueries, queries);
            rec.add(Counter::CandidatesScanned, self.scanned);
            rec.add(
                Counter::CandidatesPruned,
                self.scanned.saturating_sub(self.completed),
            );
        }
    }
}

/// Finds the nearest candidate row to `x` with partial-distance search.
///
/// The scan is restructured around three exact-safe filters, cheapest
/// first:
///
/// 1. **screen + best-first probe** — the first [`SCREEN_DIMS`] terms of
///    every candidate's (canonical-order) squared sum are computed up
///    front; the candidate with the smallest screen is evaluated first,
///    which makes the incumbent tight almost immediately. Screens are
///    partial sums, so any candidate whose screen already exceeds the
///    incumbent is rejected in O(1).
/// 2. **norm bound** — `d²(x,c) ≥ (‖x‖ − ‖c‖)²` from the precomputed
///    center norms (the Cauchy–Schwarz estimate of the
///    `‖x‖² + ‖c‖² − 2·x·c` form) rejects a candidate in O(1).
/// 3. **partial-distance abort** — survivors resume their exact sum from
///    the screen prefix and bail the moment the partial sum exceeds the
///    incumbent ([`resume_sq_abort`]).
///
/// Winners are compared as `(sq, position)` lexicographically, which
/// reproduces the scalar strict-`<` first-wins rule under *any* visit
/// order — the returned `(pos, exact_sq)` is bit-identical to the scalar
/// scan at any data distribution; pruning only changes how much work
/// losing candidates cost.
pub(crate) fn nearest_row_pruned(
    x: &[f64],
    rows: &[f64],
    root_norms: &[f64],
    dim: usize,
    screen: &mut Vec<f64>,
    stats: &mut ScanStats,
) -> (usize, f64) {
    let k = root_norms.len();
    debug_assert!(k > 0);
    stats.scanned += k as u64;
    // Tiny rows or candidate sets: the screen/abort machinery cannot pay
    // for itself below one abort stride — the plain exact scan wins.
    if dim <= ABORT_STRIDE || k <= 2 {
        stats.completed += k as u64;
        let mut best = (0usize, f64::INFINITY);
        for (c, row) in rows.chunks_exact(dim).enumerate() {
            let sq = sq_dist(x, row);
            if sq < best.1 {
                best = (c, sq);
            }
        }
        return best;
    }
    let (probe, _) = fill_screen(x, rows, dim, k, screen);

    // Probe the screen-minimal candidate first: a tight incumbent makes
    // the O(1) screen test reject almost everything else.
    let mut best_pos = probe;
    let mut best_sq = resume_sq_abort(
        x,
        &rows[probe * dim..(probe + 1) * dim],
        screen[probe],
        SCREEN_DIMS,
        f64::INFINITY,
    )
    .expect("infinite limit never aborts");
    stats.completed += 1;

    // The probe is done: poison its screen so the main scan's single
    // comparison skips it along with everything else that lost.
    screen[probe] = f64::INFINITY;
    // `‖x‖` backs the norm bound but costs O(dim); compute it only if
    // some candidate actually survives the screen test.
    let mut sx = f64::NAN;
    for (c, &prefix) in screen.iter().enumerate() {
        if prefix > best_sq {
            continue;
        }
        if sx.is_nan() {
            sx = dot_approx(x, x).sqrt();
        }
        let diff = sx - root_norms[c];
        if diff * diff * PRUNE_MARGIN > best_sq {
            continue;
        }
        let row = &rows[c * dim..(c + 1) * dim];
        if let Some(sq) = resume_sq_abort(x, row, prefix, SCREEN_DIMS, best_sq) {
            stats.completed += 1;
            if sq < best_sq || (sq == best_sq && c < best_pos) {
                best_sq = sq;
                best_pos = c;
            }
        }
    }
    (best_pos, best_sq)
}

/// Computes the [`SCREEN_DIMS`]-coordinate prefix of every candidate's
/// canonical squared sum, returning the positions of the smallest and
/// second-smallest screens.
#[inline]
fn fill_screen(
    x: &[f64],
    rows: &[f64],
    dim: usize,
    k: usize,
    screen: &mut Vec<f64>,
) -> (usize, usize) {
    screen.clear();
    screen.resize(k, 0.0);
    // Unrolled canonical prefix: the additions run in the exact order
    // `sq_dist` uses, so a screen is resumable into the full exact sum.
    let (x0, x1) = (x[0], x[1]);
    let (mut min1, mut min2) = (0usize, 0usize);
    let (mut v1, mut v2) = (f64::INFINITY, f64::INFINITY);
    for (c, (sc, row)) in screen.iter_mut().zip(rows.chunks_exact(dim)).enumerate() {
        let r = &row[..SCREEN_DIMS];
        let e0 = x0 - r[0];
        let e1 = x1 - r[1];
        let mut acc = e0 * e0;
        acc += e1 * e1;
        *sc = acc;
        if acc < v1 {
            v2 = v1;
            min2 = min1;
            v1 = acc;
            min1 = c;
        } else if acc < v2 {
            v2 = acc;
            min2 = c;
        }
    }
    (min1, min2)
}

/// Top-2 variant of [`nearest_row_pruned`]: candidates are pruned against
/// the *second*-nearest incumbent (they must beat it to affect either
/// slot); the two-slot update uses `(sq, position)` ordering so the
/// winner, runner-up value, and tie-breaks match the scalar loop exactly.
pub(crate) fn top2_row_pruned(
    x: &[f64],
    rows: &[f64],
    root_norms: &[f64],
    dim: usize,
    screen: &mut Vec<f64>,
    stats: &mut ScanStats,
) -> (usize, f64, f64) {
    let k = root_norms.len();
    debug_assert!(k > 0);
    stats.scanned += k as u64;
    let two_slot = |c1: &mut usize, b1: &mut f64, b2: &mut f64, c: usize, sq: f64| {
        if sq < *b1 || (sq == *b1 && c < *c1) {
            *b2 = *b1;
            *b1 = sq;
            *c1 = c;
        } else if sq < *b2 {
            *b2 = sq;
        }
    };
    let (mut c1, mut b1, mut b2) = (0usize, f64::INFINITY, f64::INFINITY);
    if dim <= ABORT_STRIDE || k <= 2 {
        stats.completed += k as u64;
        for (c, row) in rows.chunks_exact(dim).enumerate() {
            let sq = sq_dist(x, row);
            two_slot(&mut c1, &mut b1, &mut b2, c, sq);
        }
        return (c1, b1, b2);
    }
    let (probe1, probe2) = fill_screen(x, rows, dim, k, screen);
    for probe in [probe1, probe2] {
        let sq = resume_sq_abort(
            x,
            &rows[probe * dim..(probe + 1) * dim],
            screen[probe],
            SCREEN_DIMS,
            f64::INFINITY,
        )
        .expect("infinite limit never aborts");
        stats.completed += 1;
        two_slot(&mut c1, &mut b1, &mut b2, probe, sq);
    }
    screen[probe1] = f64::INFINITY;
    screen[probe2] = f64::INFINITY;
    let mut sx = f64::NAN;
    for (c, &prefix) in screen.iter().enumerate() {
        if prefix > b2 {
            continue;
        }
        if sx.is_nan() {
            sx = dot_approx(x, x).sqrt();
        }
        let diff = sx - root_norms[c];
        if diff * diff * PRUNE_MARGIN > b2 {
            continue;
        }
        let row = &rows[c * dim..(c + 1) * dim];
        if let Some(sq) = resume_sq_abort(x, row, prefix, SCREEN_DIMS, b2) {
            stats.completed += 1;
            two_slot(&mut c1, &mut b1, &mut b2, c, sq);
        }
    }
    (c1, b1, b2)
}

pub struct CenterBlock {
    dim: usize,
    rows: Vec<f64>,
    root_norms: Vec<f64>,
    recorder: RecorderHandle,
}

impl CenterBlock {
    /// Gathers all points of `centers`.
    pub fn new(centers: &PointSet) -> Self {
        Self::from_flat(centers.dim(), centers.as_flat().to_vec())
    }

    /// Gathers the given rows of `points`.
    pub fn from_points(points: &PointSet, ids: &[usize]) -> Self {
        let dim = points.dim();
        let mut rows = Vec::with_capacity(ids.len() * dim);
        for &i in ids {
            rows.extend_from_slice(points.point(i));
        }
        Self::from_flat(dim, rows)
    }

    /// Gathers explicit coordinate rows.
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Self {
        let mut flat = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "center row dimension mismatch");
            flat.extend_from_slice(r);
        }
        Self::from_flat(dim, flat)
    }

    fn from_flat(dim: usize, rows: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            rows.len().is_multiple_of(dim),
            "flat center buffer length mismatch"
        );
        let root_norms: Vec<f64> = rows
            .chunks_exact(dim)
            .map(|r| r.iter().map(|&v| v * v).sum::<f64>().sqrt())
            .collect();
        Self {
            dim,
            rows,
            root_norms,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches a recorder: the block's pruned scans flush *exact*
    /// query/scan/prune counters to it, one flush per query batch.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Number of centers in the block.
    pub fn len(&self) -> usize {
        self.root_norms.len()
    }

    /// True when the block holds no centers.
    pub fn is_empty(&self) -> bool {
        self.root_norms.is_empty()
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Nearest center to one coordinate row: `(position, exact squared
    /// distance)`. Uses the pruned dot-form kernel with exact winner
    /// resolution.
    ///
    /// # Panics
    /// Panics when the block is empty.
    pub fn nearest_sq(&self, coords: &[f64]) -> (usize, f64) {
        assert!(!self.is_empty(), "nearest over an empty center block");
        let mut screen = Vec::with_capacity(self.len());
        let mut stats = ScanStats::default();
        let best = nearest_row_pruned(
            coords,
            &self.rows,
            &self.root_norms,
            self.dim,
            &mut screen,
            &mut stats,
        );
        stats.flush(&self.recorder, 1);
        best
    }

    /// Assigns the given rows of `points` to their nearest centers;
    /// distances are Euclidean (`sqrt` of the exact squared distance, so
    /// values match the scalar path bit for bit).
    pub fn assign(&self, points: &PointSet, ids: &[usize], threads: ThreadBudget) -> Assignment {
        let mut out = self.assign_sq(points, ids, threads);
        for d in &mut out.dist {
            *d = d.sqrt();
        }
        out
    }

    /// Assigns the given rows of `points` to their nearest centers with
    /// exact *squared* distances (the means/Lloyd form — no square roots
    /// anywhere on the path).
    pub fn assign_sq(&self, points: &PointSet, ids: &[usize], threads: ThreadBudget) -> Assignment {
        assert!(!self.is_empty(), "assign over an empty center block");
        assert_eq!(points.dim(), self.dim, "dimension mismatch");
        let mut out = Assignment::new();
        out.pos.resize(ids.len(), 0);
        out.dist.resize(ids.len(), 0.0);
        par_chunks_mut2(threads, &mut out.pos, &mut out.dist, |start, pos, dist| {
            let mut screen = Vec::with_capacity(self.len());
            let mut stats = ScanStats::default();
            for (o, (p, d)) in pos.iter_mut().zip(dist.iter_mut()).enumerate() {
                let x = points.point(ids[start + o]);
                let (bp, bd) = nearest_row_pruned(
                    x,
                    &self.rows,
                    &self.root_norms,
                    self.dim,
                    &mut screen,
                    &mut stats,
                );
                *p = bp;
                *d = bd;
            }
            // One flush per chunk: the collector's counters are atomics,
            // so concurrent chunk flushes stay exact.
            stats.flush(&self.recorder, pos.len() as u64);
        });
        out
    }

    /// Exact squared distances from one coordinate row to every center, in
    /// center order, using the blocked exact kernel (no dot-form rounding
    /// — safe for accumulation into costs).
    pub fn sq_dists_to_all(&self, coords: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len(), 0.0);
        sq_dists_row(coords, &self.rows, self.dim, out);
    }
}

/// Exact squared distances from every listed point to one coordinate row,
/// fanned across the thread budget. Values are bit-identical to
/// `points.sq_dist_to(id, coords)` per entry.
pub fn sq_dists_to_coords(
    points: &PointSet,
    ids: &[usize],
    coords: &[f64],
    out: &mut Vec<f64>,
    threads: ThreadBudget,
) {
    out.clear();
    out.resize(ids.len(), 0.0);
    par_chunks_mut(threads, out, |start, chunk| {
        for (o, d) in chunk.iter_mut().enumerate() {
            *d = crate::points::sq_dist(points.point(ids[start + o]), coords);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::EuclideanMetric;

    fn ps(rows: &[Vec<f64>]) -> PointSet {
        PointSet::from_rows(rows)
    }

    #[test]
    fn thread_budget_basics() {
        assert_eq!(ThreadBudget::serial().get(), 1);
        assert!(ThreadBudget::serial().is_serial());
        assert_eq!(ThreadBudget::new(0).get(), 1);
        assert!(ThreadBudget::available().get() >= 1);
        assert_eq!(ThreadBudget::default(), ThreadBudget::serial());
    }

    #[test]
    fn sq_dists_row_matches_scalar_at_every_k() {
        // Exercise the LANES main loop and the remainder tail.
        let x = vec![1.0, -2.0, 0.5];
        for k in 1..=9usize {
            let rows: Vec<f64> = (0..k * 3).map(|i| (i as f64) * 0.37 - 1.0).collect();
            let mut out = vec![0.0; k];
            sq_dists_row(&x, &rows, 3, &mut out);
            for c in 0..k {
                let exact = sq_dist(&x, &rows[c * 3..(c + 1) * 3]);
                assert_eq!(out[c], exact, "k={k} c={c}");
            }
        }
    }

    #[test]
    fn nearest_row_pruned_matches_scalar_scan_with_ties() {
        // Duplicated candidate rows force exact ties; the pruned dot form
        // must still pick the first, like the scalar strict-< scan.
        let rows = vec![
            5.0, 5.0, // far
            1.0, 0.0, // tie A
            1.0, 0.0, // tie B (identical)
            3.0, 4.0,
        ];
        let root_norms: Vec<f64> = rows
            .chunks(2)
            .map(|r| f64::sqrt(r[0] * r[0] + r[1] * r[1]))
            .collect();
        let mut screen = Vec::new();
        let mut stats = ScanStats::default();
        let (pos, sq) =
            nearest_row_pruned(&[0.0, 0.0], &rows, &root_norms, 2, &mut screen, &mut stats);
        assert_eq!(pos, 1, "first of the tied pair must win");
        assert_eq!(sq, 1.0);
        assert_eq!(stats.scanned, 4);

        let (c1, d1, d2) =
            top2_row_pruned(&[0.0, 0.0], &rows, &root_norms, 2, &mut screen, &mut stats);
        assert_eq!(c1, 1);
        assert_eq!(d1, 1.0);
        assert_eq!(d2, 1.0); // the duplicate row is the runner-up
    }

    #[test]
    fn center_block_assign_matches_scalar() {
        let centers = ps(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let queries = ps(&[
            vec![1.0, 1.0],
            vec![9.0, 1.0],
            vec![-2.0, 8.0],
            vec![5.0, 5.0],
        ]);
        let block = CenterBlock::new(&centers);
        let ids: Vec<usize> = (0..queries.len()).collect();
        for threads in [ThreadBudget::serial(), ThreadBudget::new(4)] {
            let a = block.assign(&queries, &ids, threads);
            for (q, (&p, &d)) in a.pos.iter().zip(&a.dist).enumerate() {
                let (sp, sd) = (0..centers.len())
                    .map(|c| (c, queries.sq_dist_to(q, centers.point(c)).sqrt()))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap();
                assert_eq!(p, sp, "query {q}");
                assert_eq!(d, sd, "query {q}");
            }
        }
    }

    #[test]
    fn assigner_matches_metric_nearest() {
        let points = ps(&[
            vec![0.0, 0.0],
            vec![1.0, 2.0],
            vec![8.0, 1.0],
            vec![4.0, 4.0],
            vec![-3.0, 2.0],
        ]);
        let m = EuclideanMetric::new(&points);
        let ids: Vec<usize> = (0..points.len()).collect();
        let centers = [2usize, 0];
        let a = NearestAssigner::new(&m).assign(&ids, &centers);
        for (e, &i) in ids.iter().enumerate() {
            let (sp, sd) = m.nearest(i, &centers).unwrap();
            assert_eq!(a.pos[e], sp);
            assert_eq!(a.dist[e], sd);
        }
    }

    #[test]
    fn recorders_receive_kernel_counters() {
        use dpc_obs::Collector;
        use std::sync::Arc;

        // Exact counters through CenterBlock: 8 queries × 3 candidates.
        let centers = ps(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let queries = ps(&(0..8).map(|i| vec![i as f64, 1.0]).collect::<Vec<_>>());
        let ids: Vec<usize> = (0..queries.len()).collect();
        let collector = Arc::new(Collector::new());
        let block = CenterBlock::new(&centers).with_recorder(collector.handle());
        let plain = CenterBlock::new(&centers);
        let a = block.assign_sq(&queries, &ids, ThreadBudget::serial());
        // Recording never changes any output value.
        assert_eq!(a, plain.assign_sq(&queries, &ids, ThreadBudget::serial()));
        let t = collector.snapshot();
        assert_eq!(t.counters[Counter::KernelQueries.index()], 8);
        assert_eq!(t.counters[Counter::CandidatesScanned.index()], 24);
        assert!(t.counters[Counter::CandidatesPruned.index()] <= 24);

        // Coarse counters through the generic assigner.
        let m = EuclideanMetric::new(&queries);
        let collector = Arc::new(Collector::new());
        let handle = collector.handle();
        let assigner = NearestAssigner::with_recorder(&m, ThreadBudget::serial(), &handle);
        assigner.assign(&ids, &[0, 4]);
        let t = collector.snapshot();
        assert_eq!(t.counters[Counter::KernelQueries.index()], 8);
        assert_eq!(t.counters[Counter::CandidatesScanned.index()], 16);
    }

    #[test]
    fn sq_dists_to_coords_matches_pointwise() {
        let points = ps(&[vec![0.0], vec![2.0], vec![-1.0]]);
        let mut out = Vec::new();
        sq_dists_to_coords(&points, &[2, 0, 1], &[1.0], &mut out, ThreadBudget::new(3));
        assert_eq!(out, vec![4.0, 1.0, 1.0]);
    }
}
