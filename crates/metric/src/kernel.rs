//! Bulk distance kernels: batched, pruned, optionally threaded
//! nearest-center evaluation.
//!
//! Every solver in the workspace bottoms out in "distance from one point
//! to many candidates" — assignment steps, farthest-first relaxation,
//! swap-delta evaluation, outlier scoring. Evaluating those as one-pair
//! [`Metric::dist`] calls pays the full `O(d)` per-coordinate cost for
//! every candidate, including the overwhelming majority that lose by a
//! mile. The bulk layer restructures the loop around three levers:
//!
//! * **norm-bound pruning** — [`EuclideanMetric`] assignment precomputes
//!   `‖c‖` per center once per block; `d(x,c) ≥ |‖x‖ − ‖c‖|` then rejects
//!   most losing candidates in O(1), before any per-coordinate work. On
//!   clustered data this is where the order of magnitude comes from.
//! * **the dot form** — survivors are scored as `‖x‖² + ‖c‖² − 2·x·c`
//!   with precomputed squared norms (cheaper and better-pipelined than
//!   the difference form), and only candidates whose score lands within a
//!   conservative error tolerance of the incumbent pay for an exact pass.
//! * **thread-level parallelism** — per-query results are independent, so
//!   chunks of queries fan out across a [`ThreadBudget`] with no change
//!   in any output value.
//!
//! Both pruning rules are margin-deflated so floating-point error can
//! never discard a true winner, and every surviving comparison runs on
//! the exact [`sq_dist`] summation under the same strict-`<`, first-wins
//! rule as the scalar path — selected ids, tie-breaks, and distance
//! values are bit-identical to the scalar loop, so the bulk layer is
//! drop-in for protocol code whose wire bytes depend on either.
//!
//! [`EuclideanMetric`]: crate::EuclideanMetric

use crate::metric::Metric;
use crate::points::{sq_dist, PointSet};
use dpc_obs::{Counter, RecorderHandle};

/// How many independent candidate accumulators the blocked kernels
/// interleave. Four `f64` chains cover the FMA latency/throughput gap on
/// every mainstream core without spilling registers.
pub const LANES: usize = 4;

/// Queries per work unit when a kernel is split across threads. Small
/// enough to balance uneven chunks, large enough that the per-spawn cost
/// disappears.
const MIN_CHUNK: usize = 256;

/// An explicit cap on the threads a bulk kernel may use.
///
/// Kernels default to [`ThreadBudget::serial`] so library calls never
/// oversubscribe by surprise: a `Sweep::grid` already runs one job per
/// worker thread, and the channel/TCP transports already run one thread
/// per site. Opt into intra-kernel parallelism where a single job owns the
/// machine (`Job::threads`, CLI `--threads`).
///
/// Threading never changes any output value: queries are split into
/// chunks, every per-query result is computed independently, and
/// reductions over queries stay on the calling thread in index order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadBudget(usize);

impl ThreadBudget {
    /// One thread: run on the caller, spawn nothing.
    pub fn serial() -> Self {
        Self(1)
    }

    /// Up to `n` threads (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Self(n.max(1))
    }

    /// One thread per available core.
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The thread cap.
    pub fn get(self) -> usize {
        self.0
    }

    /// True when the budget admits no worker threads.
    pub fn is_serial(self) -> bool {
        self.0 <= 1
    }
}

impl Default for ThreadBudget {
    fn default() -> Self {
        Self::serial()
    }
}

/// Runs `work(start, out_chunk)` over disjoint chunks of `out`, in
/// parallel up to the budget. `start` is the offset of the chunk within
/// `out`. Falls back to one inline call when the budget is serial or the
/// input is small. The building block for custom bulk passes whose
/// per-element results are independent (each chunk writes only its own
/// slice, so outputs are identical at any budget).
pub fn par_chunks_mut<T: Send>(
    budget: ThreadBudget,
    out: &mut [T],
    work: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = out.len();
    let threads = budget.get().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads <= 1 {
        work(0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let work = &work;
            scope.spawn(move || work(c * chunk, slice));
        }
    });
}

/// Like [`par_chunks_mut`] over three parallel output slices that must be
/// chunked identically (bound state, positions, distances).
pub(crate) fn par_chunks_mut3<A: Send, B: Send, C: Send>(
    budget: ThreadBudget,
    a: &mut [A],
    b: &mut [B],
    c: &mut [C],
    work: impl Fn(usize, &mut [A], &mut [B], &mut [C]) + Sync,
) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let n = a.len();
    let threads = budget.get().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads <= 1 {
        work(0, a, b, c);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let iter = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .zip(c.chunks_mut(chunk))
            .enumerate();
        for (i, ((sa, sb), sc)) in iter {
            let work = &work;
            scope.spawn(move || work(i * chunk, sa, sb, sc));
        }
    });
}

/// Like [`par_chunks_mut`] over two parallel output slices (positions and
/// distances) that must be chunked identically.
pub(crate) fn par_chunks_mut2<A: Send, B: Send>(
    budget: ThreadBudget,
    a: &mut [A],
    b: &mut [B],
    work: impl Fn(usize, &mut [A], &mut [B]) + Sync,
) {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let threads = budget.get().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads <= 1 {
        work(0, a, b);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, (sa, sb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let work = &work;
            scope.spawn(move || work(c * chunk, sa, sb));
        }
    });
}

/// A full point→center assignment: for each queried point, the position
/// (within the candidate slice) of its nearest center and the distance to
/// it, under the metric's own distance (squared for a squared metric).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment {
    /// Nearest-center position per query, into the candidate slice.
    pub pos: Vec<usize>,
    /// Distance to that center, per query.
    pub dist: Vec<f64>,
}

impl Assignment {
    /// An empty assignment to reuse across calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of assigned queries.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when nothing has been assigned.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Nearest *and* second-nearest distances per query — the state the
/// single-swap local search maintains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment2 {
    /// Nearest-center position per query.
    pub c1: Vec<usize>,
    /// Distance to the nearest center.
    pub d1: Vec<f64>,
    /// Distance to the second-nearest center (`∞` with one candidate).
    pub d2: Vec<f64>,
}

/// [`Assignment2`] with *both* positions: nearest and second-nearest
/// center per query under `(dist, position)` lexicographic order. Knowing
/// the runner-up's position is what lets the local search update its
/// state incrementally after a swap — an entry whose top-2 does not
/// involve the swapped slot merges the one new distance instead of
/// rescanning every center.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment2C {
    /// Nearest-center position per query.
    pub c1: Vec<usize>,
    /// Second-nearest-center position per query (0 with one candidate).
    pub c2: Vec<usize>,
    /// Distance to the nearest center.
    pub d1: Vec<f64>,
    /// Distance to the second-nearest center (`∞` with one candidate).
    pub d2: Vec<f64>,
}

impl Assignment2C {
    /// Number of assigned queries.
    pub fn len(&self) -> usize {
        self.c1.len()
    }

    /// True when nothing has been assigned.
    pub fn is_empty(&self) -> bool {
        self.c1.is_empty()
    }
}

/// Batched nearest-center evaluation over a [`Metric`].
///
/// Dispatches to the metric's blocked kernels ([`Metric::assign_block`]
/// and friends) chunk by chunk, fanning chunks across the thread budget.
/// All outputs — selected positions, tie-breaks, and distance values —
/// are identical to the scalar `metric.nearest(i, centers)` loop,
/// regardless of the budget.
#[derive(Clone, Copy, Debug)]
pub struct NearestAssigner<'a, M: Metric + ?Sized> {
    metric: &'a M,
    threads: ThreadBudget,
    recorder: Option<&'a RecorderHandle>,
}

impl<'a, M: Metric + ?Sized> NearestAssigner<'a, M> {
    /// A serial assigner (no worker threads).
    pub fn new(metric: &'a M) -> Self {
        Self {
            metric,
            threads: ThreadBudget::serial(),
            recorder: None,
        }
    }

    /// An assigner with an explicit thread budget.
    pub fn with_threads(metric: &'a M, threads: ThreadBudget) -> Self {
        Self {
            metric,
            threads,
            recorder: None,
        }
    }

    /// An assigner that flushes query/candidate counters to `recorder`
    /// (one amortized flush per bulk call — coarse counts, since generic
    /// metrics hide their pruning decisions behind the trait).
    pub fn with_recorder(
        metric: &'a M,
        threads: ThreadBudget,
        recorder: &'a RecorderHandle,
    ) -> Self {
        Self {
            metric,
            threads,
            recorder: Some(recorder),
        }
    }

    /// The thread budget in effect.
    pub fn threads(&self) -> ThreadBudget {
        self.threads
    }

    /// Flushes one bulk call's worth of coarse counters (`queries`
    /// queries over `candidates` candidates each).
    #[inline]
    fn tally(&self, queries: usize, candidates: usize) {
        if let Some(rec) = self.recorder {
            if rec.enabled() {
                rec.add(Counter::KernelQueries, queries as u64);
                rec.add(Counter::CandidatesScanned, (queries * candidates) as u64);
            }
        }
    }

    /// Assigns every id to its nearest candidate in `centers`.
    pub fn assign(&self, ids: &[usize], centers: &[usize]) -> Assignment {
        let mut out = Assignment::new();
        self.assign_into(ids, centers, &mut out);
        out
    }

    /// [`Self::assign`] into a reusable buffer.
    pub fn assign_into(&self, ids: &[usize], centers: &[usize], out: &mut Assignment) {
        assert!(!centers.is_empty(), "assign requires candidates");
        out.pos.clear();
        out.pos.resize(ids.len(), 0);
        out.dist.clear();
        out.dist.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut2(self.threads, &mut out.pos, &mut out.dist, |start, p, d| {
            metric.assign_block(&ids[start..start + p.len()], centers, p, d);
        });
        self.tally(ids.len(), centers.len());
    }

    /// Like [`Self::assign`], but distances are the metric's *squared*
    /// distances (positions and ties are unchanged — squaring is monotone).
    pub fn assign_sq(&self, ids: &[usize], centers: &[usize]) -> Assignment {
        assert!(!centers.is_empty(), "assign requires candidates");
        let mut out = Assignment::new();
        out.pos.resize(ids.len(), 0);
        out.dist.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut2(self.threads, &mut out.pos, &mut out.dist, |start, p, d| {
            metric.assign_block_sq(&ids[start..start + p.len()], centers, p, d);
        });
        self.tally(ids.len(), centers.len());
        out
    }

    /// Nearest and second-nearest per id — the local-search state update.
    pub fn assign2(&self, ids: &[usize], centers: &[usize]) -> Assignment2 {
        let mut out = Assignment2 {
            c1: vec![0; ids.len()],
            d1: vec![f64::INFINITY; ids.len()],
            d2: vec![f64::INFINITY; ids.len()],
        };
        if centers.is_empty() {
            return out;
        }
        let metric = self.metric;
        let n = ids.len();
        self.tally(n, centers.len());
        let threads = self.threads.get().min(n.div_ceil(MIN_CHUNK)).max(1);
        if threads <= 1 {
            metric.assign2_block(ids, centers, &mut out.c1, &mut out.d1, &mut out.d2);
            return out;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let iter = out
                .c1
                .chunks_mut(chunk)
                .zip(out.d1.chunks_mut(chunk))
                .zip(out.d2.chunks_mut(chunk))
                .enumerate();
            for (c, ((sc, sd1), sd2)) in iter {
                let start = c * chunk;
                scope.spawn(move || {
                    metric.assign2_block(&ids[start..start + sc.len()], centers, sc, sd1, sd2);
                });
            }
        });
        out
    }

    /// Like [`Self::assign2`], but reporting the second-nearest *position*
    /// too ([`Metric::assign2c_block`] per chunk) — the state the
    /// incremental local-search update maintains.
    pub fn assign2c(&self, ids: &[usize], centers: &[usize]) -> Assignment2C {
        let mut out = Assignment2C {
            c1: vec![0; ids.len()],
            c2: vec![0; ids.len()],
            d1: vec![f64::INFINITY; ids.len()],
            d2: vec![f64::INFINITY; ids.len()],
        };
        if centers.is_empty() {
            return out;
        }
        let metric = self.metric;
        let n = ids.len();
        self.tally(n, centers.len());
        let threads = self.threads.get().min(n.div_ceil(MIN_CHUNK)).max(1);
        if threads <= 1 {
            metric.assign2c_block(
                ids,
                centers,
                &mut out.c1,
                &mut out.c2,
                &mut out.d1,
                &mut out.d2,
            );
            return out;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let iter = out
                .c1
                .chunks_mut(chunk)
                .zip(out.c2.chunks_mut(chunk))
                .zip(out.d1.chunks_mut(chunk))
                .zip(out.d2.chunks_mut(chunk))
                .enumerate();
            for (c, (((sc1, sc2), sd1), sd2)) in iter {
                let start = c * chunk;
                scope.spawn(move || {
                    metric.assign2c_block(
                        &ids[start..start + sc1.len()],
                        centers,
                        sc1,
                        sc2,
                        sd1,
                        sd2,
                    );
                });
            }
        });
        out
    }

    /// Distances from one anchor to every id, in id order — the bulk form
    /// of the farthest-first relax step and the swap-delta inner loop.
    pub fn dists_from(&self, from: usize, ids: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut(self.threads, out, |start, d| {
            metric.dist_to_many_into(from, &ids[start..start + d.len()], d);
        });
        self.tally(ids.len(), 1);
    }

    /// Squared-distance variant of [`Self::dists_from`].
    pub fn sq_dists_from(&self, from: usize, ids: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        let metric = self.metric;
        par_chunks_mut(self.threads, out, |start, d| {
            metric.sq_dist_to_many_into(from, &ids[start..start + d.len()], d);
        });
        self.tally(ids.len(), 1);
    }

    /// Relaxes nearest-candidate state against a new candidate `c` in
    /// bulk ([`Metric::relax_min_block`] per chunk): wherever
    /// `dist(id, c) < best_d`, writes the distance and `mark`. The
    /// farthest-first traversal's inner loop.
    pub fn relax_min(
        &self,
        c: usize,
        ids: &[usize],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        let metric = self.metric;
        par_chunks_mut2(self.threads, best_d, best_pos, |start, bd, bp| {
            metric.relax_min_block(c, &ids[start..start + bd.len()], bd, bp, mark);
        });
        self.tally(ids.len(), 1);
    }

    /// [`Self::relax_min`] with precomputed per-query root norms
    /// (`norms[e] = ‖x_{ids[e]}‖`, from [`Metric::relax_norms`]): metrics
    /// that can exploit them skip queries in O(1) via the reverse
    /// triangle inequality before any per-coordinate work. Empty `norms`
    /// (a metric with no such bound) degrades to [`Self::relax_min`].
    /// State is identical to the scalar relax loop either way.
    pub fn relax_min_bounded(
        &self,
        c: usize,
        ids: &[usize],
        norms: &[f64],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        debug_assert!(norms.is_empty() || norms.len() == ids.len());
        let metric = self.metric;
        par_chunks_mut2(self.threads, best_d, best_pos, |start, bd, bp| {
            let nchunk = if norms.is_empty() {
                &[][..]
            } else {
                &norms[start..start + bd.len()]
            };
            metric.relax_min_block_bounded(c, &ids[start..start + bd.len()], nchunk, bd, bp, mark);
        });
        self.tally(ids.len(), 1);
    }
}

// ---------------------------------------------------------------------------
// Flat Euclidean kernels shared by EuclideanMetric and CenterBlock.
// ---------------------------------------------------------------------------

/// Exact per-pair squared distances from one query row to `LANES`-blocked
/// candidate rows in a gathered `k × dim` buffer. Each pair keeps the
/// scalar summation order; blocking only interleaves independent pairs.
pub(crate) fn sq_dists_row(x: &[f64], rows: &[f64], dim: usize, out: &mut [f64]) {
    debug_assert_eq!(rows.len(), dim * out.len());
    let k = out.len();
    let mut c = 0;
    while c + LANES <= k {
        let base = c * dim;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (d, &xd) in x.iter().enumerate() {
            let e0 = xd - rows[base + d];
            let e1 = xd - rows[base + dim + d];
            let e2 = xd - rows[base + 2 * dim + d];
            let e3 = xd - rows[base + 3 * dim + d];
            a0 += e0 * e0;
            a1 += e1 * e1;
            a2 += e2 * e2;
            a3 += e3 * e3;
        }
        out[c] = a0;
        out[c + 1] = a1;
        out[c + 2] = a2;
        out[c + 3] = a3;
        c += LANES;
    }
    while c < k {
        out[c] = sq_dist(x, &rows[c * dim..(c + 1) * dim]);
        c += 1;
    }
}

/// Exact per-pair squared distances from the coordinate row `x` to the
/// scattered rows `js` of `points`, `LANES` pairs in flight. Per-pair
/// summation order matches [`sq_dist`] exactly.
pub(crate) fn sq_dists_scattered(points: &PointSet, x: &[f64], js: &[usize], out: &mut [f64]) {
    debug_assert_eq!(js.len(), out.len());
    let k = js.len();
    let mut c = 0;
    while c + LANES <= k {
        let r0 = points.point(js[c]);
        let r1 = points.point(js[c + 1]);
        let r2 = points.point(js[c + 2]);
        let r3 = points.point(js[c + 3]);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (d, &xd) in x.iter().enumerate() {
            let e0 = xd - r0[d];
            let e1 = xd - r1[d];
            let e2 = xd - r2[d];
            let e3 = xd - r3[d];
            a0 += e0 * e0;
            a1 += e1 * e1;
            a2 += e2 * e2;
            a3 += e3 * e3;
        }
        out[c] = a0;
        out[c + 1] = a1;
        out[c + 2] = a2;
        out[c + 3] = a3;
        c += LANES;
    }
    while c < k {
        out[c] = sq_dist(x, points.point(js[c]));
        c += 1;
    }
}

/// The gathered, norm-annotated candidate rows the pruned kernels scan:
/// contiguous row-major coordinates plus the precomputed norms `‖c‖`
/// behind the O(1) lower bound.
pub(crate) struct GatheredRows {
    pub rows: Vec<f64>,
    pub root_norms: Vec<f64>,
    pub sq_norms: Vec<f64>,
}

/// Gathers the listed rows of `points` (the center-side precomputation of
/// the pruned kernels).
pub(crate) fn gather_rows(points: &PointSet, ids: &[usize]) -> GatheredRows {
    let dim = points.dim();
    let mut rows = Vec::with_capacity(ids.len() * dim);
    let mut root_norms = Vec::with_capacity(ids.len());
    let mut sq_norms = Vec::with_capacity(ids.len());
    for &i in ids {
        let r = points.point(i);
        rows.extend_from_slice(r);
        let n: f64 = r.iter().map(|&v| v * v).sum();
        root_norms.push(n.sqrt());
        sq_norms.push(n);
    }
    GatheredRows {
        rows,
        root_norms,
        sq_norms,
    }
}

/// Dot product with interleaved accumulators — used only for the
/// *approximate* `‖x‖` behind the margin-deflated norm bound, so
/// reassociating the sum is fine (exact decisions always go back through
/// [`sq_dist`]).
fn dot_approx(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut d = 0;
    while d + LANES <= n {
        acc[0] += a[d] * b[d];
        acc[1] += a[d + 1] * b[d + 1];
        acc[2] += a[d + 2] * b[d + 2];
        acc[3] += a[d + 3] * b[d + 3];
        d += LANES;
    }
    let mut tail = 0.0;
    while d < n {
        tail += a[d] * b[d];
        d += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Safety margin for the O(1) norm bound: the bound must beat the
/// incumbent by this relative factor before a candidate is skipped.
/// Floating-point error in `‖x‖` / `‖c‖` is a few ulps; the 1e-9 margin
/// over-covers it by orders of magnitude, so the bound can never discard
/// a true winner.
const PRUNE_MARGIN: f64 = 1.0 - 1e-9;

/// Leading coordinates used by the candidate-ordering screen. Two
/// coordinates are enough to separate real cluster structure and keep the
/// screen pass at ~half the cost of a four-wide one.
const SCREEN_DIMS: usize = 2;

/// Coordinates accumulated between abort checks of a partial sum.
const ABORT_STRIDE: usize = 8;

/// Resumes the canonical [`sq_dist`] accumulation of `x` vs `row` from
/// `acc` at coordinate `start`, aborting once the partial sum strictly
/// exceeds `limit`. Partial sums of squares are monotone, so an abort
/// proves the full sum exceeds `limit` — **exactly**, no tolerance.
/// A completed sum is bit-identical to [`sq_dist`] (same single
/// accumulator, same coordinate order).
#[inline]
pub(crate) fn resume_sq_abort(
    x: &[f64],
    row: &[f64],
    mut acc: f64,
    start: usize,
    limit: f64,
) -> Option<f64> {
    let n = x.len();
    debug_assert_eq!(row.len(), n);
    let mut d = start;
    while d < n {
        let stop = (d + ABORT_STRIDE).min(n);
        while d < stop {
            let e = x[d] - row[d];
            acc += e * e;
            d += 1;
        }
        if acc > limit {
            return None;
        }
    }
    Some(acc)
}

/// Local tally of pruning effectiveness for one batch of pruned-kernel
/// queries. Call sites accumulate into a plain stack value and flush the
/// totals to a recorder once per batch (never per candidate), keeping
/// the disabled-recorder path free of any shared-state traffic.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ScanStats {
    /// Candidate centers considered (k per query).
    pub scanned: u64,
    /// Candidates whose exact sum ran to completion; the rest were
    /// pruned by an O(1) bound or a partial-distance abort.
    pub completed: u64,
    /// Approximate candidate scores produced by the tiled dot-form
    /// micro-kernel (rows × centers pushed through the tiles).
    pub tiled: u64,
    /// Queries whose full candidate scan was skipped outright because
    /// maintained triangle-inequality bounds already proved the winner.
    pub bound_skips: u64,
}

impl ScanStats {
    /// Flushes `queries` queries' worth of tallies to `rec` if it is
    /// enabled (one branch on the disabled path).
    #[inline]
    pub fn flush(self, rec: &RecorderHandle, queries: u64) {
        if rec.enabled() {
            rec.add(Counter::KernelQueries, queries);
            rec.add(Counter::CandidatesScanned, self.scanned);
            rec.add(
                Counter::CandidatesPruned,
                self.scanned.saturating_sub(self.completed),
            );
            if self.tiled > 0 {
                rec.add(Counter::TileScores, self.tiled);
            }
            if self.bound_skips > 0 {
                rec.add(Counter::BoundSkips, self.bound_skips);
            }
        }
    }
}

/// Finds the nearest candidate row to `x` with partial-distance search.
///
/// The scan is restructured around three exact-safe filters, cheapest
/// first:
///
/// 1. **screen + best-first probe** — the first [`SCREEN_DIMS`] terms of
///    every candidate's (canonical-order) squared sum are computed up
///    front; the candidate with the smallest screen is evaluated first,
///    which makes the incumbent tight almost immediately. Screens are
///    partial sums, so any candidate whose screen already exceeds the
///    incumbent is rejected in O(1).
/// 2. **norm bound** — `d²(x,c) ≥ (‖x‖ − ‖c‖)²` from the precomputed
///    center norms (the Cauchy–Schwarz estimate of the
///    `‖x‖² + ‖c‖² − 2·x·c` form) rejects a candidate in O(1).
/// 3. **partial-distance abort** — survivors resume their exact sum from
///    the screen prefix and bail the moment the partial sum exceeds the
///    incumbent ([`resume_sq_abort`]).
///
/// Winners are compared as `(sq, position)` lexicographically, which
/// reproduces the scalar strict-`<` first-wins rule under *any* visit
/// order — the returned `(pos, exact_sq)` is bit-identical to the scalar
/// scan at any data distribution; pruning only changes how much work
/// losing candidates cost.
pub(crate) fn nearest_row_pruned(
    x: &[f64],
    rows: &[f64],
    root_norms: &[f64],
    dim: usize,
    screen: &mut Vec<f64>,
    stats: &mut ScanStats,
) -> (usize, f64) {
    let k = root_norms.len();
    debug_assert!(k > 0);
    stats.scanned += k as u64;
    // Tiny rows or candidate sets: the screen/abort machinery cannot pay
    // for itself below one abort stride — the plain exact scan wins.
    if dim <= ABORT_STRIDE || k <= 2 {
        stats.completed += k as u64;
        let mut best = (0usize, f64::INFINITY);
        for (c, row) in rows.chunks_exact(dim).enumerate() {
            let sq = sq_dist(x, row);
            if sq < best.1 {
                best = (c, sq);
            }
        }
        return best;
    }
    let (probe, _) = fill_screen(x, rows, dim, k, screen);

    // Probe the screen-minimal candidate first: a tight incumbent makes
    // the O(1) screen test reject almost everything else.
    let mut best_pos = probe;
    let mut best_sq = resume_sq_abort(
        x,
        &rows[probe * dim..(probe + 1) * dim],
        screen[probe],
        SCREEN_DIMS,
        f64::INFINITY,
    )
    .expect("infinite limit never aborts");
    stats.completed += 1;

    // The probe is done: poison its screen so the main scan's single
    // comparison skips it along with everything else that lost.
    screen[probe] = f64::INFINITY;
    // `‖x‖` backs the norm bound but costs O(dim); compute it only if
    // some candidate actually survives the screen test.
    let mut sx = f64::NAN;
    for (c, &prefix) in screen.iter().enumerate() {
        if prefix > best_sq {
            continue;
        }
        if sx.is_nan() {
            sx = dot_approx(x, x).sqrt();
        }
        let diff = sx - root_norms[c];
        if diff * diff * PRUNE_MARGIN > best_sq {
            continue;
        }
        let row = &rows[c * dim..(c + 1) * dim];
        if let Some(sq) = resume_sq_abort(x, row, prefix, SCREEN_DIMS, best_sq) {
            stats.completed += 1;
            if sq < best_sq || (sq == best_sq && c < best_pos) {
                best_sq = sq;
                best_pos = c;
            }
        }
    }
    (best_pos, best_sq)
}

/// Computes the [`SCREEN_DIMS`]-coordinate prefix of every candidate's
/// canonical squared sum, returning the positions of the smallest and
/// second-smallest screens.
#[inline]
fn fill_screen(
    x: &[f64],
    rows: &[f64],
    dim: usize,
    k: usize,
    screen: &mut Vec<f64>,
) -> (usize, usize) {
    screen.clear();
    screen.resize(k, 0.0);
    // Unrolled canonical prefix: the additions run in the exact order
    // `sq_dist` uses, so a screen is resumable into the full exact sum.
    let (x0, x1) = (x[0], x[1]);
    let (mut min1, mut min2) = (0usize, 0usize);
    let (mut v1, mut v2) = (f64::INFINITY, f64::INFINITY);
    for (c, (sc, row)) in screen.iter_mut().zip(rows.chunks_exact(dim)).enumerate() {
        let r = &row[..SCREEN_DIMS];
        let e0 = x0 - r[0];
        let e1 = x1 - r[1];
        let mut acc = e0 * e0;
        acc += e1 * e1;
        *sc = acc;
        if acc < v1 {
            v2 = v1;
            min2 = min1;
            v1 = acc;
            min1 = c;
        } else if acc < v2 {
            v2 = acc;
            min2 = c;
        }
    }
    (min1, min2)
}

/// Top-2 variant of [`nearest_row_pruned`]: candidates are pruned against
/// the *second*-nearest incumbent (they must beat it to affect either
/// slot); both slots update under `(sq, position)` lexicographic order,
/// which is visit-order independent — the winner is the lex-least pair
/// and the runner-up the lex-least among the rest — so winner, runner-up,
/// both positions, and all tie-breaks match the scalar position-order
/// loop exactly. Returns `(c1, c2, sq1, sq2)`.
pub(crate) fn top2_row_pruned(
    x: &[f64],
    rows: &[f64],
    root_norms: &[f64],
    dim: usize,
    screen: &mut Vec<f64>,
    stats: &mut ScanStats,
) -> (usize, usize, f64, f64) {
    let k = root_norms.len();
    debug_assert!(k > 0);
    stats.scanned += k as u64;
    let two_slot =
        |c1: &mut usize, c2: &mut usize, b1: &mut f64, b2: &mut f64, c: usize, sq: f64| {
            if sq < *b1 || (sq == *b1 && c < *c1) {
                *b2 = *b1;
                *c2 = *c1;
                *b1 = sq;
                *c1 = c;
            } else if sq < *b2 || (sq == *b2 && c < *c2) {
                *b2 = sq;
                *c2 = c;
            }
        };
    let (mut c1, mut c2, mut b1, mut b2) = (0usize, 0usize, f64::INFINITY, f64::INFINITY);
    if dim <= ABORT_STRIDE || k <= 2 {
        stats.completed += k as u64;
        for (c, row) in rows.chunks_exact(dim).enumerate() {
            let sq = sq_dist(x, row);
            two_slot(&mut c1, &mut c2, &mut b1, &mut b2, c, sq);
        }
        return (c1, c2, b1, b2);
    }
    let (probe1, probe2) = fill_screen(x, rows, dim, k, screen);
    for probe in [probe1, probe2] {
        let sq = resume_sq_abort(
            x,
            &rows[probe * dim..(probe + 1) * dim],
            screen[probe],
            SCREEN_DIMS,
            f64::INFINITY,
        )
        .expect("infinite limit never aborts");
        stats.completed += 1;
        two_slot(&mut c1, &mut c2, &mut b1, &mut b2, probe, sq);
    }
    screen[probe1] = f64::INFINITY;
    screen[probe2] = f64::INFINITY;
    let mut sx = f64::NAN;
    for (c, &prefix) in screen.iter().enumerate() {
        if prefix > b2 {
            continue;
        }
        if sx.is_nan() {
            sx = dot_approx(x, x).sqrt();
        }
        let diff = sx - root_norms[c];
        if diff * diff * PRUNE_MARGIN > b2 {
            continue;
        }
        let row = &rows[c * dim..(c + 1) * dim];
        if let Some(sq) = resume_sq_abort(x, row, prefix, SCREEN_DIMS, b2) {
            stats.completed += 1;
            two_slot(&mut c1, &mut c2, &mut b1, &mut b2, c, sq);
        }
    }
    (c1, c2, b1, b2)
}

// ---------------------------------------------------------------------------
// Tiled GEMM-style assignment (kernel layer v2).
// ---------------------------------------------------------------------------

/// Query rows one GEMM-style tile carries through the candidate block.
/// Four queries reuse every center row four times from registers, and the
/// four dot accumulators form one contiguous lane vector the compiler can
/// keep in SIMD registers.
pub const TILE_Q: usize = 4;

/// Relative coefficient of the tiled score's absolute error envelope
/// `E = TILE_EPS · (‖x‖ + max‖c‖)²`. The reassociated dot form's true error
/// is below `dim · ε · (‖x‖ + ‖c‖)²` with `ε = 2⁻⁵²` — under 3e-12 even
/// at dim 10⁴ — so 1e-9 over-covers it by orders of magnitude. Only
/// candidates whose score lands within the envelope of the incumbent pay
/// for an exact pass, and every exact pass runs the canonical
/// [`sq_dist`] order, so winners stay bit-identical to the scalar scan.
const TILE_EPS: f64 = 1e-9;

/// Smallest candidate count at which the tiled dot-form pass engages:
/// below it the tile transpose and score buffer cannot amortize.
const TILE_MIN_K: usize = 8;

/// Largest dimension routed to the *exact* blocked kernel instead of the
/// dot form. At very small dimensions the dot form's exactness repair
/// (score buffer, incumbent resolve, margin pass) costs more than the
/// distance arithmetic itself, while the direct `(x−c)²` tile is the
/// scalar loop verbatim — just four lanes wide.
const TILE_EXACT_MAX_DIM: usize = 4;

/// Whether a register-blocked tile path beats the screened
/// partial-distance scan for this shape. At and below [`ABORT_STRIDE`]
/// coordinates the screen/abort machinery cannot pay for itself (the
/// per-query scan is a plain exact loop), while the tile turns the same
/// work into `TILE_Q` register-blocked rows per center — that band is
/// where GEMM-style blocking wins. Above it, the screened scan touches
/// only a handful of coordinates per losing candidate, which no amount
/// of vectorized full-row work can undercut.
#[inline]
pub(crate) fn tiled_engages(dim: usize, k: usize) -> bool {
    dim > 2 && dim <= ABORT_STRIDE && k >= TILE_MIN_K
}

/// Exact register-blocked assignment for the smallest dimensions:
/// [`TILE_Q`] query lanes march through every candidate row accumulating
/// `(x−c)²` in the canonical left-to-right coordinate order, so each
/// lane's arithmetic is *identical* to the scalar [`sq_dist`] loop and
/// outputs are bit-exact by construction — no score buffer, no error
/// envelope, no resolve pass. The four independent accumulator chains
/// supply the instruction-level parallelism the one-query-at-a-time
/// scalar loop lacks, and each center row is loaded once per tile.
fn assign_sq_tiled_exact(
    points: &PointSet,
    ids: &[usize],
    rows: &[f64],
    dim: usize,
    pos: &mut [usize],
    dist: &mut [f64],
    stats: &mut ScanStats,
) {
    let k = rows.len() / dim;
    let n = ids.len();
    debug_assert_eq!(pos.len(), n);
    debug_assert_eq!(dist.len(), n);
    let mut xt = vec![0.0f64; dim * TILE_Q];
    let mut q = 0usize;
    while q < n {
        let tq = TILE_Q.min(n - q);
        for t in 0..TILE_Q {
            // Short tails repeat the tile's first query: the lanes stay
            // full and the duplicate outputs are simply not read back.
            let x = points.point(ids[q + t.min(tq - 1)]);
            for (d, &xv) in x.iter().enumerate() {
                xt[d * TILE_Q + t] = xv;
            }
        }
        let mut best = [f64::INFINITY; TILE_Q];
        let mut bpos = [0usize; TILE_Q];
        for (c, row) in rows.chunks_exact(dim).enumerate() {
            let mut acc = [0.0f64; TILE_Q];
            for (xv, &rv) in xt.chunks_exact(TILE_Q).zip(row) {
                let d0 = xv[0] - rv;
                let d1 = xv[1] - rv;
                let d2 = xv[2] - rv;
                let d3 = xv[3] - rv;
                acc[0] += d0 * d0;
                acc[1] += d1 * d1;
                acc[2] += d2 * d2;
                acc[3] += d3 * d3;
            }
            for (t, &a) in acc.iter().enumerate() {
                // Strict `<` keeps the earliest candidate on ties: the
                // scalar scan's `(sq, position)` lexicographic rule.
                if a < best[t] {
                    best[t] = a;
                    bpos[t] = c;
                }
            }
        }
        stats.scanned += (tq * k) as u64;
        stats.completed += (tq * k) as u64;
        stats.tiled += (tq * k) as u64;
        pos[q..q + tq].copy_from_slice(&bpos[..tq]);
        dist[q..q + tq].copy_from_slice(&best[..tq]);
        q += tq;
    }
}

/// Scores one transposed query tile against every candidate row in the
/// dot form `‖x‖² + ‖c‖² − 2·x·c`. `xt` is the tile laid out lane-major
/// (`dim × TILE_Q`): the inner loop broadcasts one center coordinate
/// against a contiguous [`TILE_Q`]-lane query vector — the GEMM
/// micro-kernel shape LLVM autovectorizes — and each center row is
/// loaded once for all four queries. Scores land candidate-major at
/// `scores[c * TILE_Q + t]` so each candidate stores one contiguous
/// [`TILE_Q`]-wide vector; they are *approximate* (reassociated) and
/// only ever feed the margin test in [`nearest_from_scores`].
#[allow(clippy::too_many_arguments)]
fn tile_score_block(
    xt: &[f64],
    xnorm_sq: &[f64; TILE_Q],
    rows: &[f64],
    sq_norms: &[f64],
    dim: usize,
    scores: &mut [f64],
    amin: &mut [f64; TILE_Q],
    apos: &mut [usize; TILE_Q],
) {
    let k = sq_norms.len();
    debug_assert_eq!(xt.len(), dim * TILE_Q);
    debug_assert_eq!(scores.len(), TILE_Q * k);
    *amin = [f64::INFINITY; TILE_Q];
    *apos = [0usize; TILE_Q];
    for (c, ((row, &cn), out)) in rows
        .chunks_exact(dim)
        .zip(sq_norms)
        .zip(scores.chunks_exact_mut(TILE_Q))
        .enumerate()
    {
        let mut acc = [0.0f64; TILE_Q];
        for (xv, &rv) in xt.chunks_exact(TILE_Q).zip(row) {
            acc[0] += xv[0] * rv;
            acc[1] += xv[1] * rv;
            acc[2] += xv[2] * rv;
            acc[3] += xv[3] * rv;
        }
        for (t, (o, (&xn, &a))) in out.iter_mut().zip(xnorm_sq.iter().zip(&acc)).enumerate() {
            let s = xn + cn - 2.0 * a;
            *o = s;
            if s < amin[t] {
                amin[t] = s;
                apos[t] = c;
            }
        }
    }
}

/// Resolves one query's winner from its lane of a candidate-major score
/// buffer. The minimal approximate score (`ap`, tracked during scoring)
/// is resolved exactly first — a tight incumbent — then every candidate
/// must beat the incumbent by more than `env`, the query's hoisted
/// absolute error envelope, to earn an exact pass. Winners compare as
/// `(sq, position)` lexicographic over exact canonical sums, so the
/// result is bit-identical to the scalar scan.
#[allow(clippy::too_many_arguments)]
fn nearest_from_scores(
    x: &[f64],
    rows: &[f64],
    dim: usize,
    env: f64,
    scores: &[f64],
    lane: usize,
    ap: usize,
    stats: &mut ScanStats,
) -> (usize, f64) {
    let k = scores.len() / TILE_Q;
    debug_assert!(k > 0);
    stats.scanned += k as u64;
    let mut best_pos = ap;
    let mut best_sq = resume_sq_abort(x, &rows[ap * dim..(ap + 1) * dim], 0.0, 0, f64::INFINITY)
        .expect("infinite limit never aborts");
    stats.completed += 1;
    for (c, s) in scores.chunks_exact(TILE_Q).enumerate() {
        if c == ap || s[lane] - env > best_sq {
            continue;
        }
        let row = &rows[c * dim..(c + 1) * dim];
        if let Some(sq) = resume_sq_abort(x, row, 0.0, 0, best_sq) {
            stats.completed += 1;
            if sq < best_sq || (sq == best_sq && c < best_pos) {
                best_sq = sq;
                best_pos = c;
            }
        }
    }
    (best_pos, best_sq)
}

/// Tiled nearest-center assignment over gathered candidate rows. At and
/// below [`TILE_EXACT_MAX_DIM`] coordinates queries take the direct
/// exact tile ([`assign_sq_tiled_exact`]); above it they stream through
/// the dot-form [`tile_score_block`] in tiles of [`TILE_Q`] and winners
/// resolve exactly through [`nearest_from_scores`]. Either way outputs
/// (positions, exact squared distances, tie-breaks) are bit-identical to
/// the scalar scan; only the cost of losing candidates changes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assign_sq_tiled(
    points: &PointSet,
    ids: &[usize],
    rows: &[f64],
    root_norms: &[f64],
    sq_norms: &[f64],
    dim: usize,
    pos: &mut [usize],
    dist: &mut [f64],
    stats: &mut ScanStats,
) {
    if dim <= TILE_EXACT_MAX_DIM {
        return assign_sq_tiled_exact(points, ids, rows, dim, pos, dist, stats);
    }
    let k = sq_norms.len();
    let n = ids.len();
    debug_assert_eq!(pos.len(), n);
    debug_assert_eq!(dist.len(), n);
    // One conservative norm bound covers every candidate, so the error
    // envelope hoists to a single multiply per query instead of two per
    // candidate. Widening `‖c‖` to `max ‖c‖` only enlarges the envelope,
    // which can never flip an exact-vs-skip decision the wrong way.
    let rmax = root_norms.iter().fold(0.0f64, |a, &b| a.max(b));
    let mut xt = vec![0.0f64; dim * TILE_Q];
    let mut scores = vec![0.0f64; TILE_Q * k];
    let mut q = 0usize;
    while q < n {
        let tq = TILE_Q.min(n - q);
        let mut xnorm = [0.0f64; TILE_Q];
        let mut env = [0.0f64; TILE_Q];
        let mut amin = [0.0f64; TILE_Q];
        let mut apos = [0usize; TILE_Q];
        for t in 0..TILE_Q {
            // Short tails repeat the tile's first query: the lanes stay
            // full and the duplicate outputs are simply not read back.
            let x = points.point(ids[q + t.min(tq - 1)]);
            for (d, &xv) in x.iter().enumerate() {
                xt[d * TILE_Q + t] = xv;
            }
            let nsq = dot_approx(x, x);
            xnorm[t] = nsq;
            let spread = nsq.sqrt() + rmax;
            env[t] = TILE_EPS * spread * spread;
        }
        tile_score_block(
            &xt,
            &xnorm,
            rows,
            sq_norms,
            dim,
            &mut scores,
            &mut amin,
            &mut apos,
        );
        stats.tiled += (tq * k) as u64;
        for t in 0..tq {
            let x = points.point(ids[q + t]);
            let (bp, bsq) = nearest_from_scores(x, rows, dim, env[t], &scores, t, apos[t], stats);
            pos[q + t] = bp;
            dist[q + t] = bsq;
        }
        q += tq;
    }
}

pub struct CenterBlock {
    dim: usize,
    rows: Vec<f64>,
    root_norms: Vec<f64>,
    sq_norms: Vec<f64>,
    recorder: RecorderHandle,
}

impl CenterBlock {
    /// Gathers all points of `centers`.
    pub fn new(centers: &PointSet) -> Self {
        Self::from_flat(centers.dim(), centers.as_flat().to_vec())
    }

    /// Gathers the given rows of `points`.
    pub fn from_points(points: &PointSet, ids: &[usize]) -> Self {
        let dim = points.dim();
        let mut rows = Vec::with_capacity(ids.len() * dim);
        for &i in ids {
            rows.extend_from_slice(points.point(i));
        }
        Self::from_flat(dim, rows)
    }

    /// Gathers explicit coordinate rows.
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Self {
        let mut flat = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "center row dimension mismatch");
            flat.extend_from_slice(r);
        }
        Self::from_flat(dim, flat)
    }

    fn from_flat(dim: usize, rows: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            rows.len().is_multiple_of(dim),
            "flat center buffer length mismatch"
        );
        let sq_norms: Vec<f64> = rows
            .chunks_exact(dim)
            .map(|r| r.iter().map(|&v| v * v).sum::<f64>())
            .collect();
        let root_norms: Vec<f64> = sq_norms.iter().map(|&n| n.sqrt()).collect();
        Self {
            dim,
            rows,
            root_norms,
            sq_norms,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches a recorder: the block's pruned scans flush *exact*
    /// query/scan/prune counters to it, one flush per query batch.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Number of centers in the block.
    pub fn len(&self) -> usize {
        self.root_norms.len()
    }

    /// True when the block holds no centers.
    pub fn is_empty(&self) -> bool {
        self.root_norms.is_empty()
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Nearest center to one coordinate row: `(position, exact squared
    /// distance)`. Uses the pruned dot-form kernel with exact winner
    /// resolution.
    ///
    /// # Panics
    /// Panics when the block is empty.
    pub fn nearest_sq(&self, coords: &[f64]) -> (usize, f64) {
        assert!(!self.is_empty(), "nearest over an empty center block");
        let mut screen = Vec::with_capacity(self.len());
        let mut stats = ScanStats::default();
        let best = nearest_row_pruned(
            coords,
            &self.rows,
            &self.root_norms,
            self.dim,
            &mut screen,
            &mut stats,
        );
        stats.flush(&self.recorder, 1);
        best
    }

    /// Assigns the given rows of `points` to their nearest centers;
    /// distances are Euclidean (`sqrt` of the exact squared distance, so
    /// values match the scalar path bit for bit).
    pub fn assign(&self, points: &PointSet, ids: &[usize], threads: ThreadBudget) -> Assignment {
        let mut out = self.assign_sq(points, ids, threads);
        for d in &mut out.dist {
            *d = d.sqrt();
        }
        out
    }

    /// Assigns the given rows of `points` to their nearest centers with
    /// exact *squared* distances (the means/Lloyd form — no square roots
    /// anywhere on the path).
    ///
    /// Dispatches per shape: low-dimensional blocks (where the screened
    /// partial-distance scan cannot pay for itself) run the register-
    /// blocked tile pass (`assign_sq_tiled`); everything else runs the
    /// screened scan. Either way the outputs are bit-identical to the
    /// scalar loop.
    pub fn assign_sq(&self, points: &PointSet, ids: &[usize], threads: ThreadBudget) -> Assignment {
        assert!(!self.is_empty(), "assign over an empty center block");
        assert_eq!(points.dim(), self.dim, "dimension mismatch");
        let mut out = Assignment::new();
        out.pos.resize(ids.len(), 0);
        out.dist.resize(ids.len(), 0.0);
        let tiled = tiled_engages(self.dim, self.len());
        par_chunks_mut2(threads, &mut out.pos, &mut out.dist, |start, pos, dist| {
            let mut stats = ScanStats::default();
            if tiled {
                assign_sq_tiled(
                    points,
                    &ids[start..start + pos.len()],
                    &self.rows,
                    &self.root_norms,
                    &self.sq_norms,
                    self.dim,
                    pos,
                    dist,
                    &mut stats,
                );
            } else {
                let mut screen = Vec::with_capacity(self.len());
                for (o, (p, d)) in pos.iter_mut().zip(dist.iter_mut()).enumerate() {
                    let x = points.point(ids[start + o]);
                    let (bp, bd) = nearest_row_pruned(
                        x,
                        &self.rows,
                        &self.root_norms,
                        self.dim,
                        &mut screen,
                        &mut stats,
                    );
                    *p = bp;
                    *d = bd;
                }
            }
            // One flush per chunk: the collector's counters are atomics,
            // so concurrent chunk flushes stay exact.
            stats.flush(&self.recorder, pos.len() as u64);
        });
        out
    }

    /// [`Self::assign_sq`] scanning the queries in the given order (a
    /// permutation of `0..ids.len()`), with results scattered back to
    /// the original slots. Per-query results are independent, so the
    /// output is identical to [`Self::assign_sq`] for *any* permutation;
    /// a locality-preserving order
    /// ([`zorder_permutation`](crate::layout::zorder_permutation)) keeps
    /// spatial neighbors adjacent in the scan, which makes the pruning
    /// incumbents and branch behavior coherent when `ids` is scattered.
    pub fn assign_sq_ordered(
        &self,
        points: &PointSet,
        ids: &[usize],
        order: &[usize],
        threads: ThreadBudget,
    ) -> Assignment {
        assert_eq!(order.len(), ids.len(), "order must permute the queries");
        let permuted: Vec<usize> = order.iter().map(|&s| ids[s]).collect();
        let inner = self.assign_sq(points, &permuted, threads);
        let mut out = Assignment::new();
        out.pos.resize(ids.len(), 0);
        out.dist.resize(ids.len(), 0.0);
        for (s, &e) in order.iter().enumerate() {
            out.pos[e] = inner.pos[s];
            out.dist[e] = inner.dist[s];
        }
        out
    }

    /// Exact squared distances from one coordinate row to every center, in
    /// center order, using the blocked exact kernel (no dot-form rounding
    /// — safe for accumulation into costs).
    pub fn sq_dists_to_all(&self, coords: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len(), 0.0);
        sq_dists_row(coords, &self.rows, self.dim, out);
    }
}

// ---------------------------------------------------------------------------
// Triangle-inequality bounds for iterative callers (Hamerly-style).
// ---------------------------------------------------------------------------

/// Inflation applied to computed center drifts and the skip test's upper
/// side. Bound maintenance accrues at most a few ulps of rounding per
/// iteration; a 1e-9 relative margin over-covers fifty iterations of it
/// by four orders of magnitude, so a skip can never hide a true winner —
/// and exact ties can never skip (the test demands strict margin-wide
/// domination), so tie-breaks are preserved.
const BOUND_INFLATE: f64 = 1.0 + 1e-9;

/// Deflation applied to the skip test's lower side (see
/// [`BOUND_INFLATE`]).
const BOUND_DEFLATE: f64 = 1.0 - 1e-9;

/// Per-query bound state of a [`BoundedAssigner`], kept in scan order.
#[derive(Clone, Copy, Debug)]
struct BoundState {
    /// Lower bound on the distance to every center *other than* the
    /// assigned one (root domain, conservatively deflated).
    lower: f64,
    /// Assigned center position (into the caller's center list).
    assigned: usize,
}

/// Nearest-center assignment for *iterative* callers (Lloyd): per-query
/// triangle-inequality bounds let iterations after the first skip the
/// full candidate scan for most queries.
///
/// The assigner keeps, per query, the assigned center and a lower bound
/// `l` on the distance to every other center. When the centers move, `l`
/// shrinks by the largest center drift; the exact distance `u` to the
/// (moved) assigned center is recomputed — the output needs it anyway —
/// and whenever `u < l` holds with margin to spare, no other center can
/// possibly have won: the query pays for **one** distance instead of
/// `k`. Queries whose bound cannot certify the winner fall back to the
/// screened top-2 scan, which also refreshes their bounds.
///
/// Outputs are bit-identical to a fresh [`CenterBlock::assign_sq`] per
/// iteration at any thread budget: skips fire only on strict
/// margin-separated domination (never on ties), and every emitted
/// distance is the canonical [`sq_dist`] sum. Queries are scanned in
/// Morton/Z-order over a privately gathered copy of the coordinates
/// (contiguous and locality-sorted — the cache-aware layout pass), with
/// results scattered back to original slots.
///
/// The query set (`points`, `ids`) must stay fixed across calls; the
/// state re-initializes when `ids` or the center count changes.
pub struct BoundedAssigner {
    dim: usize,
    n: usize,
    /// Ids of the previous call (detects query-set changes).
    ids: Vec<usize>,
    /// Scan position → entry index (Z-order permutation of the queries).
    order: Vec<usize>,
    /// Query rows gathered in scan order.
    qrows: Vec<f64>,
    /// Per-query bounds, in scan order.
    state: Vec<BoundState>,
    /// Centers of the previous call (drift reference).
    prev: Option<CenterBlock>,
    /// Scan-order results, scattered to output slots after each pass.
    perm_pos: Vec<usize>,
    perm_dist: Vec<f64>,
    recorder: RecorderHandle,
}

impl BoundedAssigner {
    /// A fresh assigner with no recorder.
    pub fn new() -> Self {
        Self::with_recorder(RecorderHandle::noop())
    }

    /// A fresh assigner flushing exact scan/skip counters to `recorder`
    /// (one flush per query chunk per call).
    pub fn with_recorder(recorder: RecorderHandle) -> Self {
        Self {
            dim: 0,
            n: 0,
            ids: Vec::new(),
            order: Vec::new(),
            qrows: Vec::new(),
            state: Vec::new(),
            prev: None,
            perm_pos: Vec::new(),
            perm_dist: Vec::new(),
            recorder,
        }
    }

    /// Assigns every id to its nearest center with exact squared
    /// distances, reusing bounds from the previous call when the center
    /// list has merely drifted. `centers` is the current center
    /// coordinates (row per center; positions must stay stable across
    /// calls for the bounds to apply — Lloyd's centroid list is).
    pub fn assign_sq(
        &mut self,
        points: &PointSet,
        ids: &[usize],
        centers: &[Vec<f64>],
        threads: ThreadBudget,
        out: &mut Assignment,
    ) {
        assert!(!centers.is_empty(), "assign requires candidates");
        let dim = points.dim();
        let k = centers.len();
        let n = ids.len();
        out.pos.clear();
        out.pos.resize(n, 0);
        out.dist.clear();
        out.dist.resize(n, 0.0);
        if n == 0 {
            return;
        }
        let block = CenterBlock::from_rows(dim, centers);
        let fresh = match &self.prev {
            Some(prev) => prev.len() != k || self.dim != dim || self.n != n || self.ids != ids,
            None => true,
        };
        if fresh {
            self.init(points, ids, dim);
            self.full_pass(&block, threads);
        } else {
            self.bounded_pass(&block, threads);
        }
        for (s, &e) in self.order.iter().enumerate() {
            out.pos[e] = self.perm_pos[s];
            out.dist[e] = self.perm_dist[s];
        }
        self.prev = Some(block);
    }

    /// Gathers the query rows in Z-order and resets the bound state.
    fn init(&mut self, points: &PointSet, ids: &[usize], dim: usize) {
        let n = ids.len();
        self.dim = dim;
        self.n = n;
        self.ids = ids.to_vec();
        self.order = crate::layout::zorder_permutation(points, ids);
        self.qrows.clear();
        self.qrows.reserve(n * dim);
        for &e in &self.order {
            self.qrows.extend_from_slice(points.point(ids[e]));
        }
        self.state.clear();
        self.state.resize(
            n,
            BoundState {
                lower: 0.0,
                assigned: 0,
            },
        );
        self.perm_pos.clear();
        self.perm_pos.resize(n, 0);
        self.perm_dist.clear();
        self.perm_dist.resize(n, 0.0);
    }

    /// Full screened top-2 scan for every query: seeds the bounds.
    fn full_pass(&mut self, block: &CenterBlock, threads: ThreadBudget) {
        let dim = self.dim;
        let qrows = &self.qrows;
        let rec = &self.recorder;
        par_chunks_mut3(
            threads,
            &mut self.state,
            &mut self.perm_pos,
            &mut self.perm_dist,
            |start, st, pos, dist| {
                let mut screen = Vec::with_capacity(block.len());
                let mut stats = ScanStats::default();
                for (o, ((s, p), d)) in st
                    .iter_mut()
                    .zip(pos.iter_mut())
                    .zip(dist.iter_mut())
                    .enumerate()
                {
                    let x = &qrows[(start + o) * dim..(start + o + 1) * dim];
                    let (c1, _c2, b1, b2) = top2_row_pruned(
                        x,
                        &block.rows,
                        &block.root_norms,
                        dim,
                        &mut screen,
                        &mut stats,
                    );
                    s.assigned = c1;
                    s.lower = b2.sqrt();
                    *p = c1;
                    *d = b1;
                }
                stats.flush(rec, pos.len() as u64);
            },
        );
    }

    /// Drift-updated pass: certify-or-rescan per query.
    fn bounded_pass(&mut self, block: &CenterBlock, threads: ThreadBudget) {
        let dim = self.dim;
        let prev = self
            .prev
            .as_ref()
            .expect("bounded pass follows a full pass");
        // Per-center drift ‖c_new − c_old‖, conservatively inflated; the
        // lower bound on "every other center" shrinks by the largest.
        let drift: Vec<f64> = prev
            .rows
            .chunks_exact(dim)
            .zip(block.rows.chunks_exact(dim))
            .map(|(a, b)| sq_dist(a, b).sqrt() * BOUND_INFLATE)
            .collect();
        let max_drift = drift.iter().cloned().fold(0.0f64, f64::max);
        let qrows = &self.qrows;
        let rec = &self.recorder;
        par_chunks_mut3(
            threads,
            &mut self.state,
            &mut self.perm_pos,
            &mut self.perm_dist,
            |start, st, pos, dist| {
                let mut screen = Vec::with_capacity(block.len());
                let mut stats = ScanStats::default();
                for (o, ((s, p), d)) in st
                    .iter_mut()
                    .zip(pos.iter_mut())
                    .zip(dist.iter_mut())
                    .enumerate()
                {
                    let x = &qrows[(start + o) * dim..(start + o + 1) * dim];
                    let a = s.assigned;
                    let l = (s.lower - max_drift).max(0.0);
                    // The output contract needs the exact distance to the
                    // winner regardless, so tighten the upper bound with
                    // it and test once: one canonical sum instead of k.
                    let row = &block.rows[a * dim..(a + 1) * dim];
                    let sq_a = resume_sq_abort(x, row, 0.0, 0, f64::INFINITY)
                        .expect("infinite limit never aborts");
                    let u = sq_a.sqrt();
                    if u * BOUND_INFLATE < l * BOUND_DEFLATE {
                        // Margin-certified: no other center can have won,
                        // and the margin rules out exact ties entirely.
                        s.lower = l;
                        stats.scanned += 1;
                        stats.completed += 1;
                        stats.bound_skips += 1;
                        *p = a;
                        *d = sq_a;
                    } else {
                        let (c1, _c2, b1, b2) = top2_row_pruned(
                            x,
                            &block.rows,
                            &block.root_norms,
                            dim,
                            &mut screen,
                            &mut stats,
                        );
                        s.assigned = c1;
                        s.lower = b2.sqrt();
                        *p = c1;
                        *d = b1;
                    }
                }
                stats.flush(rec, pos.len() as u64);
            },
        );
    }
}

impl Default for BoundedAssigner {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact squared distances from every listed point to one coordinate row,
/// fanned across the thread budget. Values are bit-identical to
/// `points.sq_dist_to(id, coords)` per entry.
pub fn sq_dists_to_coords(
    points: &PointSet,
    ids: &[usize],
    coords: &[f64],
    out: &mut Vec<f64>,
    threads: ThreadBudget,
) {
    out.clear();
    out.resize(ids.len(), 0.0);
    par_chunks_mut(threads, out, |start, chunk| {
        for (o, d) in chunk.iter_mut().enumerate() {
            *d = crate::points::sq_dist(points.point(ids[start + o]), coords);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::EuclideanMetric;

    fn ps(rows: &[Vec<f64>]) -> PointSet {
        PointSet::from_rows(rows)
    }

    #[test]
    fn thread_budget_basics() {
        assert_eq!(ThreadBudget::serial().get(), 1);
        assert!(ThreadBudget::serial().is_serial());
        assert_eq!(ThreadBudget::new(0).get(), 1);
        assert!(ThreadBudget::available().get() >= 1);
        assert_eq!(ThreadBudget::default(), ThreadBudget::serial());
    }

    #[test]
    fn sq_dists_row_matches_scalar_at_every_k() {
        // Exercise the LANES main loop and the remainder tail.
        let x = vec![1.0, -2.0, 0.5];
        for k in 1..=9usize {
            let rows: Vec<f64> = (0..k * 3).map(|i| (i as f64) * 0.37 - 1.0).collect();
            let mut out = vec![0.0; k];
            sq_dists_row(&x, &rows, 3, &mut out);
            for c in 0..k {
                let exact = sq_dist(&x, &rows[c * 3..(c + 1) * 3]);
                assert_eq!(out[c], exact, "k={k} c={c}");
            }
        }
    }

    #[test]
    fn nearest_row_pruned_matches_scalar_scan_with_ties() {
        // Duplicated candidate rows force exact ties; the pruned dot form
        // must still pick the first, like the scalar strict-< scan.
        let rows = vec![
            5.0, 5.0, // far
            1.0, 0.0, // tie A
            1.0, 0.0, // tie B (identical)
            3.0, 4.0,
        ];
        let root_norms: Vec<f64> = rows
            .chunks(2)
            .map(|r| f64::sqrt(r[0] * r[0] + r[1] * r[1]))
            .collect();
        let mut screen = Vec::new();
        let mut stats = ScanStats::default();
        let (pos, sq) =
            nearest_row_pruned(&[0.0, 0.0], &rows, &root_norms, 2, &mut screen, &mut stats);
        assert_eq!(pos, 1, "first of the tied pair must win");
        assert_eq!(sq, 1.0);
        assert_eq!(stats.scanned, 4);

        let (c1, c2, d1, d2) =
            top2_row_pruned(&[0.0, 0.0], &rows, &root_norms, 2, &mut screen, &mut stats);
        assert_eq!(c1, 1);
        assert_eq!(c2, 2); // the duplicate row is the runner-up
        assert_eq!(d1, 1.0);
        assert_eq!(d2, 1.0);
    }

    #[test]
    fn center_block_assign_matches_scalar() {
        let centers = ps(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let queries = ps(&[
            vec![1.0, 1.0],
            vec![9.0, 1.0],
            vec![-2.0, 8.0],
            vec![5.0, 5.0],
        ]);
        let block = CenterBlock::new(&centers);
        let ids: Vec<usize> = (0..queries.len()).collect();
        for threads in [ThreadBudget::serial(), ThreadBudget::new(4)] {
            let a = block.assign(&queries, &ids, threads);
            for (q, (&p, &d)) in a.pos.iter().zip(&a.dist).enumerate() {
                let (sp, sd) = (0..centers.len())
                    .map(|c| (c, queries.sq_dist_to(q, centers.point(c)).sqrt()))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap();
                assert_eq!(p, sp, "query {q}");
                assert_eq!(d, sd, "query {q}");
            }
        }
    }

    #[test]
    fn assigner_matches_metric_nearest() {
        let points = ps(&[
            vec![0.0, 0.0],
            vec![1.0, 2.0],
            vec![8.0, 1.0],
            vec![4.0, 4.0],
            vec![-3.0, 2.0],
        ]);
        let m = EuclideanMetric::new(&points);
        let ids: Vec<usize> = (0..points.len()).collect();
        let centers = [2usize, 0];
        let a = NearestAssigner::new(&m).assign(&ids, &centers);
        for (e, &i) in ids.iter().enumerate() {
            let (sp, sd) = m.nearest(i, &centers).unwrap();
            assert_eq!(a.pos[e], sp);
            assert_eq!(a.dist[e], sd);
        }
    }

    #[test]
    fn recorders_receive_kernel_counters() {
        use dpc_obs::Collector;
        use std::sync::Arc;

        // Exact counters through CenterBlock: 8 queries × 3 candidates.
        let centers = ps(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let queries = ps(&(0..8).map(|i| vec![i as f64, 1.0]).collect::<Vec<_>>());
        let ids: Vec<usize> = (0..queries.len()).collect();
        let collector = Arc::new(Collector::new());
        let block = CenterBlock::new(&centers).with_recorder(collector.handle());
        let plain = CenterBlock::new(&centers);
        let a = block.assign_sq(&queries, &ids, ThreadBudget::serial());
        // Recording never changes any output value.
        assert_eq!(a, plain.assign_sq(&queries, &ids, ThreadBudget::serial()));
        let t = collector.snapshot();
        assert_eq!(t.counters[Counter::KernelQueries.index()], 8);
        assert_eq!(t.counters[Counter::CandidatesScanned.index()], 24);
        assert!(t.counters[Counter::CandidatesPruned.index()] <= 24);

        // Coarse counters through the generic assigner.
        let m = EuclideanMetric::new(&queries);
        let collector = Arc::new(Collector::new());
        let handle = collector.handle();
        let assigner = NearestAssigner::with_recorder(&m, ThreadBudget::serial(), &handle);
        assigner.assign(&ids, &[0, 4]);
        let t = collector.snapshot();
        assert_eq!(t.counters[Counter::KernelQueries.index()], 8);
        assert_eq!(t.counters[Counter::CandidatesScanned.index()], 16);
    }

    #[test]
    fn sq_dists_to_coords_matches_pointwise() {
        let points = ps(&[vec![0.0], vec![2.0], vec![-1.0]]);
        let mut out = Vec::new();
        sq_dists_to_coords(&points, &[2, 0, 1], &[1.0], &mut out, ThreadBudget::new(3));
        assert_eq!(out, vec![4.0, 1.0, 1.0]);
    }
}
