//! Outlier-aware cost evaluation: the paper's `C_sol(Z, k, t, d)`.
//!
//! Given a metric, a weighted point multiset, and a set of centers, computes
//! the objective value after discarding up to `t` units of weight — always
//! the *most expensive* weight first, which is optimal for every objective
//! once centers are fixed. Weight may be removed fractionally from an
//! aggregated point (Remark 1: the coordinator may exclude fewer copies than
//! a preclustered point carries).

use crate::kernel::{NearestAssigner, ThreadBudget};
use crate::metric::Metric;
use crate::weighted::WeightedSet;

/// Which of the three objectives of Definition 1.1 is being evaluated.
///
/// `Median` sums distances, `Means` sums squared distances, `Center` takes
/// the maximum distance. For `Means`, pair this with a plain metric — the
/// squaring is applied here (equivalently, use [`Objective::Median`] over a
/// [`crate::SquaredMetric`]; the solvers do the latter, the evaluators take
/// this enum for convenience).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// `Σ d(p, K)` over non-outliers.
    Median,
    /// `Σ d²(p, K)` over non-outliers.
    Means,
    /// `max d(p, K)` over non-outliers.
    Center,
}

impl Objective {
    /// Applies the per-point distance transform (`d` or `d²`).
    #[inline]
    pub fn transform(self, d: f64) -> f64 {
        match self {
            Objective::Median | Objective::Center => d,
            Objective::Means => d * d,
        }
    }

    /// True for the max-aggregation objective.
    #[inline]
    pub fn is_center(self) -> bool {
        matches!(self, Objective::Center)
    }
}

/// Result of an outlier-aware cost evaluation.
#[derive(Clone, Debug)]
pub struct OutlierCost {
    /// Objective value over the retained weight.
    pub cost: f64,
    /// Entries `(position in the weighted set, excluded weight)`, most
    /// expensive first. Weight not listed here was retained.
    pub excluded: Vec<(usize, f64)>,
    /// For each entry of the weighted set, the position (within `centers`)
    /// of its nearest center.
    pub assignment: Vec<usize>,
}

/// Evaluates the `(k,t)` objective for fixed `centers` over weighted points.
///
/// `t` is the *weight budget* of outliers; the most expensive weight is
/// excluded greedily (optimal for fixed centers). Points whose weight is
/// fully excluded contribute nothing; a point may be partially excluded, in
/// which case (for `Center`) its distance still counts towards the max.
///
/// # Panics
/// Panics if `centers` is empty while the weighted set is non-empty, or if
/// `t` is negative.
pub fn cost_excluding_outliers<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    centers: &[usize],
    t: f64,
    objective: Objective,
) -> OutlierCost {
    cost_excluding_outliers_with(
        metric,
        points,
        centers,
        t,
        objective,
        ThreadBudget::serial(),
    )
}

/// [`cost_excluding_outliers`] with an explicit thread budget for the
/// nearest-center scoring pass. The budget changes wall-clock only: the
/// assignment, exclusion order, and cost are identical at any budget.
pub fn cost_excluding_outliers_with<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    centers: &[usize],
    t: f64,
    objective: Objective,
    threads: ThreadBudget,
) -> OutlierCost {
    assert!(t >= 0.0, "outlier budget must be non-negative");
    if points.is_empty() {
        return OutlierCost {
            cost: 0.0,
            excluded: Vec::new(),
            assignment: Vec::new(),
        };
    }
    assert!(!centers.is_empty(), "need at least one center");

    let n = points.len();
    // One bulk nearest-center pass over all entries (the former per-entry
    // `metric.nearest` loop), then the transform in entry order.
    let scored = NearestAssigner::with_threads(metric, threads).assign(points.ids(), centers);
    let assignment = scored.pos;
    let mut dists = scored.dist;
    for d in dists.iter_mut() {
        *d = objective.transform(*d);
    }

    // Exclude the largest transformed distances first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| dists[b].total_cmp(&dists[a]));

    let weights = points.weights();
    let mut budget = t;
    let mut excluded = Vec::new();
    let mut retained = vec![0.0f64; n]; // retained weight per entry
    for &idx in &order {
        let w = weights[idx];
        if budget >= w {
            budget -= w;
            if w > 0.0 {
                excluded.push((idx, w));
            }
        } else {
            if budget > 0.0 {
                excluded.push((idx, budget));
            }
            retained[idx] = w - budget;
            budget = 0.0;
        }
    }

    let cost = if objective.is_center() {
        retained
            .iter()
            .zip(&dists)
            .filter(|(&r, _)| r > 0.0)
            .map(|(_, &d)| d)
            .fold(0.0, f64::max)
    } else {
        retained.iter().zip(&dists).map(|(&r, &d)| r * d).sum()
    };

    OutlierCost {
        cost,
        excluded,
        assignment,
    }
}

/// `(k,t)`-median cost over unit-weight points `0..metric.len()`.
pub fn median_cost<M: Metric>(metric: &M, centers: &[usize], t: usize) -> f64 {
    let w = WeightedSet::unit(metric.len());
    cost_excluding_outliers(metric, &w, centers, t as f64, Objective::Median).cost
}

/// `(k,t)`-means cost over unit-weight points `0..metric.len()`.
pub fn means_cost<M: Metric>(metric: &M, centers: &[usize], t: usize) -> f64 {
    let w = WeightedSet::unit(metric.len());
    cost_excluding_outliers(metric, &w, centers, t as f64, Objective::Means).cost
}

/// `(k,t)`-center cost over unit-weight points `0..metric.len()`.
pub fn center_cost<M: Metric>(metric: &M, centers: &[usize], t: usize) -> f64 {
    let w = WeightedSet::unit(metric.len());
    cost_excluding_outliers(metric, &w, centers, t as f64, Objective::Center).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::EuclideanMetric;
    use crate::points::PointSet;

    fn line() -> PointSet {
        // points at 0, 1, 2, 10 (10 is the obvious outlier)
        PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn median_cost_excludes_farthest() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        // center at point 1 (coordinate 1)
        assert_eq!(median_cost(&m, &[1], 0), 1.0 + 0.0 + 1.0 + 9.0);
        assert_eq!(median_cost(&m, &[1], 1), 2.0); // drops the 9
        assert_eq!(median_cost(&m, &[1], 3), 0.0);
        assert_eq!(median_cost(&m, &[1], 4), 0.0);
    }

    #[test]
    fn center_cost_max_semantics() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        assert_eq!(center_cost(&m, &[0], 0), 10.0);
        assert_eq!(center_cost(&m, &[0], 1), 2.0);
        assert_eq!(center_cost(&m, &[0], 3), 0.0);
    }

    #[test]
    fn means_squares() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        assert_eq!(means_cost(&m, &[0], 1), 1.0 + 4.0);
    }

    #[test]
    fn weighted_fractional_exclusion() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        // point 3 (distance 9 from center 1) carries weight 2; budget 1
        // removes half of it.
        let w = WeightedSet::from_parts(vec![0, 1, 2, 3], vec![1.0, 1.0, 1.0, 2.0]);
        let r = cost_excluding_outliers(&m, &w, &[1], 1.0, Objective::Median);
        assert_eq!(r.cost, 1.0 + 0.0 + 1.0 + 9.0);
        assert_eq!(r.excluded, vec![(3, 1.0)]);
    }

    #[test]
    fn center_partial_exclusion_keeps_max() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::from_parts(vec![0, 3], vec![1.0, 2.0]);
        // Only 1 unit of the weight-2 far point can be dropped: its distance
        // still dominates the max.
        let r = cost_excluding_outliers(&m, &w, &[0], 1.0, Objective::Center);
        assert_eq!(r.cost, 10.0);
        // Budget 2 removes it fully.
        let r = cost_excluding_outliers(&m, &w, &[0], 2.0, Objective::Center);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn empty_points_is_free() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::new();
        let r = cost_excluding_outliers(&m, &w, &[], 0.0, Objective::Median);
        assert_eq!(r.cost, 0.0);
        assert!(r.excluded.is_empty());
    }

    #[test]
    fn assignment_points_to_nearest() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(4);
        let r = cost_excluding_outliers(&m, &w, &[0, 3], 0.0, Objective::Median);
        assert_eq!(r.assignment, vec![0, 0, 0, 1]);
    }

    #[test]
    fn zero_weight_entries_ignored() {
        let ps = line();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::from_parts(vec![3, 0], vec![0.0, 1.0]);
        let r = cost_excluding_outliers(&m, &w, &[0], 0.0, Objective::Center);
        assert_eq!(r.cost, 0.0); // the far point carries no weight
    }
}
