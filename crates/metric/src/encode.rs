//! Compact wire encoding for coordinator-model messages.
//!
//! The paper counts communication in bits, with `B` the encoding of a point
//! and `I` the encoding of an uncertain node. To make the reproduced
//! communication numbers *real*, every message in this workspace is actually
//! serialized through this module and charged its byte length:
//!
//! * `f64` coordinates: 8 bytes each, so `B = 8·dim + O(1)`;
//! * counts / ids: LEB128 varints (small counts are cheap, matching the
//!   `O(log n)` bit intuition);
//! * an uncertain node: its support ids, probabilities and cached values,
//!   so `I = O(support · (B + 8))`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A run of coordinate doubles inside an encoded message: `rows`
/// consecutive points of `dim` doubles each, starting at byte offset
/// `start`. [`WireWriter`] records one span per [`WireWriter::put_point`]
/// / [`WireWriter::put_f64_slice`] call (merging adjacent calls of the
/// same width), so a codec layered above the wire format can transform
/// coordinate payloads without knowing any message's structure. Scalars
/// written through [`WireWriter::put_f64`] (weights, costs, thresholds)
/// are deliberately *not* spans and stay exact under every codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordSpan {
    /// Byte offset of the first double.
    pub start: usize,
    /// Number of points (rows) in the run.
    pub rows: usize,
    /// Doubles per point.
    pub dim: usize,
}

impl CoordSpan {
    /// Total doubles covered by the span.
    pub fn values(&self) -> usize {
        self.rows * self.dim
    }

    /// Byte length of the span (`values() * 8`).
    pub fn byte_len(&self) -> usize {
        self.values() * 8
    }
}

/// Serializer with byte accounting.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
    spans: Vec<CoordSpan>,
}

impl WireWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
            spans: Vec::new(),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the encoded message.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finishes and returns the encoded message together with the
    /// coordinate spans recorded while writing it (the codec entry
    /// point; plain [`WireWriter::finish`] drops the spans).
    pub fn finish_with_spans(self) -> (Bytes, Vec<CoordSpan>) {
        (self.buf.freeze(), self.spans)
    }

    /// Writes an IEEE-754 double (8 bytes, little endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Records `dim` doubles about to be written at the current offset
    /// as coordinate data, merging with the previous span when the two
    /// are contiguous and the widths match.
    fn note_span(&mut self, dim: usize) {
        if dim == 0 {
            return;
        }
        let start = self.buf.len();
        if let Some(last) = self.spans.last_mut() {
            if last.dim == dim && last.start + last.byte_len() == start {
                last.rows += 1;
                return;
            }
        }
        self.spans.push(CoordSpan {
            start,
            rows: 1,
            dim,
        });
    }

    /// Writes an unsigned integer as a LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a point as `dim` doubles (the caller fixes `dim` contextually,
    /// so it is not re-encoded per point).
    pub fn put_point(&mut self, coords: &[f64]) {
        self.note_span(coords.len());
        for &c in coords {
            self.put_f64(c);
        }
    }

    /// Writes a length-prefixed list of doubles.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_varint(vs.len() as u64);
        self.note_span(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }
}

/// Deserializer matching [`WireWriter`].
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wraps an encoded message.
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Reads an `f64`.
    ///
    /// # Panics
    /// Panics on underflow (messages in this workspace are framed by
    /// construction; a short read is a protocol bug).
    pub fn get_f64(&mut self) -> f64 {
        self.buf.get_f64_le()
    }

    /// Reads a LEB128 varint.
    ///
    /// # Panics
    /// Panics on underflow or a varint longer than 10 bytes.
    pub fn get_varint(&mut self) -> u64 {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.buf.get_u8();
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return v;
            }
            shift += 7;
            assert!(shift < 64, "varint too long");
        }
    }

    /// Reads a `dim`-dimensional point.
    pub fn get_point(&mut self, dim: usize) -> Vec<f64> {
        (0..dim).map(|_| self.get_f64()).collect()
    }

    /// Reads a `dim`-dimensional point into `out`, reusing its
    /// allocation. Decode loops that read many points per message (hull
    /// and summary payloads) call this with one scratch buffer instead of
    /// allocating a fresh `Vec<f64>` per point.
    pub fn read_point_into(&mut self, dim: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(dim);
        for _ in 0..dim {
            out.push(self.get_f64());
        }
    }

    /// Reads a length-prefixed list of doubles.
    pub fn get_f64_slice(&mut self) -> Vec<f64> {
        let n = self.get_varint() as usize;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed list of doubles into `out` (reusing its
    /// allocation) and returns the element count.
    pub fn read_f64_slice_into(&mut self, out: &mut Vec<f64>) -> usize {
        let n = self.get_varint() as usize;
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.get_f64());
        }
        n
    }
}

/// Bytes needed for one point of the given dimension (`B` in the paper).
pub fn point_bytes(dim: usize) -> usize {
    8 * dim
}

/// Bytes of the varint encoding of `v` (for analytic cross-checks in tests).
pub fn varint_bytes(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let mut w = WireWriter::new();
        w.put_f64(3.5);
        w.put_f64(-0.0);
        w.put_f64(f64::MAX);
        assert_eq!(w.len(), 24);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_f64(), 3.5);
        assert_eq!(r.get_f64(), -0.0);
        assert_eq!(r.get_f64(), f64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let vals = [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut w = WireWriter::new();
        for &v in &vals {
            w.put_varint(v);
        }
        let mut r = WireReader::new(w.finish());
        for &v in &vals {
            assert_eq!(r.get_varint(), v);
        }
    }

    #[test]
    fn varint_size_accounting() {
        for &(v, sz) in &[(0u64, 1usize), (127, 1), (128, 2), (16383, 2), (16384, 3)] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), sz, "value {v}");
            assert_eq!(varint_bytes(v), sz, "analytic size for {v}");
        }
    }

    #[test]
    fn point_roundtrip_and_b() {
        let p = vec![1.0, 2.0, 3.0];
        let mut w = WireWriter::new();
        w.put_point(&p);
        assert_eq!(w.len(), point_bytes(3));
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_point(3), p);
    }

    #[test]
    fn slice_roundtrip() {
        let mut w = WireWriter::new();
        w.put_f64_slice(&[1.0, 2.0]);
        w.put_f64_slice(&[]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_f64_slice(), vec![1.0, 2.0]);
        assert_eq!(r.get_f64_slice(), Vec::<f64>::new());
    }

    #[test]
    fn into_variants_reuse_one_buffer() {
        let points = [vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let mut w = WireWriter::new();
        for p in &points {
            w.put_point(p);
        }
        w.put_f64_slice(&[7.0, 8.0]);
        w.put_f64_slice(&[]);
        let mut r = WireReader::new(w.finish());
        let mut buf = Vec::new();
        for p in &points {
            r.read_point_into(3, &mut buf);
            assert_eq!(&buf, p);
        }
        // The slice reader clears stale contents and reports the count.
        assert_eq!(r.read_f64_slice_into(&mut buf), 2);
        assert_eq!(buf, vec![7.0, 8.0]);
        assert_eq!(r.read_f64_slice_into(&mut buf), 0);
        assert!(buf.is_empty());
        assert_eq!(r.remaining(), 0);
    }
}
