//! Property-based tests of the metric substrate.

use dpc_metric::*;
use proptest::prelude::*;

fn arb_points(max_n: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    proptest::collection::vec(proptest::collection::vec(-1e4f64..1e4, dim..=dim), 2..max_n)
        .prop_map(|rows| PointSet::from_rows(&rows))
}

proptest! {
    #[test]
    fn euclidean_triangle_inequality(ps in arb_points(12, 3)) {
        let m = EuclideanMetric::new(&ps);
        let n = m.len();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(m.dist(a, c) <= m.dist(a, b) + m.dist(b, c) + 1e-6);
                }
            }
        }
    }

    #[test]
    fn euclidean_symmetry_and_identity(ps in arb_points(12, 2)) {
        let m = EuclideanMetric::new(&ps);
        for a in 0..m.len() {
            prop_assert_eq!(m.dist(a, a), 0.0);
            for b in 0..m.len() {
                prop_assert_eq!(m.dist(a, b), m.dist(b, a));
            }
        }
    }

    #[test]
    fn squared_relaxed_triangle(ps in arb_points(10, 2)) {
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        let n = m.len();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(m.dist(a, c) <= 2.0 * (m.dist(a, b) + m.dist(b, c)) + 1e-6);
                }
            }
        }
    }

    #[test]
    fn cost_monotone_in_budget(ps in arb_points(16, 2), t1 in 0usize..8, extra in 0usize..8) {
        let m = EuclideanMetric::new(&ps);
        let c1 = median_cost(&m, &[0], t1);
        let c2 = median_cost(&m, &[0], t1 + extra);
        prop_assert!(c2 <= c1 + 1e-9, "more exclusions cannot cost more");
    }

    #[test]
    fn cost_monotone_in_centers(ps in arb_points(16, 2), t in 0usize..4) {
        let m = EuclideanMetric::new(&ps);
        let c1 = median_cost(&m, &[0], t);
        let c2 = median_cost(&m, &[0, 1], t);
        prop_assert!(c2 <= c1 + 1e-9, "adding a center cannot cost more");
    }

    #[test]
    fn center_cost_is_max_of_survivors(ps in arb_points(16, 2)) {
        let m = EuclideanMetric::new(&ps);
        // t = 0: center cost equals the max distance to the center.
        let c = center_cost(&m, &[0], 0);
        let manual = (0..m.len()).map(|i| m.dist(i, 0)).fold(0.0, f64::max);
        prop_assert!((c - manual).abs() < 1e-9);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut w = WireWriter::new();
        w.put_varint(v);
        let mut r = WireReader::new(w.finish());
        prop_assert_eq!(r.get_varint(), v);
    }

    #[test]
    fn f64_roundtrip(v in any::<f64>()) {
        let mut w = WireWriter::new();
        w.put_f64(v);
        let mut r = WireReader::new(w.finish());
        let back = r.get_f64();
        prop_assert!(back == v || (back.is_nan() && v.is_nan()));
    }

    #[test]
    fn truncated_weak_triangle(ps in arb_points(8, 2), tau in 0.0f64..100.0) {
        let e = EuclideanMetric::new(&ps);
        let lt = TruncatedMetric::new(&e, tau);
        let l2t = TruncatedMetric::new(&e, 2.0 * tau);
        let n = ps.len();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(lt.dist(a, b) + lt.dist(b, c) + 1e-6 >= l2t.dist(a, c));
                }
            }
        }
    }

    #[test]
    fn fractional_exclusion_conserves_weight(
        ps in arb_points(10, 1),
        budget in 0.0f64..5.0,
    ) {
        let w = WeightedSet::unit(ps.len());
        let m = EuclideanMetric::new(&ps);
        let r = cost_excluding_outliers(&m, &w, &[0], budget, Objective::Median);
        let excluded: f64 = r.excluded.iter().map(|&(_, x)| x).sum();
        prop_assert!(excluded <= budget + 1e-9);
        // If budget < total weight, it is used fully (greedy exclusion).
        if budget < ps.len() as f64 {
            prop_assert!((excluded - budget).abs() < 1e-9);
        }
    }
}
