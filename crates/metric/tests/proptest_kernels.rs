//! Property-based pins of the bulk kernel layer: every bulk hook must be
//! **output-equivalent** to the scalar loop it replaces, across all four
//! metric implementations, with or without worker threads.
//!
//! Exactness contract (see `dpc_metric::metric` docs):
//!
//! * Euclidean / Matrix / Truncated — bit-identical selected positions,
//!   tie-breaks, and distance values;
//! * Squared — identical positions and ties; values within 1e-9 relative
//!   (the bulk path skips the scalar `sqrt`-then-square round trip).
//!
//! Tie coverage matters: the strategies duplicate rows on purpose so the
//! first-wins rule is exercised, and the dot-form kernel's exact-window
//! resolution is what keeps it honest.

use dpc_metric::*;
use proptest::prelude::*;

/// Points with deliberate duplicates (every row may be emitted twice) so
/// nearest-center ties actually occur.
fn arb_points_with_ties(max_n: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    (
        proptest::collection::vec(proptest::collection::vec(-1e4f64..1e4, dim..=dim), 2..max_n),
        proptest::collection::vec(any::<bool>(), max_n),
    )
        .prop_map(|(rows, dup)| {
            let mut all = Vec::new();
            for (i, r) in rows.into_iter().enumerate() {
                all.push(r.clone());
                if dup.get(i).copied().unwrap_or(false) {
                    all.push(r);
                }
            }
            PointSet::from_rows(&all)
        })
}

/// Scalar reference: the strict-`<` first-wins scan over `Metric::dist`.
fn scalar_nearest<M: Metric>(m: &M, i: usize, centers: &[usize]) -> (usize, f64) {
    let mut best: Option<(usize, f64)> = None;
    for (pos, &c) in centers.iter().enumerate() {
        let d = m.dist(i, c);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((pos, d));
        }
    }
    best.expect("non-empty centers")
}

/// Scalar reference for the two-slot nearest/second-nearest update.
fn scalar_top2<M: Metric>(m: &M, i: usize, centers: &[usize]) -> (usize, f64, f64) {
    let (c1, _, d1, d2) = scalar_top2c(m, i, centers);
    (c1, d1, d2)
}

/// Scalar reference for the two-slot update *with both positions*.
fn scalar_top2c<M: Metric>(m: &M, i: usize, centers: &[usize]) -> (usize, usize, f64, f64) {
    let (mut c1, mut c2, mut d1, mut d2) = (0usize, 0usize, f64::INFINITY, f64::INFINITY);
    for (pos, &c) in centers.iter().enumerate() {
        let d = m.dist(i, c);
        if d < d1 {
            d2 = d1;
            c2 = c1;
            d1 = d;
            c1 = pos;
        } else if d < d2 {
            d2 = d;
            c2 = pos;
        }
    }
    (c1, c2, d1, d2)
}

/// Pins every bulk hook of `m` against the scalar loops. `exact` demands
/// bitwise equality of distances; otherwise 1e-9 relative.
fn check_metric<M: Metric>(m: &M, centers: &[usize], exact: bool) {
    let ids: Vec<usize> = (0..m.len()).collect();
    let close = |a: f64, b: f64| -> bool {
        if a == b {
            return true; // covers equal infinities (no second-nearest) too
        }
        !exact && (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    };

    for threads in [ThreadBudget::serial(), ThreadBudget::new(4)] {
        let assigner = NearestAssigner::with_threads(m, threads);

        // assign ≡ scalar nearest loop.
        let a = assigner.assign(&ids, centers);
        for (e, &i) in ids.iter().enumerate() {
            let (sp, sd) = scalar_nearest(m, i, centers);
            assert_eq!(a.pos[e], sp, "assign pos for id {} ({:?})", i, threads);
            assert!(
                close(a.dist[e], sd),
                "assign dist for id {}: bulk {} vs scalar {}",
                i,
                a.dist[e],
                sd
            );
        }

        // nearest_in agrees with the scalar scan too.
        for &i in &ids {
            let (bp, bd) = m.nearest_in(i, centers).expect("non-empty");
            let (sp, sd) = scalar_nearest(m, i, centers);
            assert_eq!(bp, sp);
            assert!(close(bd, sd), "nearest_in {} vs {}", bd, sd);
        }

        // assign2 ≡ scalar two-slot update.
        let a2 = assigner.assign2(&ids, centers);
        for (e, &i) in ids.iter().enumerate() {
            let (sc, s1, s2) = scalar_top2(m, i, centers);
            assert_eq!(a2.c1[e], sc, "assign2 winner for id {}", i);
            assert!(close(a2.d1[e], s1), "assign2 d1 {} vs {}", a2.d1[e], s1);
            assert!(close(a2.d2[e], s2), "assign2 d2 {} vs {}", a2.d2[e], s2);
        }

        // assign2c ≡ scalar two-slot update with positions.
        let a2c = assigner.assign2c(&ids, centers);
        for (e, &i) in ids.iter().enumerate() {
            let (sc1, sc2, s1, s2) = scalar_top2c(m, i, centers);
            assert_eq!(a2c.c1[e], sc1, "assign2c winner for id {}", i);
            if centers.len() > 1 {
                assert_eq!(a2c.c2[e], sc2, "assign2c runner-up for id {}", i);
            }
            assert!(close(a2c.d1[e], s1), "assign2c d1 {} vs {}", a2c.d1[e], s1);
            assert!(close(a2c.d2[e], s2), "assign2c d2 {} vs {}", a2c.d2[e], s2);
        }

        // dist_to_many ≡ scalar dist loop.
        let mut bulk = Vec::new();
        for &i in &ids {
            assigner.dists_from(i, centers, &mut bulk);
            for (o, &c) in bulk.iter().zip(centers) {
                let sd = m.dist(i, c);
                assert!(close(*o, sd), "dist_to_many {} vs {}", o, sd);
            }
        }

        // relax_min ≡ the scalar relax loop, from any starting state.
        let mut bulk_d: Vec<f64> = ids.iter().map(|&i| (i % 3) as f64 * 1e3).collect();
        bulk_d[0] = f64::INFINITY;
        let mut bulk_p = vec![0usize; ids.len()];
        let mut ref_d = bulk_d.clone();
        let mut ref_p = bulk_p.clone();
        for (mark, &c) in centers.iter().enumerate() {
            assigner.relax_min(c, &ids, &mut bulk_d, &mut bulk_p, mark);
            for (e, &i) in ids.iter().enumerate() {
                let d = m.dist(i, c);
                if d < ref_d[e] {
                    ref_d[e] = d;
                    ref_p[e] = mark;
                }
            }
        }
        assert_eq!(&bulk_p, &ref_p, "relax_min marks");
        if exact {
            assert_eq!(&bulk_d, &ref_d, "relax_min distances");
        } else {
            for (a, b) in bulk_d.iter().zip(&ref_d) {
                assert!(close(*a, *b), "relax_min {} vs {}", a, b);
            }
        }

        // relax_min_bounded (norm-bound O(1) skips) ≡ the same scalar loop.
        let norms = m.relax_norms(&ids);
        let mut nb_d: Vec<f64> = ids.iter().map(|&i| (i % 3) as f64 * 1e3).collect();
        nb_d[0] = f64::INFINITY;
        let mut nb_p = vec![0usize; ids.len()];
        let mut ref_d = nb_d.clone();
        let mut ref_p = nb_p.clone();
        for (mark, &c) in centers.iter().enumerate() {
            assigner.relax_min_bounded(c, &ids, &norms, &mut nb_d, &mut nb_p, mark);
            for (e, &i) in ids.iter().enumerate() {
                let d = m.dist(i, c);
                if d < ref_d[e] {
                    ref_d[e] = d;
                    ref_p[e] = mark;
                }
            }
        }
        assert_eq!(&nb_p, &ref_p, "relax_min_bounded marks");
        if exact {
            assert_eq!(&nb_d, &ref_d, "relax_min_bounded distances");
        } else {
            for (a, b) in nb_d.iter().zip(&ref_d) {
                assert!(close(*a, *b), "relax_min_bounded {} vs {}", a, b);
            }
        }

        // Outlier scoring on the bulk path ≡ the serial evaluation.
        let w = WeightedSet::unit(m.len());
        let serial = cost_excluding_outliers(m, &w, centers, 2.0, Objective::Median);
        let bulk_cost =
            cost_excluding_outliers_with(m, &w, centers, 2.0, Objective::Median, threads);
        if exact {
            assert_eq!(serial.cost, bulk_cost.cost);
            assert_eq!(&serial.assignment, &bulk_cost.assignment);
            assert_eq!(&serial.excluded, &bulk_cost.excluded);
        } else {
            assert!(close(bulk_cost.cost, serial.cost));
            assert_eq!(&serial.assignment, &bulk_cost.assignment);
        }
    }
}

fn center_subset(n: usize, picks: &[usize]) -> Vec<usize> {
    let mut centers: Vec<usize> = picks.iter().map(|&ix| ix % n).collect();
    centers.dedup();
    if centers.is_empty() {
        centers.push(0);
    }
    centers
}

proptest! {
    #[test]
    fn euclidean_bulk_equals_scalar(
        ps in arb_points_with_ties(10, 3),
        picks in proptest::collection::vec(any::<usize>(), 1..6),
    ) {
        let m = EuclideanMetric::new(&ps);
        let centers = center_subset(ps.len(), &picks);
        check_metric(&m, &centers, true);
    }

    #[test]
    fn euclidean_high_dim_bulk_equals_scalar(
        ps in arb_points_with_ties(6, 32),
        picks in proptest::collection::vec(any::<usize>(), 1..5),
    ) {
        // High-dimensional rows drive the LANES main loop (dim 32) rather
        // than just the remainder tail.
        let m = EuclideanMetric::new(&ps);
        let centers = center_subset(ps.len(), &picks);
        check_metric(&m, &centers, true);
    }

    #[test]
    fn squared_bulk_equals_scalar_within_ulps(
        ps in arb_points_with_ties(10, 3),
        picks in proptest::collection::vec(any::<usize>(), 1..6),
    ) {
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        let centers = center_subset(ps.len(), &picks);
        check_metric(&m, &centers, false);
    }

    #[test]
    fn matrix_bulk_equals_scalar(
        ps in arb_points_with_ties(9, 2),
        picks in proptest::collection::vec(any::<usize>(), 1..5),
    ) {
        let e = EuclideanMetric::new(&ps);
        let m = MatrixMetric::from_metric(&e);
        let centers = center_subset(ps.len(), &picks);
        check_metric(&m, &centers, true);
    }

    #[test]
    fn truncated_bulk_equals_scalar(
        ps in arb_points_with_ties(9, 2),
        picks in proptest::collection::vec(any::<usize>(), 1..5),
        tau in 0.0f64..5e3,
    ) {
        // Truncation collapses everything within τ to distance 0 — the
        // metric whose ties are *structural*, not accidental. The scalar
        // first-wins rule must survive the bulk path.
        let m = TruncatedMetric::new(EuclideanMetric::new(&ps), tau);
        let centers = center_subset(ps.len(), &picks);
        check_metric(&m, &centers, true);
    }

    #[test]
    fn center_block_equals_cross_metric(
        ps in arb_points_with_ties(10, 4),
        picks in proptest::collection::vec(any::<usize>(), 1..5),
    ) {
        // The coordinate-space kernel vs the scalar CrossMetric scan —
        // the final-evaluation path of every artifact.
        let center_ids = center_subset(ps.len(), &picks);
        let centers = ps.subset(&center_ids);
        let block = CenterBlock::new(&centers);
        let x = CrossMetric::new(&ps, &centers);
        let ids: Vec<usize> = (0..ps.len()).collect();
        for threads in [ThreadBudget::serial(), ThreadBudget::new(3)] {
            let a = block.assign(&ps, &ids, threads);
            for q in 0..ps.len() {
                let (sp, sd) = x.nearest(q).expect("non-empty");
                prop_assert_eq!(a.pos[q], sp, "query {}", q);
                prop_assert_eq!(a.dist[q], sd, "query {}", q);
            }
        }
    }

    #[test]
    fn euclidean_dims_bulk_equals_scalar(
        dim_ix in 0usize..4,
        seed_rows in proptest::collection::vec(proptest::collection::vec(-1e4f64..1e4, 128), 2..8),
        dup in proptest::collection::vec(any::<bool>(), 8),
        picks in proptest::collection::vec(any::<usize>(), 8..12),
    ) {
        // One sweep over the dims the kernels branch on: 2 (below the
        // tiled band), 4 (tiled GEMM micro-kernel), 32 and 128 (screened
        // partial-distance scans). Duplicated rows force ties; `picks`
        // can repeat, so coincident centers occur too.
        let dims = [2usize, 4, 32, 128];
        let dim = dims[dim_ix];
        let mut all = Vec::new();
        for (i, r) in seed_rows.iter().enumerate() {
            let row: Vec<f64> = r[..dim].to_vec();
            all.push(row.clone());
            if dup.get(i).copied().unwrap_or(false) {
                all.push(row);
            }
        }
        let ps = PointSet::from_rows(&all);
        let m = EuclideanMetric::new(&ps);
        let centers = center_subset(ps.len(), &picks);
        check_metric(&m, &centers, true);
    }

    #[test]
    fn bounded_assigner_matches_fresh_blocked_pass(
        ps in arb_points_with_ties(12, 3),
        picks in proptest::collection::vec(any::<usize>(), 1..6),
        shift in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        // A BoundedAssigner driven through drifting centers (Lloyd's
        // shape) must reproduce a fresh blocked pass bit for bit every
        // iteration, at every thread budget — including iterations where
        // the bounds certify most winners and skip the scan.
        let ids: Vec<usize> = (0..ps.len()).collect();
        let center_ids = center_subset(ps.len(), &picks);
        let base: Vec<Vec<f64>> =
            center_ids.iter().map(|&c| ps.point(c).to_vec()).collect();
        for threads in [ThreadBudget::serial(), ThreadBudget::new(4)] {
            let mut centers = base.clone();
            let mut bounded = BoundedAssigner::new();
            let mut out = Assignment::default();
            for iter in 0..4 {
                bounded.assign_sq(&ps, &ids, &centers, threads, &mut out);
                let block = CenterBlock::from_rows(ps.dim(), &centers);
                let fresh = block.assign_sq(&ps, &ids, threads);
                prop_assert_eq!(&out.pos, &fresh.pos, "iter {} {:?}", iter, threads);
                prop_assert_eq!(&out.dist, &fresh.dist, "iter {} {:?}", iter, threads);
                // Drift half the centers (iteration 1 drifts nothing at
                // all — the all-skip case); the rest stay coincident with
                // their previous position.
                for (ci, c) in centers.iter_mut().enumerate() {
                    if iter > 0 && ci % 2 == 0 {
                        for (x, s) in c.iter_mut().zip(&shift) {
                            *x += s * iter as f64 * 0.1;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zorder_scan_order_is_invisible(
        ps in arb_points_with_ties(12, 4),
        picks in proptest::collection::vec(any::<usize>(), 1..6),
    ) {
        // Scanning queries in Morton order (and scattering back) must be
        // indistinguishable from the caller's order.
        let center_ids = center_subset(ps.len(), &picks);
        let centers = ps.subset(&center_ids);
        let block = CenterBlock::new(&centers);
        let ids: Vec<usize> = (0..ps.len()).collect();
        let order = zorder_permutation(&ps, &ids);
        for threads in [ThreadBudget::serial(), ThreadBudget::new(4)] {
            let plain = block.assign_sq(&ps, &ids, threads);
            let ordered = block.assign_sq_ordered(&ps, &ids, &order, threads);
            prop_assert_eq!(&plain.pos, &ordered.pos);
            prop_assert_eq!(&plain.dist, &ordered.dist);
        }
    }

    #[test]
    fn gonzalez_threads_do_not_change_output(
        ps in arb_points_with_ties(12, 3),
    ) {
        use dpc_metric::kernel::par_chunks_mut;
        // Chunked parallel fills equal one inline fill (par helper sanity).
        let mut serial_out = vec![0.0f64; ps.len()];
        let mut par_out = vec![0.0f64; ps.len()];
        let fill = |start: usize, chunk: &mut [f64]| {
            for (o, v) in chunk.iter_mut().enumerate() {
                *v = ps.point((start + o) % ps.len())[0];
            }
        };
        par_chunks_mut(ThreadBudget::serial(), &mut serial_out, fill);
        par_chunks_mut(ThreadBudget::new(4), &mut par_out, fill);
        prop_assert_eq!(serial_out, par_out);
    }
}
