//! Property-based tests of the hull / allocation machinery and the
//! protocol-level invariants of Algorithm 1.

use dpc_coordinator::RunOptions;
use dpc_core::allocation::allocate_outliers;
use dpc_core::hull::{geometric_grid, ConvexProfile};
use dpc_core::{run_distributed_median, MedianConfig};
use dpc_metric::PointSet;
use proptest::prelude::*;

/// Random non-increasing cost profile on a geometric grid.
fn arb_profile(t: usize) -> impl Strategy<Value = Vec<(usize, f64)>> {
    let grid = geometric_grid(t, 2.0);
    let len = grid.len();
    proptest::collection::vec(0.0f64..100.0, len..=len).prop_map(move |drops| {
        let mut v = Vec::with_capacity(len);
        let mut acc: f64 = drops.iter().sum::<f64>() + 1.0;
        for (i, &q) in grid.iter().enumerate() {
            v.push((q, acc));
            acc -= drops[i];
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn hull_below_profile_and_convex(pts in arb_profile(64)) {
        let h = ConvexProfile::lower_hull(&pts);
        for &(q, c) in &pts {
            prop_assert!(h.eval(q as f64) <= c + 1e-9, "hull above profile at q={q}");
        }
        let mut prev = f64::INFINITY;
        for q in 1..=64usize {
            let m = h.marginal(q);
            prop_assert!(m >= -1e-12, "negative marginal at {q}");
            prop_assert!(m <= prev + 1e-9, "marginal increased at {q}");
            prev = m;
        }
    }

    #[test]
    fn hull_non_increasing(pts in arb_profile(32)) {
        let h = ConvexProfile::lower_hull(&pts);
        let mut prev = f64::INFINITY;
        for q in 0..=32usize {
            let v = h.eval(q as f64);
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn allocation_is_optimal_vs_dp(
        p0 in arb_profile(8),
        p1 in arb_profile(8),
        p2 in arb_profile(8),
    ) {
        let profiles = vec![
            ConvexProfile::lower_hull(&p0),
            ConvexProfile::lower_hull(&p1),
            ConvexProfile::lower_hull(&p2),
        ];
        let t = 8;
        let alloc = allocate_outliers(&profiles, t, 2.0);
        let budget = alloc.total();
        let greedy: f64 = profiles.iter().zip(&alloc.t_i).map(|(p, &ti)| p.eval(ti as f64)).sum();
        // DP optimum over integer allocations with the same budget.
        let mut dp = vec![f64::INFINITY; budget + 1];
        dp[0] = 0.0;
        for p in &profiles {
            let mut next = vec![f64::INFINITY; budget + 1];
            for used in 0..=budget {
                if dp[used].is_finite() {
                    for ti in 0..=t.min(budget - used) {
                        let v = dp[used] + p.eval(ti as f64);
                        if v < next[used + ti] {
                            next[used + ti] = v;
                        }
                    }
                }
            }
            dp = next;
        }
        let opt = dp.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(greedy <= opt + 1e-6, "greedy {greedy} vs dp {opt}");
    }

    #[test]
    fn allocation_sums_to_rank(p0 in arb_profile(16), p1 in arb_profile(16)) {
        let profiles = vec![ConvexProfile::lower_hull(&p0), ConvexProfile::lower_hull(&p1)];
        for &rho in &[1.0f64, 1.5, 2.0] {
            let alloc = allocate_outliers(&profiles, 16, rho);
            let rank = ((rho * 16.0).floor() as usize).clamp(1, 2 * 16);
            prop_assert_eq!(alloc.total(), rank);
            for &ti in &alloc.t_i {
                prop_assert!(ti <= 16);
            }
        }
    }

    #[test]
    fn allocation_threshold_is_the_rank_rho_t_marginal(
        p0 in arb_profile(8),
        p1 in arb_profile(8),
        p2 in arb_profile(8),
        rho in 1.0f64..3.0,
    ) {
        // Lemma 3.3 structure: the allocation is exactly "threshold the
        // stably-sorted marginals at rank floor(rho*t)", the winners form a
        // per-site prefix, and the result is locally exchange-optimal.
        let profiles = vec![
            ConvexProfile::lower_hull(&p0),
            ConvexProfile::lower_hull(&p1),
            ConvexProfile::lower_hull(&p2),
        ];
        let t = 8;
        let alloc = allocate_outliers(&profiles, t, rho);

        // Recompute the paper's Equation (4) order independently.
        let mut items: Vec<(f64, usize, usize)> = Vec::new();
        for (i, p) in profiles.iter().enumerate() {
            for q in 1..=t {
                items.push((p.marginal(q), i, q));
            }
        }
        items.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let rank = ((rho * t as f64).floor() as usize).clamp(1, items.len());

        prop_assert_eq!(alloc.total(), rank, "sum t_i must equal the rank");
        prop_assert!(
            alloc.threshold == items[rank - 1].0,
            "threshold {} is not the rank-{} marginal {}",
            alloc.threshold, rank, items[rank - 1].0
        );
        prop_assert_eq!((alloc.i0, alloc.q0), (items[rank - 1].1, items[rank - 1].2));

        // Threshold separation over the winner set (the top-`rank` items of
        // the Equation (4) order): winners' marginals are >= the threshold,
        // losers' are <= it, and the per-site winner counts are the t_i.
        let mut counts = vec![0usize; profiles.len()];
        for &(m, i, q) in &items[..rank] {
            counts[i] += 1;
            prop_assert!(m >= alloc.threshold, "winner ({i},{q}) below threshold");
        }
        for &(m, i, q) in &items[rank..] {
            prop_assert!(m <= alloc.threshold, "loser ({i},{q}) above threshold");
        }
        prop_assert_eq!(&counts, &alloc.t_i);

        // The winners at each site form the prefix 1..=t_i — and at the
        // exceptional site it ends exactly at q0. Exactly-equal marginals on
        // one linear hull segment can come out of `eval` differing by ~1 ulp,
        // which legitimately reorders ties, so only require the exact prefix
        // shape when every computed sequence is truly non-increasing (always
        // so in exact arithmetic — Lemma 3.3).
        let exact_monotone = profiles
            .iter()
            .all(|p| (2..=t).all(|q| p.marginal(q - 1) >= p.marginal(q)));
        if exact_monotone {
            prop_assert_eq!(alloc.t_i[alloc.i0], alloc.q0);
            for &(_, i, q) in &items[..rank] {
                prop_assert!(q <= alloc.t_i[i], "winner ({i},{q}) outside prefix 1..={}", alloc.t_i[i]);
            }
        }

        // Exchange optimality: moving one outlier between any two sites
        // cannot lower the total cost (the convexity argument of Lemma 3.3).
        for a in 0..profiles.len() {
            for b in 0..profiles.len() {
                if a == b || alloc.t_i[a] == 0 || alloc.t_i[b] >= t {
                    continue;
                }
                let cur = profiles[a].eval(alloc.t_i[a] as f64)
                    + profiles[b].eval(alloc.t_i[b] as f64);
                let alt = profiles[a].eval((alloc.t_i[a] - 1) as f64)
                    + profiles[b].eval((alloc.t_i[b] + 1) as f64);
                prop_assert!(alt + 1e-9 >= cur, "exchange {a}->{b} improves: {alt} < {cur}");
            }
        }
    }

    #[test]
    fn protocol_invariants_on_random_shards(
        seed in 0u64..32,
        sites in 2usize..5,
        t in 1usize..6,
    ) {
        // Small random instances: the protocol must terminate in 2 rounds,
        // ship Sigma t_i <= 3t, and return at most k centers.
        let mut rows = Vec::new();
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut rnd = move || {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            ((x >> 11) as f64 / (1u64 << 53) as f64) * 100.0
        };
        for _ in 0..40 {
            rows.push(vec![rnd(), rnd()]);
        }
        let ps = PointSet::from_rows(&rows);
        let per = 40usize.div_ceil(sites);
        let shards: Vec<PointSet> = (0..sites)
            .map(|i| {
                let ids: Vec<usize> = (i * per..((i + 1) * per).min(40)).collect();
                ps.subset(&ids)
            })
            .collect();
        let k = 2;
        let out = run_distributed_median(
            &shards,
            MedianConfig::new(k, t),
            RunOptions { parallel: false, ..Default::default() },
        );
        prop_assert_eq!(out.stats.num_rounds(), 2);
        prop_assert!(out.output.shipped_outliers <= (3 * t) as u64);
        prop_assert!(out.output.centers.len() <= k);
        prop_assert!(out.output.coordinator_cost.is_finite());
    }
}
