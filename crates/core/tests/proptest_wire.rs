//! Property tests of the wire formats: `encode → decode` is the identity,
//! encoded sizes match the analytic byte model (`B = 8·dim` per point,
//! LEB128 varints for counts), and the byte counts the coordinator
//! simulator records in [`dpc_coordinator::CommStats`] equal the actual
//! encoded message lengths.

use bytes::Bytes;
use dpc_coordinator::{run_protocol, Coordinator, CoordinatorStep, RunOptions, Site};
use dpc_core::wire::{PreclusterMsg, ThresholdMsg};
use dpc_metric::encode::{point_bytes, varint_bytes};
use dpc_metric::{PointSet, WireReader, WireWriter};
use proptest::prelude::*;

fn point_set(dim: usize, rows: &[Vec<f64>]) -> PointSet {
    let mut ps = PointSet::new(dim);
    for r in rows {
        ps.push(&r[..dim]);
    }
    ps
}

/// Random `PreclusterMsg` with consistent dimensions and weight count.
/// Rows are generated at the maximum dimension and truncated to `dim`.
fn arb_precluster() -> impl Strategy<Value = PreclusterMsg> {
    (
        1usize..5,
        proptest::collection::vec(proptest::collection::vec(-1e6f64..1e6, 4..=4), 0..10),
        proptest::collection::vec(0.0f64..1e4, 10..=10),
        proptest::collection::vec(proptest::collection::vec(-1e6f64..1e6, 4..=4), 0..7),
        0u64..100_000,
    )
        .prop_map(|(dim, crows, weights, orows, t_i)| PreclusterMsg {
            centers: point_set(dim, &crows),
            weights: weights[..crows.len()].to_vec(),
            outliers: point_set(dim, &orows),
            t_i,
        })
}

fn arb_threshold() -> impl Strategy<Value = ThresholdMsg> {
    (0.0f64..1e12, 0u64..64, 0u64..100_000, 0usize..2).prop_map(
        |(threshold, i0, q0, exceptional)| ThresholdMsg {
            threshold,
            i0,
            q0,
            exceptional: exceptional == 1,
        },
    )
}

/// Analytic size of a `PreclusterMsg` under the paper's byte model.
fn precluster_bytes(m: &PreclusterMsg) -> usize {
    let dim = m.centers.dim();
    varint_bytes(dim as u64)
        + varint_bytes(m.centers.len() as u64)
        + m.centers.len() * (point_bytes(dim) + 8)
        + varint_bytes(m.outliers.len() as u64)
        + m.outliers.len() * point_bytes(dim)
        + varint_bytes(m.t_i)
}

fn threshold_bytes(m: &ThresholdMsg) -> usize {
    8 + varint_bytes(m.i0) + varint_bytes(m.q0) + 1
}

/// Site that replies with a fixed pre-encoded message.
struct FixedReplySite {
    reply: Bytes,
}

impl Site for FixedReplySite {
    fn handle(&mut self, _round: usize, _msg: &Bytes) -> Bytes {
        self.reply.clone()
    }
}

/// Coordinator that sends one fixed downlink per site, collects the
/// replies, and finishes.
struct OneExchange {
    downlinks: Vec<Bytes>,
    replies: Vec<Bytes>,
}

impl Coordinator for OneExchange {
    type Output = Vec<Bytes>;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        if round == 0 {
            CoordinatorStep::Messages(self.downlinks.clone())
        } else {
            self.replies = replies
                .into_iter()
                .map(|r| r.expect("no faults injected"))
                .collect();
            CoordinatorStep::Finish
        }
    }

    fn finish(self) -> Vec<Bytes> {
        self.replies
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn precluster_roundtrip_identity_and_size(msg in arb_precluster()) {
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), precluster_bytes(&msg), "analytic size mismatch");
        let back = PreclusterMsg::decode(encoded);
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn threshold_roundtrip_identity_and_size(msg in arb_threshold()) {
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), threshold_bytes(&msg), "analytic size mismatch");
        let back = ThresholdMsg::decode(encoded);
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn f64_slice_roundtrip_and_size(vs in proptest::collection::vec(-1e9f64..1e9, 0..20)) {
        let mut w = WireWriter::new();
        w.put_f64_slice(&vs);
        prop_assert_eq!(w.len(), varint_bytes(vs.len() as u64) + 8 * vs.len());
        let mut r = WireReader::new(w.finish());
        prop_assert_eq!(r.get_f64_slice(), vs);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn coordinator_stats_charge_exact_message_lengths(
        uplinks in proptest::collection::vec(arb_precluster(), 1..5),
        downlink in arb_threshold(),
    ) {
        // Push real messages through the simulator: the per-round byte
        // vectors in CommStats must equal the encoded lengths exactly, and
        // the messages must survive the wire bit-for-bit.
        let s = uplinks.len();
        let down_bytes = downlink.encode();
        let mut sites: Vec<Box<dyn Site + '_>> = uplinks
            .iter()
            .map(|m| Box::new(FixedReplySite { reply: m.encode() }) as Box<dyn Site>)
            .collect();
        let coordinator = OneExchange {
            downlinks: vec![down_bytes.clone(); s],
            replies: Vec::new(),
        };
        let out = run_protocol(
            &mut sites,
            coordinator,
            RunOptions { parallel: false, max_rounds: 4, ..Default::default() },
        );

        prop_assert_eq!(out.stats.num_rounds(), 1);
        let round = &out.stats.rounds[0];
        for (i, uplink) in uplinks.iter().enumerate() {
            prop_assert_eq!(round.coordinator_to_sites[i], threshold_bytes(&downlink));
            prop_assert_eq!(round.sites_to_coordinator[i], precluster_bytes(uplink));
        }
        let expected_total = s * threshold_bytes(&downlink)
            + uplinks.iter().map(precluster_bytes).sum::<usize>();
        prop_assert_eq!(out.stats.total_bytes(), expected_total);

        // Identity through the simulated wire.
        for (reply, original) in out.output.into_iter().zip(&uplinks) {
            prop_assert_eq!(&PreclusterMsg::decode(reply), original);
        }
    }
}
