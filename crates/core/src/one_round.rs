//! 1-round variants (Appendix A, Table 2): set `t_i = t` at every site.
//!
//! Without the allocation round each site must hedge by ignoring the full
//! `t` points locally, so communication grows to `O((sk + st)·B)` — the
//! `Θ(st)` burden the paper's 2-round algorithms remove. For the center
//! objective this is precisely the Malkomes et al. \[19\] algorithm (each
//! site ships its `k + t` Gonzalez prefix), which Theorem 4.3 improves on;
//! it doubles as the experimental baseline for E4/E11.

use crate::algo_center::CenterConfig;
use crate::algo_median::MedianConfig;
use crate::wire::{DistributedSolution, PreclusterMsg};
use bytes::Bytes;
use dpc_cluster::{
    charikar_center, gonzalez_with, median_bicriteria, BicriteriaParams, CenterParams, Solution,
};
use dpc_coordinator::{
    run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site,
};
use dpc_metric::{
    EuclideanMetric, NearestAssigner, Objective, PointSet, SquaredMetric, WeightedSet, WireWriter,
};

/// Site for the 1-round median/means protocol: one shot, full hedge.
struct OneRoundMedianSite<'a> {
    data: &'a PointSet,
    site_id: usize,
    cfg: MedianConfig,
}

impl Site for OneRoundMedianSite<'_> {
    fn handle(&mut self, round: usize, _msg: &Bytes) -> Bytes {
        assert_eq!(round, 0, "one-round site called twice");
        let n = self.data.len();
        if n == 0 {
            return PreclusterMsg {
                centers: PointSet::new(self.data.dim()),
                weights: Vec::new(),
                outliers: PointSet::new(self.data.dim()),
                t_i: 0,
            }
            .encode_with(self.cfg.encoding);
        }
        let t_local = self.cfg.t.min(n);
        let mut params = BicriteriaParams {
            eps: 0.0,
            lambda_iters: self.cfg.lambda_iters,
            ls: self.cfg.ls,
        };
        params.ls.seed = params.ls.seed.wrapping_add(self.site_id as u64);
        params.ls.threads = self.cfg.threads;
        let w = WeightedSet::unit(n);
        let sol = if self.cfg.means {
            let m = SquaredMetric::new(EuclideanMetric::new(self.data));
            let s = median_bicriteria(
                &m,
                &w,
                2 * self.cfg.k,
                t_local as f64,
                Objective::Median,
                params,
            );
            Solution::evaluate_with(
                &m,
                &w,
                s.centers,
                t_local as f64,
                Objective::Median,
                self.cfg.threads,
            )
        } else {
            let m = EuclideanMetric::new(self.data);
            let s = median_bicriteria(
                &m,
                &w,
                2 * self.cfg.k,
                t_local as f64,
                Objective::Median,
                params,
            );
            Solution::evaluate_with(
                &m,
                &w,
                s.centers,
                t_local as f64,
                Objective::Median,
                self.cfg.threads,
            )
        };
        crate::algo_median::precluster_msg(self.data, &sol, true, t_local)
            .encode_with(self.cfg.encoding)
    }
}

/// Coordinator for the 1-round median/means protocol.
struct OneRoundMedianCoordinator {
    cfg: MedianConfig,
    dim: usize,
    result: Option<DistributedSolution>,
}

impl Coordinator for OneRoundMedianCoordinator {
    type Output = DistributedSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        match round {
            // The empty kick still travels inside a codec frame so the
            // driver can read a raw length out of every delivered payload.
            0 => CoordinatorStep::Broadcast(dpc_codec::frame(
                self.cfg.encoding,
                WireWriter::new(),
                &[],
            )),
            1 => {
                // One-round degradation is trivial: merge whatever
                // summaries arrived.
                let enc = self.cfg.encoding;
                let msgs: Vec<PreclusterMsg> = replies
                    .into_iter()
                    .flatten()
                    .map(|b| PreclusterMsg::decode_with(enc, b))
                    .collect();
                let dim = msgs
                    .iter()
                    .find(|m| !m.centers.is_empty() || !m.outliers.is_empty())
                    .map(|m| m.centers.dim())
                    .unwrap_or(self.dim);
                let mut merged = PointSet::new(dim);
                let mut weighted = WeightedSet::new();
                let mut shipped = 0u64;
                for m in &msgs {
                    shipped += m.t_i;
                    let off = merged.extend_from(&m.centers);
                    for (j, &w) in m.weights.iter().enumerate() {
                        weighted.push(off + j, w);
                    }
                    let off = merged.extend_from(&m.outliers);
                    for j in 0..m.outliers.len() {
                        weighted.push(off + j, 1.0);
                    }
                }
                let result = if weighted.is_empty() {
                    DistributedSolution {
                        centers: PointSet::new(dim),
                        coordinator_cost: 0.0,
                        excluded_weight: 0.0,
                        shipped_outliers: 0,
                    }
                } else {
                    let mut ls = self.cfg.ls;
                    ls.threads = self.cfg.threads;
                    let params = BicriteriaParams {
                        eps: self.cfg.eps,
                        lambda_iters: self.cfg.lambda_iters,
                        ls,
                    };
                    let sol = if self.cfg.means {
                        let m = SquaredMetric::new(EuclideanMetric::new(&merged));
                        median_bicriteria(
                            &m,
                            &weighted,
                            self.cfg.k,
                            self.cfg.t as f64,
                            Objective::Median,
                            params,
                        )
                    } else {
                        let m = EuclideanMetric::new(&merged);
                        median_bicriteria(
                            &m,
                            &weighted,
                            self.cfg.k,
                            self.cfg.t as f64,
                            Objective::Median,
                            params,
                        )
                    };
                    DistributedSolution {
                        centers: merged.subset(&sol.centers),
                        coordinator_cost: sol.cost,
                        excluded_weight: sol.outlier_weight(),
                        shipped_outliers: shipped,
                    }
                };
                self.result = Some(result);
                CoordinatorStep::Finish
            }
            r => panic!("one-round coordinator has no round {r}"),
        }
    }

    fn finish(self) -> DistributedSolution {
        self.result.expect("protocol finished")
    }
}

/// Runs the 1-round `(k, (1+ε)t)`-median/means protocol (`t_i = t`
/// everywhere; `O((sk+st)B)` communication).
pub fn run_one_round_median(
    shards: &[PointSet],
    cfg: MedianConfig,
    options: RunOptions,
) -> ProtocolOutput<DistributedSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    let options = options.encoding(cfg.encoding);
    let dim = shards[0].dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .enumerate()
        .map(|(i, ps)| {
            Box::new(OneRoundMedianSite {
                data: ps,
                site_id: i,
                cfg,
            }) as Box<dyn Site + '_>
        })
        .collect();
    let coordinator = OneRoundMedianCoordinator {
        cfg,
        dim,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

/// Site for the 1-round center protocol (the Malkomes et al. baseline):
/// ships the `k + t` Gonzalez prefix, weighted by attachment counts.
struct OneRoundCenterSite<'a> {
    data: &'a PointSet,
    cfg: CenterConfig,
}

impl Site for OneRoundCenterSite<'_> {
    fn handle(&mut self, round: usize, _msg: &Bytes) -> Bytes {
        assert_eq!(round, 0, "one-round site called twice");
        let n = self.data.len();
        if n == 0 {
            return PreclusterMsg {
                centers: PointSet::new(self.data.dim()),
                weights: Vec::new(),
                outliers: PointSet::new(self.data.dim()),
                t_i: 0,
            }
            .encode_with(self.cfg.encoding);
        }
        let m = EuclideanMetric::new(self.data);
        let ids: Vec<usize> = (0..n).collect();
        let prefix_len = (self.cfg.k + self.cfg.t).min(n);
        let ord = gonzalez_with(&m, &ids, prefix_len, 0, self.cfg.threads);
        let chosen = &ord.order[..];
        let assigned = NearestAssigner::with_threads(&m, self.cfg.threads).assign(&ids, chosen);
        let mut weights = vec![0.0f64; chosen.len()];
        for &pos in &assigned.pos {
            weights[pos] += 1.0;
        }
        PreclusterMsg {
            centers: self.data.subset(chosen),
            weights,
            outliers: PointSet::new(self.data.dim()),
            t_i: self.cfg.t as u64,
        }
        .encode_with(self.cfg.encoding)
    }
}

/// Coordinator for the 1-round center protocol.
struct OneRoundCenterCoordinator {
    cfg: CenterConfig,
    dim: usize,
    result: Option<DistributedSolution>,
}

impl Coordinator for OneRoundCenterCoordinator {
    type Output = DistributedSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        match round {
            0 => CoordinatorStep::Broadcast(dpc_codec::frame(
                self.cfg.encoding,
                WireWriter::new(),
                &[],
            )),
            1 => {
                let enc = self.cfg.encoding;
                let msgs: Vec<PreclusterMsg> = replies
                    .into_iter()
                    .flatten()
                    .map(|b| PreclusterMsg::decode_with(enc, b))
                    .collect();
                let dim = msgs
                    .iter()
                    .find(|m| !m.centers.is_empty())
                    .map(|m| m.centers.dim())
                    .unwrap_or(self.dim);
                let mut merged = PointSet::new(dim);
                let mut weighted = WeightedSet::new();
                for m in &msgs {
                    let off = merged.extend_from(&m.centers);
                    for (j, &w) in m.weights.iter().enumerate() {
                        weighted.push(off + j, w);
                    }
                }
                let result = if weighted.is_empty() {
                    DistributedSolution {
                        centers: PointSet::new(dim),
                        coordinator_cost: 0.0,
                        excluded_weight: 0.0,
                        shipped_outliers: 0,
                    }
                } else {
                    let metric = EuclideanMetric::new(&merged);
                    let sol = charikar_center(
                        &metric,
                        &weighted,
                        self.cfg.k,
                        self.cfg.t as f64,
                        CenterParams {
                            threads: self.cfg.threads,
                            ..self.cfg.charikar
                        },
                    );
                    DistributedSolution {
                        centers: merged.subset(&sol.centers),
                        coordinator_cost: sol.cost,
                        excluded_weight: sol.outlier_weight(),
                        shipped_outliers: msgs.iter().map(|m| m.t_i).sum(),
                    }
                };
                self.result = Some(result);
                CoordinatorStep::Finish
            }
            r => panic!("one-round coordinator has no round {r}"),
        }
    }

    fn finish(self) -> DistributedSolution {
        self.result.expect("protocol finished")
    }
}

/// Runs the 1-round `(k,t)`-center protocol (Malkomes et al. style,
/// `O((sk+st)B)` communication).
pub fn run_one_round_center(
    shards: &[PointSet],
    cfg: CenterConfig,
    options: RunOptions,
) -> ProtocolOutput<DistributedSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    let options = options.encoding(cfg.encoding);
    let dim = shards[0].dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .map(|ps| Box::new(OneRoundCenterSite { data: ps, cfg }) as Box<dyn Site + '_>)
        .collect();
    let coordinator = OneRoundCenterCoordinator {
        cfg,
        dim,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo_center::run_distributed_center;
    use crate::algo_median::run_distributed_median;
    use crate::evaluate::evaluate_on_full_data;

    fn shards(s: usize, outliers: usize) -> Vec<PointSet> {
        (0..s)
            .map(|i| {
                let mut rows: Vec<Vec<f64>> = (0..30)
                    .map(|j| vec![(i * 100) as f64 + (j % 5) as f64 * 0.1, 0.0])
                    .collect();
                if i == 0 {
                    for o in 0..outliers {
                        rows.push(vec![1e5 + (o as f64) * 1e4, 5e4]);
                    }
                }
                PointSet::from_rows(&rows)
            })
            .collect()
    }

    #[test]
    fn one_round_median_works_but_ships_more() {
        let sh = shards(4, 3);
        let cfg = MedianConfig::new(4, 3);
        let one = run_one_round_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let two = run_distributed_median(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (c1, _) = evaluate_on_full_data(&sh, &one.output.centers, 6, Objective::Median);
        let (c2, _) = evaluate_on_full_data(&sh, &two.output.centers, 6, Objective::Median);
        assert!(c1 < 50.0, "one-round cost {c1}");
        assert!(c2 < 50.0, "two-round cost {c2}");
        assert_eq!(one.stats.num_rounds(), 1);
        // Every site hedges t outliers in one round: Σ t_i = s·t versus ≤ 3t.
        assert_eq!(one.output.shipped_outliers, 4 * 3);
        assert!(two.output.shipped_outliers <= 3 * 3);
    }

    #[test]
    fn one_round_center_is_malkomes_baseline() {
        // The 2-round win needs the paper's regime t >> s, k (each 1-round
        // site hedges a full t extra points; 2-round pays only O(log t)
        // profile values plus a shared ~rho*t).
        let sh = shards(3, 20);
        let cfg = CenterConfig::new(3, 20);
        let one = run_one_round_center(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let two = run_distributed_center(
            &sh,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (c1, _) = evaluate_on_full_data(&sh, &one.output.centers, 20, Objective::Center);
        let (c2, _) = evaluate_on_full_data(&sh, &two.output.centers, 20, Objective::Center);
        assert!(c1 <= 6.0, "one-round center cost {c1}");
        assert!(c2 <= 6.0, "two-round center cost {c2}");
        // The 1-round protocol ships k+t points per site; the 2-round one
        // ships k + t_i with Σ t_i ≤ ~ρt, so it wins once s > ~ρ + k-ish.
        assert!(
            two.stats.upstream_bytes() < one.stats.upstream_bytes(),
            "2-round {}B vs 1-round {}B",
            two.stats.upstream_bytes(),
            one.stats.upstream_bytes()
        );
    }

    #[test]
    fn empty_shards_one_round() {
        let mut sh = shards(2, 1);
        sh.push(PointSet::new(2));
        let m = run_one_round_median(
            &sh,
            MedianConfig::new(2, 1),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(m.output.centers.len() <= 2);
        let c = run_one_round_center(
            &sh,
            CenterConfig::new(2, 1),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(c.output.centers.len() <= 2);
    }
}
