//! Message formats shared by the distributed protocols, and the common
//! output type.
//!
//! Every message actually crosses the simulated wire as bytes; these
//! helpers define the framing. Per the paper's accounting, a point costs
//! `B = 8·dim` bytes and counts cost `O(log n)` bits (varints).

use bytes::Bytes;
use dpc_codec::Encoding;
use dpc_metric::{PointSet, WireReader, WireWriter};

/// A preclustering summary sent from a site to the coordinator in the final
/// round: weighted centers plus (optionally) the locally ignored points.
#[derive(Clone, Debug, PartialEq)]
pub struct PreclusterMsg {
    /// Centers as raw coordinates.
    pub centers: PointSet,
    /// Weight (attached point count) per center.
    pub weights: Vec<f64>,
    /// Locally ignored points, sent verbatim (empty in the counts-only
    /// δ-variant of Theorem 3.8).
    pub outliers: PointSet,
    /// Number of locally ignored points `t_i` (redundant with
    /// `outliers.len()` except in the counts-only variant).
    pub t_i: u64,
}

impl PreclusterMsg {
    fn write(&self) -> WireWriter {
        let mut w = WireWriter::new();
        w.put_varint(self.centers.dim() as u64);
        w.put_varint(self.centers.len() as u64);
        for (i, p) in self.centers.iter() {
            w.put_point(p);
            w.put_f64(self.weights[i]);
        }
        w.put_varint(self.outliers.len() as u64);
        for (_, p) in self.outliers.iter() {
            w.put_point(p);
        }
        w.put_varint(self.t_i);
        w
    }

    /// Serializes the summary uncompressed.
    pub fn encode(&self) -> Bytes {
        self.write().finish()
    }

    /// Serializes the summary inside a codec frame. `Encoding::Raw`
    /// produces the same bytes as [`Self::encode`] (no frame header).
    /// Center and outlier coordinates are subject to the codec's
    /// (possibly lossy) coordinate transform; weights and counts are
    /// always exact.
    pub fn encode_with(&self, encoding: Encoding) -> Bytes {
        dpc_codec::frame(encoding, self.write(), &[])
    }

    /// Deserializes a summary produced by [`Self::encode_with`] with the
    /// same encoding.
    pub fn decode_with(encoding: Encoding, buf: Bytes) -> Self {
        Self::decode(dpc_codec::unframe(encoding, buf, &[]))
    }

    /// Deserializes a summary produced by [`Self::encode`].
    pub fn decode(buf: Bytes) -> Self {
        let mut r = WireReader::new(buf);
        let dim = r.get_varint() as usize;
        let nc = r.get_varint() as usize;
        let mut centers = PointSet::with_capacity(dim, nc);
        let mut weights = Vec::with_capacity(nc);
        let mut p = Vec::with_capacity(dim);
        for _ in 0..nc {
            r.read_point_into(dim, &mut p);
            centers.push(&p);
            weights.push(r.get_f64());
        }
        let no = r.get_varint() as usize;
        let mut outliers = PointSet::with_capacity(dim, no);
        for _ in 0..no {
            r.read_point_into(dim, &mut p);
            outliers.push(&p);
        }
        let t_i = r.get_varint();
        PreclusterMsg {
            centers,
            weights,
            outliers,
            t_i,
        }
    }
}

/// The threshold message the coordinator sends each site after the
/// allocation step (`ℓ(i₀,q₀)`, `i₀`, `q₀`, plus "you are the exceptional
/// site" flag).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdMsg {
    /// The rank-`ρt` marginal.
    pub threshold: f64,
    /// Exceptional site id.
    pub i0: u64,
    /// Exceptional rank position.
    pub q0: u64,
    /// Whether the receiving site is `i₀`.
    pub exceptional: bool,
}

impl ThresholdMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_f64(self.threshold);
        w.put_varint(self.i0);
        w.put_varint(self.q0);
        w.put_varint(u64::from(self.exceptional));
        w.finish()
    }

    /// Serializes the message inside a codec frame. The payload carries
    /// no coordinate spans, so every encoding keeps it bit-exact.
    pub fn encode_with(&self, encoding: Encoding) -> Bytes {
        let mut w = WireWriter::new();
        w.put_f64(self.threshold);
        w.put_varint(self.i0);
        w.put_varint(self.q0);
        w.put_varint(u64::from(self.exceptional));
        dpc_codec::frame(encoding, w, &[])
    }

    /// Deserializes a message produced by [`Self::encode_with`] with the
    /// same encoding.
    pub fn decode_with(encoding: Encoding, buf: Bytes) -> Self {
        Self::decode(dpc_codec::unframe(encoding, buf, &[]))
    }

    /// Deserializes the message.
    pub fn decode(buf: Bytes) -> Self {
        let mut r = WireReader::new(buf);
        ThresholdMsg {
            threshold: r.get_f64(),
            i0: r.get_varint(),
            q0: r.get_varint(),
            exceptional: r.get_varint() != 0,
        }
    }
}

/// Output of a distributed clustering protocol.
#[derive(Clone, Debug)]
pub struct DistributedSolution {
    /// Global centers chosen by the coordinator (coordinates).
    pub centers: PointSet,
    /// Objective value of the coordinator's weighted instance (an upper
    /// bound proxy; re-evaluate against the original data with
    /// [`crate::evaluate::evaluate_on_full_data`] for ground truth).
    pub coordinator_cost: f64,
    /// Outlier weight the coordinator excluded.
    pub excluded_weight: f64,
    /// Total outliers shipped by sites (`Σ t_i`).
    pub shipped_outliers: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precluster_roundtrip() {
        let centers = PointSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let outliers = PointSet::from_rows(&[vec![9.0, 9.0]]);
        let msg = PreclusterMsg {
            centers,
            weights: vec![5.0, 7.0],
            outliers,
            t_i: 1,
        };
        let bytes = msg.encode();
        let back = PreclusterMsg::decode(bytes);
        assert_eq!(msg, back);
    }

    #[test]
    fn precluster_size_scales_with_points() {
        // B = 8 * dim per point + varint/weight overheads: the wire size
        // must grow linearly in centers + outliers, not in n_i.
        let dim = 4;
        fn mk_points(n: usize, dim: usize) -> PointSet {
            let mut ps = PointSet::new(dim);
            for i in 0..n {
                ps.push(&vec![i as f64; dim]);
            }
            ps
        }
        let mk = |nc: usize, no: usize| {
            PreclusterMsg {
                weights: vec![1.0; nc],
                centers: mk_points(nc, dim),
                outliers: mk_points(no, dim),
                t_i: no as u64,
            }
            .encode()
            .len()
        };
        let small = mk(2, 0);
        let big = mk(20, 10);
        // 18 extra centers at (8*4 + 8) bytes, 10 outliers at 8*4.
        assert!(big >= small + 18 * (8 * dim + 8) + 10 * 8 * dim);
    }

    #[test]
    fn threshold_roundtrip() {
        let m = ThresholdMsg {
            threshold: 2.5,
            i0: 3,
            q0: 17,
            exceptional: true,
        };
        assert_eq!(ThresholdMsg::decode(m.encode()), m);
        let m2 = ThresholdMsg {
            threshold: f64::INFINITY,
            i0: 0,
            q0: 0,
            exceptional: false,
        };
        assert_eq!(ThresholdMsg::decode(m2.encode()), m2);
    }

    #[test]
    fn empty_precluster() {
        let msg = PreclusterMsg {
            centers: PointSet::new(3),
            weights: vec![],
            outliers: PointSet::new(3),
            t_i: 0,
        };
        let back = PreclusterMsg::decode(msg.encode());
        assert_eq!(back.centers.len(), 0);
        assert_eq!(back.outliers.len(), 0);
    }
}
