//! **Algorithm 2**: distributed `(k,t)`-center clustering (Theorem 4.3).
//!
//! The preclustering is Gonzalez's farthest-first traversal \[13\]: the
//! insertion radius of the `(k+q)`-th selected point is simultaneously
//!
//! * a 2-approximate certificate of the local `(k, q)`-center cost
//!   (`ℓ(i,q) = min{d(a_j, a_{k+q}) : j < k+q}`, Algorithm 2 line 4), and
//! * a globally comparable marginal: radii are non-increasing in `q`, so
//!   the per-site profiles are convex with no hull computation needed.
//!
//! To keep communication at `O(log t)` values per site (the same budget as
//! Algorithm 1's hull messages), sites ship the *cumulative* profile
//! `F_i(q) = Σ_{r>q} ℓ(i,r)` sampled on the geometric grid `I`; its
//! piecewise-linear marginals are segment-averages of the true radii, and
//! the `ρ = 2` slack of the allocation absorbs the sampling (this is the
//! natural reading of the paper's "follow the subsequent steps as in
//! Algorithm 1", which ships hulls rather than all `t` marginals).
//!
//! After the allocation, site `i` ships its first `k + t_i` Gonzalez
//! points, each weighted by the number of input points attached to it — per
//! Remark 3, *no* input point is ignored in the preclustering; the
//! tentative outliers travel as weight-1 prefix points. The coordinator
//! runs the Charikar et al. greedy-disk algorithm with exactly `t` outliers
//! on the union (Algorithm 2 line 7).

use crate::allocation::allocate_outliers;
use crate::hull::{geometric_grid, ConvexProfile};
use crate::wire::{DistributedSolution, PreclusterMsg, ThresholdMsg};
use bytes::Bytes;
use dpc_cluster::{charikar_center, gonzalez_with, CenterParams, GonzalezOrdering};
use dpc_codec::Encoding;
use dpc_coordinator::{
    run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site,
};
use dpc_metric::{
    EuclideanMetric, NearestAssigner, PointSet, ThreadBudget, WeightedSet, WireWriter,
};

/// Configuration for the distributed `(k,t)`-center protocol.
#[derive(Clone, Copy, Debug)]
pub struct CenterConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Outlier budget `t` (exactly `t` at the coordinator).
    pub t: usize,
    /// Allocation ratio `ρ` (2 recommended).
    pub rho: f64,
    /// Coordinator-side greedy-disk tuning.
    pub charikar: CenterParams,
    /// Thread budget for the bulk kernels (site Gonzalez relax, weight
    /// attachment, coordinator disk scans). Wall-clock only.
    pub threads: ThreadBudget,
    /// Wire encoding every protocol message is framed with
    /// ([`Encoding::Raw`] keeps the exact legacy byte layout).
    pub encoding: Encoding,
}

impl CenterConfig {
    /// Defaults: `ρ = 2`, standard Charikar parameters.
    pub fn new(k: usize, t: usize) -> Self {
        Self {
            k,
            t,
            rho: 2.0,
            charikar: CenterParams::default(),
            threads: ThreadBudget::serial(),
            encoding: Encoding::Raw,
        }
    }

    /// Frames every protocol message with the given wire encoding.
    pub fn encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Caps the bulk-kernel thread budget.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = ThreadBudget::new(n);
        self
    }

    fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_varint(self.k as u64);
        w.put_varint(self.t as u64);
        w.put_f64(self.rho);
        // Framed for uniform driver accounting; sites never decode it.
        dpc_codec::frame(self.encoding, w, &[])
    }
}

/// Site-side state of Algorithm 2.
struct CenterSite<'a> {
    data: &'a PointSet,
    site_id: usize,
    cfg: CenterConfig,
    ordering: Option<GonzalezOrdering>,
    profile: Option<ConvexProfile>,
}

impl<'a> CenterSite<'a> {
    fn new(data: &'a PointSet, site_id: usize, cfg: CenterConfig) -> Self {
        Self {
            data,
            site_id,
            cfg,
            ordering: None,
            profile: None,
        }
    }

    /// The marginal `ℓ(i,q)`: insertion radius of the `(k+q)`-th selection
    /// (1-indexed), i.e. `radii[k+q-1]` 0-indexed; 0 once the prefix is
    /// exhausted (every point is a center, cost 0).
    fn marginal(&self, q: usize) -> f64 {
        let ord = self.ordering.as_ref().expect("gonzalez run");
        let idx = self.cfg.k + q - 1;
        if idx < ord.radii.len() {
            ord.radii[idx]
        } else {
            0.0
        }
    }

    fn build_profile(&mut self) -> Bytes {
        let n = self.data.len();
        let (k, t) = (self.cfg.k, self.cfg.t);
        if n == 0 {
            let profile = ConvexProfile::lower_hull(&[(0, 0.0)]);
            let mut w = WireWriter::new();
            profile.encode(&mut w);
            self.profile = Some(profile);
            return dpc_codec::frame(self.cfg.encoding, w, &[]);
        }
        let m = EuclideanMetric::new(self.data);
        let ids: Vec<usize> = (0..n).collect();
        // Only the first k + t selections are ever needed (Theorem 4.3's
        // O((k+t)·n_i) site time comes from exactly this cap).
        self.ordering = Some(gonzalez_with(&m, &ids, k + t + 1, 0, self.cfg.threads));

        // Cumulative profile on the geometric grid: F(q) = Σ_{r>q} ℓ(i,r).
        let grid = geometric_grid(t, self.cfg.rho.max(1.0 + 1e-9));
        let mut cum = vec![0.0f64; t + 1]; // cum[q] = Σ_{r>q} ℓ
        for q in (0..t).rev() {
            cum[q] = cum[q + 1] + self.marginal(q + 1);
        }
        let pts: Vec<(usize, f64)> = grid.iter().map(|&q| (q, cum[q])).collect();
        let profile = ConvexProfile::lower_hull(&pts);
        let mut w = WireWriter::new();
        profile.encode(&mut w);
        self.profile = Some(profile);
        dpc_codec::frame(self.cfg.encoding, w, &[])
    }

    /// Sorted-prefix rule on the *shipped* profile (identical bytes on both
    /// ends ⇒ identical marginals ⇒ consistent tie-breaking).
    fn t_from_threshold(&self, thr: &ThresholdMsg) -> usize {
        let prof = self.profile.as_ref().expect("profile built");
        let mut ti = 0usize;
        for q in 1..=self.cfg.t {
            let m = prof.marginal(q);
            let wins = m > thr.threshold
                || (m == thr.threshold && (self.site_id as u64, q as u64) <= (thr.i0, thr.q0));
            if wins {
                ti = q;
            } else {
                break;
            }
        }
        ti
    }

    fn respond_threshold(&mut self, msg: &Bytes) -> Bytes {
        let thr = ThresholdMsg::decode_with(self.cfg.encoding, msg.clone());
        let n = self.data.len();
        if n == 0 {
            return PreclusterMsg {
                centers: PointSet::new(self.data.dim()),
                weights: Vec::new(),
                outliers: PointSet::new(self.data.dim()),
                t_i: 0,
            }
            .encode_with(self.cfg.encoding);
        }
        let ti = if thr.exceptional {
            let prof = self.profile.as_ref().expect("profile built");
            prof.next_vertex_at_or_after((thr.q0 as usize).min(self.cfg.t))
        } else {
            self.t_from_threshold(&thr)
        };
        let ord = self.ordering.as_ref().expect("gonzalez run");
        let prefix = (self.cfg.k + ti).min(ord.order.len());
        let chosen = &ord.order[..prefix];
        // Attach every point (none ignored — Remark 3) to its nearest
        // prefix selection, in one bulk assignment pass.
        let m = EuclideanMetric::new(self.data);
        let ids: Vec<usize> = (0..n).collect();
        let assigned = NearestAssigner::with_threads(&m, self.cfg.threads).assign(&ids, chosen);
        let mut weights = vec![0.0f64; prefix];
        for &pos in &assigned.pos {
            weights[pos] += 1.0;
        }
        PreclusterMsg {
            centers: self.data.subset(chosen),
            weights,
            outliers: PointSet::new(self.data.dim()),
            t_i: ti as u64,
        }
        .encode_with(self.cfg.encoding)
    }
}

impl Site for CenterSite<'_> {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        match round {
            0 => self.build_profile(),
            1 => self.respond_threshold(msg),
            r => panic!("center site has no round {r}"),
        }
    }
}

/// Coordinator-side state of Algorithm 2.
struct CenterCoordinator {
    cfg: CenterConfig,
    dim: usize,
    result: Option<DistributedSolution>,
}

impl Coordinator for CenterCoordinator {
    type Output = DistributedSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        match round {
            0 => CoordinatorStep::Broadcast(self.cfg.encode()),
            1 => {
                // Degrade over responders exactly like Algorithm 1: the
                // allocation re-solves over the profiles that arrived,
                // and the threshold names the exceptional site by its
                // original id (see `MedianCoordinator::step`).
                let s = replies.len();
                let responders: Vec<usize> = replies
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.as_ref().map(|_| i))
                    .collect();
                let profiles: Vec<ConvexProfile> = replies
                    .iter()
                    .flatten()
                    .map(|b| {
                        let payload = dpc_codec::unframe(self.cfg.encoding, b.clone(), &[]);
                        let mut r = dpc_metric::WireReader::new(payload);
                        ConvexProfile::decode(&mut r)
                    })
                    .collect();
                let enc = self.cfg.encoding;
                let msg_for = move |threshold: f64, i0: u64, q0: u64| {
                    move |i: usize| {
                        ThresholdMsg {
                            threshold,
                            i0,
                            q0,
                            exceptional: i as u64 == i0,
                        }
                        .encode_with(enc)
                    }
                };
                let msgs = if profiles.is_empty() || self.cfg.t == 0 {
                    (0..s).map(msg_for(f64::INFINITY, u64::MAX, 0)).collect()
                } else {
                    let alloc = allocate_outliers(&profiles, self.cfg.t, self.cfg.rho);
                    let i0 = responders[alloc.i0];
                    (0..s)
                        .map(msg_for(alloc.threshold, i0 as u64, alloc.q0 as u64))
                        .collect()
                };
                CoordinatorStep::Messages(msgs)
            }
            2 => {
                self.result = Some(self.solve_final(replies));
                CoordinatorStep::Finish
            }
            r => panic!("center coordinator has no round {r}"),
        }
    }

    fn finish(self) -> DistributedSolution {
        self.result.expect("protocol finished")
    }
}

impl CenterCoordinator {
    fn solve_final(&mut self, replies: Vec<Option<Bytes>>) -> DistributedSolution {
        let enc = self.cfg.encoding;
        let msgs: Vec<PreclusterMsg> = replies
            .into_iter()
            .flatten()
            .map(|b| PreclusterMsg::decode_with(enc, b))
            .collect();
        let dim = msgs
            .iter()
            .find(|m| !m.centers.is_empty())
            .map(|m| m.centers.dim())
            .unwrap_or(self.dim);
        let mut merged = PointSet::new(dim);
        let mut weighted = WeightedSet::new();
        let mut shipped: u64 = 0;
        for m in &msgs {
            shipped += m.t_i;
            let off = merged.extend_from(&m.centers);
            for (j, &w) in m.weights.iter().enumerate() {
                weighted.push(off + j, w);
            }
        }
        if weighted.is_empty() {
            return DistributedSolution {
                centers: PointSet::new(dim),
                coordinator_cost: 0.0,
                excluded_weight: 0.0,
                shipped_outliers: 0,
            };
        }
        let metric = EuclideanMetric::new(&merged);
        let sol = charikar_center(
            &metric,
            &weighted,
            self.cfg.k,
            self.cfg.t as f64,
            CenterParams {
                threads: self.cfg.threads,
                ..self.cfg.charikar
            },
        );
        DistributedSolution {
            centers: merged.subset(&sol.centers),
            coordinator_cost: sol.cost,
            excluded_weight: sol.outlier_weight(),
            shipped_outliers: shipped,
        }
    }
}

/// Runs the full distributed `(k,t)`-center protocol over the shards.
pub fn run_distributed_center(
    shards: &[PointSet],
    cfg: CenterConfig,
    options: RunOptions,
) -> ProtocolOutput<DistributedSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    let options = options.encoding(cfg.encoding);
    let dim = shards[0].dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .enumerate()
        .map(|(i, ps)| Box::new(CenterSite::new(ps, i, cfg)) as Box<dyn Site + '_>)
        .collect();
    let coordinator = CenterCoordinator {
        cfg,
        dim,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_on_full_data;
    use dpc_metric::Objective;

    fn shards() -> Vec<PointSet> {
        let mut a = Vec::new();
        for i in 0..25 {
            a.push(vec![(i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2]);
        }
        let mut b = Vec::new();
        for i in 0..25 {
            b.push(vec![300.0 + (i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2]);
        }
        // outliers split across sites
        a.push(vec![-4e3, 0.0]);
        b.push(vec![8e3, 8e3]);
        b.push(vec![0.0, -6e3]);
        vec![PointSet::from_rows(&a), PointSet::from_rows(&b)]
    }

    #[test]
    fn center_recovers_clusters() {
        let shards = shards();
        let out = run_distributed_center(
            &shards,
            CenterConfig::new(2, 3),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 3, Objective::Center);
        // Optimal radius ~ 0.57 (grid diagonal); allow the distributed
        // constant factor.
        assert!(cost <= 6.0, "true center cost {cost}");
        assert_eq!(out.stats.num_rounds(), 2);
    }

    #[test]
    fn exactly_t_outliers_at_coordinator() {
        let shards = shards();
        let out = run_distributed_center(
            &shards,
            CenterConfig::new(2, 3),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert!(out.output.excluded_weight <= 3.0 + 1e-9);
    }

    #[test]
    fn communication_is_sublinear_in_n() {
        // Doubling points per site must not change round-1/2 bytes
        // (profiles are O(log t), summaries O(k + t_i)).
        let mk = |per: usize| {
            let rows: Vec<Vec<f64>> = (0..per)
                .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
                .collect();
            vec![PointSet::from_rows(&rows), PointSet::from_rows(&rows)]
        };
        let small = mk(100);
        let big = mk(200);
        let cfg = CenterConfig::new(3, 5);
        let so = run_distributed_center(
            &small,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let bo = run_distributed_center(
            &big,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        // Weights differ (varint size may wiggle by a byte or two) but the
        // totals must be essentially identical, not 2x.
        let s = so.stats.upstream_bytes() as f64;
        let b = bo.stats.upstream_bytes() as f64;
        assert!(b <= 1.1 * s, "upstream bytes grew with n: {s} -> {b}");
    }

    #[test]
    fn single_site() {
        let shards = vec![shards().remove(0)];
        let out = run_distributed_center(
            &shards,
            CenterConfig::new(1, 1),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 1, Objective::Center);
        assert!(cost <= 4.0, "cost {cost}");
    }

    #[test]
    fn empty_and_tiny_sites() {
        let mut s = shards();
        s.push(PointSet::new(2));
        s.push(PointSet::from_rows(&[vec![0.1, 0.1]]));
        let out = run_distributed_center(
            &s,
            CenterConfig::new(2, 3),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (cost, _) = evaluate_on_full_data(&s, &out.output.centers, 3, Objective::Center);
        assert!(cost <= 6.0, "cost {cost}");
    }
}
