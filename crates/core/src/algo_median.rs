//! **Algorithm 1**: distributed `(k, (1+ε)t)`-median / means clustering
//! (Theorem 3.6), plus the `ρ = 1+δ` counts-only variant (Theorem 3.8).
//!
//! The 2-round protocol (plus the configuration kick, which the paper folds
//! into round 1):
//!
//! 1. each site computes local bicriteria solutions `sol(A_i, 2k, q)` for
//!    every `q` in the geometric grid `I`, takes the lower convex hull of
//!    the cost profile, and ships the `O(log t)` hull vertices;
//! 2. the coordinator water-fills the outlier budget across sites
//!    ([`crate::allocation`]) and returns the rank-`ρt` threshold marginal
//!    `ℓ(i₀, q₀)` to every site;
//! 3. each site derives its own `t_i` from the threshold (a hull vertex for
//!    all `i ≠ i₀`; the exceptional site snaps up to the next vertex — or,
//!    in the δ-variant, merges the two bracketing vertex solutions into a
//!    `4k`-center solution, Lemma 3.7) and ships the `2k` weighted centers
//!    plus its `t_i` unassigned points (counts only in the δ-variant);
//! 4. the coordinator solves the induced weighted `(k, (1+ε)t)` instance
//!    with the Theorem 3.1 solver.
//!
//! Communication: `O((sk + t)·B)` bytes (`O(s/δ + sk·B)` for the
//! δ-variant) — measured, not just bounded, by the runner.

use crate::allocation::{allocate_outliers, site_budget_from_threshold};
use crate::hull::{geometric_grid, ConvexProfile};
use crate::merge::merge_solutions_with;
use crate::wire::{DistributedSolution, PreclusterMsg, ThresholdMsg};
use bytes::Bytes;
use dpc_cluster::{
    median_bicriteria, median_bicriteria_relaxed_centers, BicriteriaParams, LocalSearchParams,
    Solution,
};
use dpc_codec::Encoding;
use dpc_coordinator::{
    run_protocol, Coordinator, CoordinatorStep, ProtocolOutput, RunOptions, Site,
};
use dpc_metric::{
    EuclideanMetric, Objective, PointSet, SquaredMetric, ThreadBudget, WeightedSet, WireWriter,
};

/// Which flavour of Algorithm 1 to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaVariant {
    /// Standard Algorithm 1 (`ρ = 2` recommended): sites ship their `t_i`
    /// unassigned points; the output excludes `(1+ε)t` points
    /// (Theorem 3.6).
    ShipOutliers,
    /// Theorem 3.8 (`ρ = 1+δ` recommended): sites ship only the *count*
    /// `t_i`; the exceptional site ships a merged `4k`-center solution; the
    /// output excludes up to `(2+ε+δ)t` points but communication drops to
    /// `O(s/δ + sk·B)`.
    CountsOnly,
}

/// Configuration for the distributed median/means protocol.
#[derive(Clone, Copy, Debug)]
pub struct MedianConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Outlier budget `t`.
    pub t: usize,
    /// Grid/allocation ratio `ρ` (`2.0` for Theorem 3.6, `1+δ` for 3.8).
    pub rho: f64,
    /// Coordinator-side outlier relaxation `ε` (output excludes `(1+ε)t`).
    pub eps: f64,
    /// `false` = median (distances), `true` = means (squared distances).
    pub means: bool,
    /// Ship outliers or counts only.
    pub variant: DeltaVariant,
    /// λ-bisection iterations inside the Theorem 3.1 substitute.
    pub lambda_iters: usize,
    /// Inner local-search tuning.
    pub ls: LocalSearchParams,
    /// Use the second form of Theorem 3.1 at the coordinator: open up to
    /// `(1+ε)k` centers but exclude only exactly `t` weight (Table 2's
    /// `(1+ε)k` rows).
    pub relax_centers: bool,
    /// Thread budget for the bulk distance kernels inside the site and
    /// coordinator solvers. Wall-clock only — transcripts, selected
    /// centers, and costs are identical at any budget.
    pub threads: ThreadBudget,
    /// Wire encoding every protocol message is framed with.
    /// [`Encoding::Raw`] (the default) keeps the exact legacy byte
    /// layout; lossy encodings narrow shipped coordinates within the
    /// codec's declared per-coordinate error envelope.
    pub encoding: Encoding,
}

impl MedianConfig {
    /// Sensible defaults for `(k, t)`-median with `ρ = 2`, `ε = 1`.
    pub fn new(k: usize, t: usize) -> Self {
        Self {
            k,
            t,
            rho: 2.0,
            eps: 1.0,
            means: false,
            variant: DeltaVariant::ShipOutliers,
            lambda_iters: 12,
            ls: LocalSearchParams::default(),
            relax_centers: false,
            threads: ThreadBudget::serial(),
            encoding: Encoding::Raw,
        }
    }

    /// Frames every protocol message with the given wire encoding.
    pub fn encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Caps the bulk-kernel thread budget (per site / coordinator solve).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = ThreadBudget::new(n);
        self
    }

    /// Switches the coordinator to the `(1+ε)k` center-relaxed output
    /// (exactly `t` excluded).
    pub fn relax_centers(mut self) -> Self {
        self.relax_centers = true;
        self
    }

    /// Switches to the means objective.
    pub fn means(mut self) -> Self {
        self.means = true;
        self
    }

    /// Switches to the Theorem 3.8 counts-only variant with ratio `1+δ`.
    pub fn counts_only(mut self, delta: f64) -> Self {
        self.variant = DeltaVariant::CountsOnly;
        self.rho = 1.0 + delta;
        self
    }

    fn site_solver_params(&self) -> BicriteriaParams {
        // Sites solve at *exact* budgets (the grid point q), so no
        // relaxation inside; relaxation happens at the coordinator.
        let mut ls = self.ls;
        ls.threads = self.threads;
        BicriteriaParams {
            eps: 0.0,
            lambda_iters: self.lambda_iters,
            ls,
        }
    }

    fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_varint(self.k as u64);
        w.put_varint(self.t as u64);
        w.put_f64(self.rho);
        w.put_f64(self.eps);
        w.put_varint(u64::from(self.means));
        w.put_varint(u64::from(self.variant == DeltaVariant::CountsOnly));
        // The kick is framed like every other message so the driver can
        // account raw vs compressed bytes uniformly (sites are handed
        // their config at construction and never decode it).
        dpc_codec::frame(self.encoding, w, &[])
    }
}

/// Solves the local bicriteria problem on a shard (dispatching the metric
/// by objective).
fn local_solve(
    data: &PointSet,
    means: bool,
    k: usize,
    budget: f64,
    params: BicriteriaParams,
) -> Solution {
    let w = WeightedSet::unit(data.len());
    if means {
        let m = SquaredMetric::new(EuclideanMetric::new(data));
        median_bicriteria(&m, &w, k, budget, Objective::Median, params)
    } else {
        let m = EuclideanMetric::new(data);
        median_bicriteria(&m, &w, k, budget, Objective::Median, params)
    }
}

/// Re-evaluates `centers` on a shard at an exact integral budget, returning
/// the full assignment record.
fn local_evaluate(
    data: &PointSet,
    means: bool,
    centers: Vec<usize>,
    budget: f64,
    threads: ThreadBudget,
) -> Solution {
    let w = WeightedSet::unit(data.len());
    if means {
        let m = SquaredMetric::new(EuclideanMetric::new(data));
        Solution::evaluate_with(&m, &w, centers, budget, Objective::Median, threads)
    } else {
        let m = EuclideanMetric::new(data);
        Solution::evaluate_with(&m, &w, centers, budget, Objective::Median, threads)
    }
}

/// Builds the site→coordinator preclustering summary from a local solution.
pub(crate) fn precluster_msg(
    data: &PointSet,
    sol: &Solution,
    ship_outliers: bool,
    t_i: usize,
) -> PreclusterMsg {
    let excluded: Vec<usize> = sol.outlier_positions();
    let mut is_out = vec![false; data.len()];
    for &e in &excluded {
        is_out[e] = true;
    }
    let mut weights = vec![0.0f64; sol.centers.len()];
    for (e, &a) in sol.assignment.iter().enumerate() {
        if !is_out[e] {
            weights[a] += 1.0;
        }
    }
    let centers = data.subset(&sol.centers);
    let outliers = if ship_outliers {
        data.subset(&excluded)
    } else {
        PointSet::new(data.dim())
    };
    PreclusterMsg {
        centers,
        weights,
        outliers,
        t_i: t_i as u64,
    }
}

/// Site-side state of Algorithm 1.
struct MedianSite<'a> {
    data: &'a PointSet,
    site_id: usize,
    cfg: MedianConfig,
    grid: Vec<usize>,
    /// One local solution per grid point (empty shard ⇒ empty).
    sols: Vec<Solution>,
    profile: Option<ConvexProfile>,
}

impl<'a> MedianSite<'a> {
    fn new(data: &'a PointSet, site_id: usize, cfg: MedianConfig) -> Self {
        Self {
            data,
            site_id,
            cfg,
            grid: Vec::new(),
            sols: Vec::new(),
            profile: None,
        }
    }

    /// Round 0: build the cost profile and ship its hull.
    fn build_profile(&mut self) -> Bytes {
        self.grid = geometric_grid(self.cfg.t, self.cfg.rho.max(1.0 + 1e-9));
        let n = self.data.len();
        let mut pts = Vec::with_capacity(self.grid.len());
        let mut ls = self.cfg.ls;
        ls.seed = ls.seed.wrapping_add(self.site_id as u64);
        for &q in &self.grid {
            let sol = if n == 0 || q >= n {
                // Degenerate grid point: the whole shard can be ignored.
                Solution {
                    centers: if n == 0 { Vec::new() } else { vec![0] },
                    cost: 0.0,
                    outliers: Vec::new(),
                    assignment: vec![0; n],
                }
            } else {
                let mut params = self.cfg.site_solver_params();
                params.ls = ls;
                local_solve(self.data, self.cfg.means, 2 * self.cfg.k, q as f64, params)
            };
            pts.push((q, sol.cost));
            self.sols.push(sol);
        }
        let profile = ConvexProfile::lower_hull(&pts);
        let mut w = WireWriter::new();
        profile.encode(&mut w);
        self.profile = Some(profile);
        // Profiles are (count, cost) pairs with no coordinate spans:
        // bit-exact under every encoding.
        dpc_codec::frame(self.cfg.encoding, w, &[])
    }

    /// Round 1: derive `t_i`, pick/merge the local solution, ship it.
    fn respond_threshold(&mut self, msg: &Bytes) -> Bytes {
        let thr = ThresholdMsg::decode_with(self.cfg.encoding, msg.clone());
        let prof = self.profile.as_ref().expect("profile built in round 0");
        let n = self.data.len();
        if n == 0 {
            return PreclusterMsg {
                centers: PointSet::new(self.data.dim()),
                weights: Vec::new(),
                outliers: PointSet::new(self.data.dim()),
                t_i: 0,
            }
            .encode_with(self.cfg.encoding);
        }
        let ship = self.cfg.variant == DeltaVariant::ShipOutliers;

        if thr.exceptional && self.cfg.variant == DeltaVariant::CountsOnly {
            // Lemma 3.7 merge of the two vertex solutions bracketing q₀.
            let ti = (thr.q0 as usize).min(self.cfg.t);
            let lo_v = prof
                .vertices()
                .filter(|&(q, _)| q <= ti)
                .map(|(q, _)| q)
                .last()
                .unwrap_or(0);
            let hi_v = prof.next_vertex_at_or_after(ti);
            let s1 = &self.sols[self.grid_index(lo_v)];
            let s2 = &self.sols[self.grid_index(hi_v)];
            let merged = self.merge_local(s1, s2, ti);
            return precluster_msg(self.data, &merged, false, ti).encode_with(self.cfg.encoding);
        }

        let ti = site_budget_from_threshold(prof, self.site_id, self.cfg.t, &thr);
        // Non-exceptional t_i is always a hull vertex (Lemma 3.4); hull
        // vertices are grid points, so the round-0 solution is reusable.
        let gi = self.grid_index(ti);
        let centers = self.sols[gi].centers.clone();
        let budget = (ti.min(n)) as f64;
        let sol = local_evaluate(self.data, self.cfg.means, centers, budget, self.cfg.threads);
        precluster_msg(self.data, &sol, ship, ti).encode_with(self.cfg.encoding)
    }

    fn grid_index(&self, q: usize) -> usize {
        self.grid
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("t_i = {q} is not a grid point (grid {:?})", self.grid))
    }

    fn merge_local(&self, s1: &Solution, s2: &Solution, ti: usize) -> Solution {
        let w = WeightedSet::unit(self.data.len());
        let budget = (ti.min(self.data.len())) as f64;
        if self.cfg.means {
            let m = SquaredMetric::new(EuclideanMetric::new(self.data));
            merge_solutions_with(&m, &w, s1, s2, budget, Objective::Median, self.cfg.threads)
        } else {
            let m = EuclideanMetric::new(self.data);
            merge_solutions_with(&m, &w, s1, s2, budget, Objective::Median, self.cfg.threads)
        }
    }
}

impl Site for MedianSite<'_> {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        match round {
            0 => self.build_profile(),
            1 => self.respond_threshold(msg),
            r => panic!("median site has no round {r}"),
        }
    }
}

/// Coordinator-side state of Algorithm 1.
struct MedianCoordinator {
    cfg: MedianConfig,
    dim: usize,
    result: Option<DistributedSolution>,
}

impl Coordinator for MedianCoordinator {
    type Output = DistributedSolution;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        match round {
            0 => CoordinatorStep::Broadcast(self.cfg.encode()),
            1 => {
                // Graceful degradation (Lemma 3.3 over the responders):
                // sites that missed round 0 simply contribute no profile,
                // and the water-filling allocation re-solves over the
                // ones that answered. Filtering preserves site order, so
                // the stable (ℓ, i, q) tie-break over responder indices
                // is order-isomorphic to the full sort — the broadcast
                // threshold just has to name the exceptional site by its
                // *original* id, which is what the sites compare against.
                let s = replies.len();
                let responders: Vec<usize> = replies
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.as_ref().map(|_| i))
                    .collect();
                let profiles: Vec<ConvexProfile> = replies
                    .iter()
                    .flatten()
                    .map(|b| {
                        let payload = dpc_codec::unframe(self.cfg.encoding, b.clone(), &[]);
                        let mut r = dpc_metric::WireReader::new(payload);
                        ConvexProfile::decode(&mut r)
                    })
                    .collect();
                let enc = self.cfg.encoding;
                let msg_for = move |threshold: f64, i0: u64, q0: u64| {
                    move |i: usize| {
                        ThresholdMsg {
                            threshold,
                            i0,
                            q0,
                            exceptional: i as u64 == i0,
                        }
                        .encode_with(enc)
                    }
                };
                let msgs = if profiles.is_empty() || self.cfg.t == 0 {
                    // No budget to split (or no sites left to split it
                    // over): an infinite threshold that no marginal beats
                    // makes every site keep t_i = 0.
                    (0..s).map(msg_for(f64::INFINITY, u64::MAX, 0)).collect()
                } else {
                    let alloc = allocate_outliers(&profiles, self.cfg.t, self.cfg.rho);
                    let i0 = responders[alloc.i0];
                    (0..s)
                        .map(msg_for(alloc.threshold, i0 as u64, alloc.q0 as u64))
                        .collect()
                };
                CoordinatorStep::Messages(msgs)
            }
            2 => {
                self.result = Some(self.solve_final(replies));
                CoordinatorStep::Finish
            }
            r => panic!("median coordinator has no round {r}"),
        }
    }

    fn finish(self) -> DistributedSolution {
        self.result.expect("protocol finished")
    }
}

impl MedianCoordinator {
    /// Round 2: merge the summaries into one weighted instance and run the
    /// Theorem 3.1 solver with the `(1+ε)t` budget. Sites that dropped
    /// out contribute nothing — their points are simply absent from the
    /// merged instance.
    fn solve_final(&mut self, replies: Vec<Option<Bytes>>) -> DistributedSolution {
        let enc = self.cfg.encoding;
        let msgs: Vec<PreclusterMsg> = replies
            .into_iter()
            .flatten()
            .map(|b| PreclusterMsg::decode_with(enc, b))
            .collect();
        let dim = msgs
            .iter()
            .find(|m| !m.centers.is_empty() || !m.outliers.is_empty())
            .map(|m| m.centers.dim())
            .unwrap_or(self.dim);
        let mut merged = PointSet::new(dim);
        let mut weighted = WeightedSet::new();
        let mut shipped: u64 = 0;
        for m in &msgs {
            shipped += m.t_i;
            let off = merged.extend_from(&m.centers);
            for (j, &w) in m.weights.iter().enumerate() {
                weighted.push(off + j, w);
            }
            let off = merged.extend_from(&m.outliers);
            for j in 0..m.outliers.len() {
                weighted.push(off + j, 1.0);
            }
        }
        if weighted.is_empty() {
            return DistributedSolution {
                centers: PointSet::new(dim),
                coordinator_cost: 0.0,
                excluded_weight: 0.0,
                shipped_outliers: 0,
            };
        }
        // Budget at the coordinator: t (ε-relaxed inside the solver). In
        // the counts-only variant the t_i locally ignored points were never
        // shipped, hence the (2+ε+δ)t total of Theorem 3.8.
        let mut ls = self.cfg.ls;
        ls.threads = self.cfg.threads;
        let params = BicriteriaParams {
            eps: self.cfg.eps,
            lambda_iters: self.cfg.lambda_iters,
            ls,
        };
        let solve = |relax: bool| {
            if self.cfg.means {
                let m = SquaredMetric::new(EuclideanMetric::new(&merged));
                if relax {
                    median_bicriteria_relaxed_centers(
                        &m,
                        &weighted,
                        self.cfg.k,
                        self.cfg.t as f64,
                        Objective::Median,
                        params,
                    )
                } else {
                    median_bicriteria(
                        &m,
                        &weighted,
                        self.cfg.k,
                        self.cfg.t as f64,
                        Objective::Median,
                        params,
                    )
                }
            } else {
                let m = EuclideanMetric::new(&merged);
                if relax {
                    median_bicriteria_relaxed_centers(
                        &m,
                        &weighted,
                        self.cfg.k,
                        self.cfg.t as f64,
                        Objective::Median,
                        params,
                    )
                } else {
                    median_bicriteria(
                        &m,
                        &weighted,
                        self.cfg.k,
                        self.cfg.t as f64,
                        Objective::Median,
                        params,
                    )
                }
            }
        };
        let sol = solve(self.cfg.relax_centers);
        DistributedSolution {
            centers: merged.subset(&sol.centers),
            coordinator_cost: sol.cost,
            excluded_weight: sol.outlier_weight(),
            shipped_outliers: shipped,
        }
    }
}

/// Runs the full distributed `(k,(1+ε)t)`-median/means protocol over the
/// given shards.
///
/// Returns the coordinator's solution plus the complete communication /
/// compute accounting.
pub fn run_distributed_median(
    shards: &[PointSet],
    cfg: MedianConfig,
    options: RunOptions,
) -> ProtocolOutput<DistributedSolution> {
    assert!(!shards.is_empty(), "need at least one site");
    // The driver needs the encoding to account raw vs compressed bytes.
    let options = options.encoding(cfg.encoding);
    let dim = shards[0].dim();
    let mut sites: Vec<Box<dyn Site + '_>> = shards
        .iter()
        .enumerate()
        .map(|(i, ps)| Box::new(MedianSite::new(ps, i, cfg)) as Box<dyn Site + '_>)
        .collect();
    let coordinator = MedianCoordinator {
        cfg,
        dim,
        result: None,
    };
    run_protocol(&mut sites, coordinator, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_on_full_data;

    /// Two sites, each with a clump; outliers planted on site 1.
    fn shards_with_outliers() -> Vec<PointSet> {
        let mut a = Vec::new();
        for i in 0..20 {
            a.push(vec![(i % 5) as f64 * 0.1, 0.0]);
        }
        let mut b = Vec::new();
        for i in 0..20 {
            b.push(vec![200.0 + (i % 5) as f64 * 0.1, 0.0]);
        }
        b.push(vec![5e4, 0.0]);
        b.push(vec![-7e4, 0.0]);
        b.push(vec![9e4, 9e4]);
        vec![PointSet::from_rows(&a), PointSet::from_rows(&b)]
    }

    #[test]
    fn recovers_clumps_and_outliers() {
        let shards = shards_with_outliers();
        let cfg = MedianConfig::new(2, 3);
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let sol = out.output;
        // Evaluate on the full data with the (1+eps)t budget.
        let (cost, _) = evaluate_on_full_data(&shards, &sol.centers, 6, Objective::Median);
        assert!(cost < 50.0, "true cost {cost}");
        assert_eq!(out.stats.num_rounds(), 2); // the paper's 2 rounds
        assert!(sol.shipped_outliers <= 3 * 3); // Σ t_i ≤ ρt + t = 3t
    }

    #[test]
    fn means_variant_runs() {
        let shards = shards_with_outliers();
        let cfg = MedianConfig::new(2, 3).means();
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 6, Objective::Means);
        assert!(cost < 100.0, "true means cost {cost}");
    }

    #[test]
    fn counts_only_ships_no_outliers() {
        let shards = shards_with_outliers();
        let cfg = MedianConfig::new(2, 3).counts_only(0.5);
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        // Communication in the final round must carry no outlier points:
        // compare against the ship variant.
        let ship = run_distributed_median(
            &shards,
            MedianConfig::new(2, 3),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let last = out.stats.rounds.last().unwrap();
        let last_ship = ship.stats.rounds.last().unwrap();
        assert!(
            last.sites_to_coordinator.iter().sum::<usize>()
                < last_ship.sites_to_coordinator.iter().sum::<usize>(),
            "counts-only must ship fewer bytes"
        );
        // Quality still holds with the (2+ε+δ)t budget.
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 11, Objective::Median);
        assert!(cost < 100.0, "true cost {cost}");
    }

    #[test]
    fn t_zero_no_outlier_machinery() {
        let shards = shards_with_outliers();
        let cfg = MedianConfig::new(3, 0); // 3 centers can cover clumps + 1 outlier... not needed; just runs
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(out.output.shipped_outliers, 0);
    }

    #[test]
    fn single_site_degenerates_gracefully() {
        let shards = vec![shards_with_outliers().remove(1)];
        let cfg = MedianConfig::new(1, 3);
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 6, Objective::Median);
        assert!(cost < 50.0, "true cost {cost}");
    }

    #[test]
    fn empty_site_tolerated() {
        let mut shards = shards_with_outliers();
        shards.push(PointSet::new(2));
        let cfg = MedianConfig::new(2, 3);
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 6, Objective::Median);
        assert!(cost < 50.0, "true cost {cost}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let shards = shards_with_outliers();
        let cfg = MedianConfig::new(2, 3);
        let a = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let b = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(a.output.centers, b.output.centers);
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
    }

    #[test]
    fn encoded_protocols_run_and_stay_close() {
        let shards = shards_with_outliers();
        let opts = || RunOptions {
            parallel: false,
            ..Default::default()
        };
        let raw = run_distributed_median(&shards, MedianConfig::new(2, 3), opts());
        let (raw_cost, _) =
            evaluate_on_full_data(&shards, &raw.output.centers, 6, Objective::Median);
        for enc in [Encoding::F32, Encoding::F16, Encoding::Delta, Encoding::Rlz] {
            let cfg = MedianConfig::new(2, 3).encoding(enc);
            let out = run_distributed_median(&shards, cfg, opts());
            // Message *sizes* are value-independent, so the pre-codec byte
            // totals must match the uncompressed run exactly.
            assert_eq!(
                out.stats.raw_bytes(),
                raw.stats.total_bytes(),
                "{enc}: raw accounting"
            );
            if enc.is_lossless() {
                assert_eq!(out.output.centers, raw.output.centers, "{enc}: lossless");
            }
            let (cost, _) =
                evaluate_on_full_data(&shards, &out.output.centers, 6, Objective::Median);
            // Lossy narrowing perturbs shipped coordinates within the
            // declared envelope; the objective moves by at most a hair on
            // this well-separated instance.
            assert!(
                (cost - raw_cost).abs() <= 0.05 * raw_cost.max(1.0),
                "{enc}: cost {cost} vs raw {raw_cost}"
            );
        }
    }

    #[test]
    fn profile_messages_are_logarithmic() {
        // Hull messages must be O(log t) vertices, not O(t).
        let shards = shards_with_outliers();
        let cfg = MedianConfig::new(2, 16);
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let r0 = &out.stats.rounds[0];
        for &bytes in &r0.sites_to_coordinator {
            // grid of t=16, rho=2 has ≤ 7 points; each vertex ≤ ~11 bytes.
            assert!(bytes < 120, "profile message too large: {bytes}B");
        }
    }
}

#[cfg(test)]
mod relax_centers_tests {
    use super::*;
    use crate::evaluate::evaluate_on_full_data;

    #[test]
    fn relaxed_centers_exact_t_exclusions() {
        let mut a = Vec::new();
        for c in [0.0f64, 60.0, 140.0] {
            for i in 0..10 {
                a.push(vec![c + 0.1 * i as f64, 0.0]);
            }
        }
        a.push(vec![7e4, 0.0]);
        a.push(vec![-9e4, 1e4]);
        let shards = vec![PointSet::from_rows(&a[..16]), PointSet::from_rows(&a[16..])];
        let cfg = MedianConfig {
            eps: 0.5,
            ..MedianConfig::new(2, 2)
        }
        .relax_centers();
        let out = run_distributed_median(
            &shards,
            cfg,
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        // (1+0.5)*2 = 3 centers may open; coordinator excludes exactly t=2.
        assert!(out.output.centers.len() <= 3);
        assert!(out.output.excluded_weight <= 2.0 + 1e-9);
        let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 2, Objective::Median);
        assert!(cost < 50.0, "cost {cost}");
    }
}
