//! Distributed partial clustering — the paper's primary contribution.
//!
//! This crate implements the SPAA 2017 algorithms end-to-end on top of the
//! coordinator-model simulator:
//!
//! * [`hull`] — lower convex hulls of per-site cost profiles
//!   `{(q, C_sol(A_i, 2k, q))}_{q ∈ I}` (Algorithm 1, line 4), including the
//!   geometric grid `I = {⌊ρ^r⌋} ∪ {0, t}`;
//! * [`allocation`] — the water-filling outlier allocation: the coordinator
//!   stably sorts all marginals `ℓ(i,q) = f_i(q−1) − f_i(q)` in decreasing
//!   lexicographic-tie-broken order and thresholds at rank `ρt`
//!   (Algorithm 1, lines 7–14; optimality is Lemma 3.3);
//! * [`algo_median`] — **Algorithm 1**: distributed `(k,(1+ε)t)`-median and
//!   means in 2 rounds with `O˜((sk+t)B)` communication (Theorem 3.6), plus
//!   the `ρ = 1+δ` counts-only variant of **Theorem 3.8**;
//! * [`merge`] — the Lemma 3.7 pairing construction combining two hull-
//!   vertex solutions into a `4k`-center solution at the exceptional site;
//! * [`algo_center`] — **Algorithm 2**: distributed `(k,t)`-center where
//!   Gonzalez insertion radii serve simultaneously as preclustering and as
//!   globally comparable marginals (Theorem 4.3);
//! * [`one_round`] — the 1-round `O˜((sk+st)B)` variants of Table 2
//!   (`t_i = t` at every site); for the center objective this is exactly the
//!   Malkomes et al. \[19\] baseline the paper improves on;
//! * [`subquadratic`] — **Theorem 3.10**: the first subquadratic
//!   centralized `(k,t)`-median, obtained by simulating the distributed
//!   algorithm sequentially and recursing;
//! * [`wire`] — message formats shared by the protocols;
//! * [`evaluate`] — re-evaluation of distributed solutions against the full
//!   original data (for experiments; not part of the protocols).

pub mod algo_center;
pub mod algo_median;
pub mod allocation;
pub mod evaluate;
pub mod hull;
pub mod merge;
pub mod one_round;
pub mod subquadratic;
pub mod wire;

pub use algo_center::{run_distributed_center, CenterConfig};
pub use algo_median::{run_distributed_median, DeltaVariant, MedianConfig};
pub use allocation::{allocate_outliers, site_budget_from_threshold, Allocation};
pub use evaluate::{
    evaluate_on_full_data, evaluate_on_full_data_recorded, evaluate_on_full_data_with, merge_shards,
};
pub use hull::{geometric_grid, ConvexProfile};
pub use one_round::{run_one_round_center, run_one_round_median};
pub use subquadratic::{subquadratic_median, SubquadraticParams};
pub use wire::DistributedSolution;
