//! **Theorem 3.10**: subquadratic centralized `(k,t)`-median/means by
//! sequential self-simulation of the distributed algorithm (§3.1).
//!
//! The quadratic-time Theorem 3.1 solver is turned into an
//! `O˜(n^{(2+2α)/(2+α)} k²)`-time one (Lemma 3.9) by splitting the input
//! into `s` arbitrary pieces, simulating the `s` sites sequentially (each
//! runs the solver on `n/s` points at the grid budgets), water-filling the
//! outlier budget exactly as Algorithm 1 does, and solving the merged
//! `O(sk + t)`-point weighted instance once. Balancing piece work against
//! coordinator work gives `s = n^{(1+α₀)/(2+α₀)}` — for the quadratic base
//! solver (`α₀ = 1`) that is `s = n^{2/3}`, pieces of size `n^{1/3}`, and
//! total time `O˜(t² + n^{4/3} k²)`. Recursing (`levels ≥ 2`) pushes the
//! exponent towards 1 at the cost of a `(c₀γ)^j` approximation factor.

use crate::allocation::allocate_outliers;
use crate::hull::{geometric_grid, ConvexProfile};
use dpc_cluster::{median_bicriteria, BicriteriaParams, LocalSearchParams, Solution};
use dpc_metric::{
    CenterBlock, EuclideanMetric, Objective, PointSet, SquaredMetric, ThreadBudget, WeightedSet,
};

/// Tuning for [`subquadratic_median`].
#[derive(Clone, Copy, Debug)]
pub struct SubquadraticParams {
    /// Recursion depth `j` (`1` = one application of Lemma 3.9).
    pub levels: usize,
    /// Below this size the quadratic base solver runs directly.
    pub base_threshold: usize,
    /// Outlier relaxation `ε` (output excludes up to `(1+ε)·2^j·t`-ish; see
    /// Theorem 3.10's `2t`).
    pub eps: f64,
    /// Grid ratio `ρ` for per-piece budgets.
    pub rho: f64,
    /// `false` = median, `true` = means.
    pub means: bool,
    /// λ-bisection iterations in the base solver.
    pub lambda_iters: usize,
    /// Local-search tuning of the base solver.
    pub ls: LocalSearchParams,
    /// Thread budget for the bulk kernels (piece assignment, evaluation,
    /// base-solver distance passes). Wall-clock only.
    pub threads: ThreadBudget,
}

impl Default for SubquadraticParams {
    fn default() -> Self {
        Self {
            levels: 1,
            base_threshold: 256,
            eps: 1.0,
            rho: 2.0,
            means: false,
            lambda_iters: 10,
            ls: LocalSearchParams::default(),
            threads: ThreadBudget::serial(),
        }
    }
}

/// Output of the centralized subquadratic algorithm.
#[derive(Clone, Debug)]
pub struct CentralizedSolution {
    /// Chosen centers as coordinates.
    pub centers: PointSet,
    /// Objective value on the input, excluding the budget's worst points.
    pub cost: f64,
    /// Points excluded in the final evaluation.
    pub excluded: usize,
}

/// Runs the Theorem 3.10 algorithm: `sol(A, k, 2t)`-style bicriteria in
/// subquadratic time.
///
/// # Panics
/// Panics on an empty input or `k == 0`.
pub fn subquadratic_median(
    points: &PointSet,
    k: usize,
    t: usize,
    params: SubquadraticParams,
) -> CentralizedSolution {
    assert!(!points.is_empty(), "input must be non-empty");
    assert!(k > 0, "need at least one center");
    let centers = solve_rec(points, k, t, params.levels, &params);
    let budget = (((1.0 + params.eps) * t as f64).floor() as usize).min(points.len());
    let objective = if params.means {
        Objective::Means
    } else {
        Objective::Median
    };
    let (cost, excluded) = eval_coords(points, &centers, budget, objective, params.threads);
    CentralizedSolution {
        centers,
        cost,
        excluded,
    }
}

/// Recursive solver returning center *coordinates* (size ≤ 2k at inner
/// levels because the site role doubles centers, ≤ k at the top).
fn solve_rec(
    points: &PointSet,
    k: usize,
    t: usize,
    level: usize,
    params: &SubquadraticParams,
) -> PointSet {
    let n = points.len();
    if level == 0 || n <= params.base_threshold.max(4 * k + 2 * t) {
        return base_solve(points, k, t, params);
    }

    // s = n^{2/3} pieces of size ~ n^{1/3} (α₀ = 1 balance).
    let s = ((n as f64).powf(2.0 / 3.0).ceil() as usize).clamp(2, n.div_ceil(2).max(2));
    let piece_len = n.div_ceil(s);
    let pieces: Vec<PointSet> = (0..s)
        .map(|i| {
            let lo = i * piece_len;
            let hi = ((i + 1) * piece_len).min(n);
            let ids: Vec<usize> = (lo..hi.max(lo)).collect();
            points.subset(&ids)
        })
        .filter(|p| !p.is_empty())
        .collect();

    // Per-piece profiles on the geometric grid, solved by the
    // *lower-level* algorithm (the sequential simulation of the sites).
    let grid = geometric_grid(t, params.rho);
    let mut piece_sols: Vec<Vec<PointSet>> = Vec::with_capacity(pieces.len());
    let mut profiles: Vec<ConvexProfile> = Vec::with_capacity(pieces.len());
    let objective = if params.means {
        Objective::Means
    } else {
        Objective::Median
    };
    for piece in &pieces {
        let mut sols = Vec::with_capacity(grid.len());
        let mut prof_pts = Vec::with_capacity(grid.len());
        for &q in &grid {
            if q >= piece.len() {
                prof_pts.push((q, 0.0));
                sols.push(piece.subset(&[0]));
                continue;
            }
            let centers = solve_rec(piece, 2 * k, q, level - 1, params);
            let (cost, _) = eval_coords(piece, &centers, q, objective, params.threads);
            prof_pts.push((q, cost));
            sols.push(centers);
        }
        profiles.push(ConvexProfile::lower_hull(&prof_pts));
        piece_sols.push(sols);
    }

    // Water-fill the budget and build the merged weighted instance.
    let alloc = allocate_outliers(&profiles, t, params.rho);
    let mut merged = PointSet::new(points.dim());
    let mut weighted = WeightedSet::new();
    for (i, piece) in pieces.iter().enumerate() {
        let ti = profiles[i].next_vertex_at_or_after(alloc.t_i[i]);
        let gi = grid.binary_search(&ti).expect("vertex is a grid point");
        let centers = &piece_sols[i][gi];
        // Assign piece points to the local centers; worst ti become shipped
        // outliers, the rest aggregate onto centers.
        let budget = ti.min(piece.len());
        let block = CenterBlock::new(centers);
        let piece_ids: Vec<usize> = (0..piece.len()).collect();
        let assigned = block.assign(piece, &piece_ids, params.threads);
        let mut per: Vec<(usize, usize, f64)> = (0..piece.len())
            .map(|p| (p, assigned.pos[p], objective.transform(assigned.dist[p])))
            .collect();
        per.sort_by(|a, b| b.2.total_cmp(&a.2));
        let (outl, kept) = per.split_at(budget);
        let mut w = vec![0.0f64; centers.len()];
        for &(_, c, _) in kept {
            w[c] += 1.0;
        }
        for (c, &wc) in w.iter().enumerate() {
            if wc > 0.0 {
                let id = merged.push(centers.point(c));
                weighted.push(id, wc);
            }
        }
        for &(p, _, _) in outl {
            let id = merged.push(piece.point(p));
            weighted.push(id, 1.0);
        }
    }

    // Coordinator step: Theorem 3.1 solver on the merged instance.
    let mut ls = params.ls;
    ls.threads = params.threads;
    let bparams = BicriteriaParams {
        eps: params.eps,
        lambda_iters: params.lambda_iters,
        ls,
    };
    let sol = if params.means {
        let m = SquaredMetric::new(EuclideanMetric::new(&merged));
        median_bicriteria(&m, &weighted, k, t as f64, Objective::Median, bparams)
    } else {
        let m = EuclideanMetric::new(&merged);
        median_bicriteria(&m, &weighted, k, t as f64, Objective::Median, bparams)
    };
    merged.subset(&sol.centers)
}

/// Direct quadratic solve, returning center coordinates.
fn base_solve(points: &PointSet, k: usize, t: usize, params: &SubquadraticParams) -> PointSet {
    let w = WeightedSet::unit(points.len());
    let mut ls = params.ls;
    ls.threads = params.threads;
    let bparams = BicriteriaParams {
        eps: 0.0,
        lambda_iters: params.lambda_iters,
        ls,
    };
    let sol: Solution = if params.means {
        let m = SquaredMetric::new(EuclideanMetric::new(points));
        median_bicriteria(&m, &w, k, t as f64, Objective::Median, bparams)
    } else {
        let m = EuclideanMetric::new(points);
        median_bicriteria(&m, &w, k, t as f64, Objective::Median, bparams)
    };
    points.subset(&sol.centers)
}

/// Evaluates coordinate centers on `points` with an integral exclusion
/// budget.
fn eval_coords(
    points: &PointSet,
    centers: &PointSet,
    budget: usize,
    objective: Objective,
    threads: ThreadBudget,
) -> (f64, usize) {
    if centers.is_empty() || points.is_empty() {
        return (0.0, 0);
    }
    let block = CenterBlock::new(centers);
    let ids: Vec<usize> = (0..points.len()).collect();
    let mut d = block.assign(points, &ids, threads).dist;
    for v in d.iter_mut() {
        *v = objective.transform(*v);
    }
    d.sort_by(|a, b| b.total_cmp(a));
    let excluded = budget.min(d.len());
    let rest = &d[excluded..];
    let cost = match objective {
        Objective::Center => rest.first().copied().unwrap_or(0.0),
        _ => rest.iter().sum(),
    };
    (cost, excluded)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clumpy instance with planted outliers, size ~n.
    fn instance(n: usize, outliers: usize) -> PointSet {
        let mut rows = Vec::with_capacity(n + outliers);
        for i in 0..n {
            let c = (i % 3) as f64 * 500.0;
            rows.push(vec![c + (i % 17) as f64 * 0.3, (i % 13) as f64 * 0.3]);
        }
        for o in 0..outliers {
            rows.push(vec![1e5 + o as f64 * 3e4, -8e4]);
        }
        PointSet::from_rows(&rows)
    }

    #[test]
    fn matches_direct_quality_on_medium_instance() {
        let ps = instance(600, 4);
        let t = 4;
        let sub = subquadratic_median(&ps, 3, t, SubquadraticParams::default());
        // Direct quadratic reference.
        let direct = base_solve(&ps, 3, t, &SubquadraticParams::default());
        let (dc, _) = eval_coords(
            &ps,
            &direct,
            2 * t,
            Objective::Median,
            ThreadBudget::serial(),
        );
        assert!(
            sub.cost <= 8.0 * dc.max(1.0) + 1e-6,
            "subquadratic {} vs direct {}",
            sub.cost,
            dc
        );
        // Planted outliers must not be paid for.
        assert!(sub.cost < 5e4, "cost {}", sub.cost);
    }

    #[test]
    fn small_input_short_circuits() {
        let ps = instance(50, 2);
        let sol = subquadratic_median(&ps, 2, 2, SubquadraticParams::default());
        assert!(sol.centers.len() <= 2);
        assert!(sol.cost.is_finite());
    }

    #[test]
    fn two_levels_recursion_runs() {
        let ps = instance(800, 3);
        let params = SubquadraticParams {
            levels: 2,
            base_threshold: 64,
            ..Default::default()
        };
        let sol = subquadratic_median(&ps, 3, 3, params);
        assert!(sol.cost < 1e5, "cost {}", sol.cost);
    }

    #[test]
    fn means_variant() {
        let ps = instance(400, 3);
        let params = SubquadraticParams {
            means: true,
            ..Default::default()
        };
        let sol = subquadratic_median(&ps, 3, 3, params);
        assert!(sol.cost < 1e7, "means cost {}", sol.cost);
    }

    #[test]
    fn t_zero() {
        let ps = instance(300, 0);
        let sol = subquadratic_median(&ps, 3, 0, SubquadraticParams::default());
        assert_eq!(sol.excluded, 0);
        assert!(sol.cost.is_finite());
    }
}
