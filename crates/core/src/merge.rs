//! Combining two preclustering solutions (Lemma 3.7).
//!
//! In the counts-only δ-variant (Theorem 3.8) the exceptional site's target
//! `t_i` generally falls *between* two hull vertices `t_{i,1} < t_i <
//! t_{i,2}`. The site then merges `sol(A_i, 2k, t_{i,1})` and
//! `sol(A_i, 2k, t_{i,2})` into a single `4k`-center solution with exactly
//! `t_i` outliers: union of the centers, attach every point to its nearest
//! center, ignore the `t_i` largest distances. Lemma 3.7 proves the cost of
//! this merge is at most the convex interpolation
//! `(1−θ)·f_i(t_{i,1}) + θ·f_i(t_{i,2})`; the constructive pairing in the
//! paper's proof is analysis-only — operationally the merge is exactly the
//! simple procedure above (Algorithm 1', line 17).

use dpc_cluster::Solution;
use dpc_metric::{Metric, Objective, ThreadBudget, WeightedSet};

/// Merges two solutions over the same local point set into a combined
/// solution with the union of centers and exactly `t_i` outliers.
pub fn merge_solutions<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    sol1: &Solution,
    sol2: &Solution,
    t_i: f64,
    objective: Objective,
) -> Solution {
    merge_solutions_with(
        metric,
        points,
        sol1,
        sol2,
        t_i,
        objective,
        ThreadBudget::serial(),
    )
}

/// [`merge_solutions`] with an explicit thread budget for the evaluation
/// pass over the merged center set.
pub fn merge_solutions_with<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    sol1: &Solution,
    sol2: &Solution,
    t_i: f64,
    objective: Objective,
    threads: ThreadBudget,
) -> Solution {
    let mut centers = sol1.centers.clone();
    for &c in &sol2.centers {
        if !centers.contains(&c) {
            centers.push(c);
        }
    }
    Solution::evaluate_with(metric, points, centers, t_i, objective, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_cluster::{median_bicriteria, BicriteriaParams};
    use dpc_metric::{EuclideanMetric, PointSet};

    fn instance() -> PointSet {
        // Three clumps plus stragglers at varying distances.
        let mut rows = Vec::new();
        for c in [0.0, 40.0, 90.0] {
            for i in 0..8 {
                rows.push(vec![c + 0.1 * i as f64]);
            }
        }
        for d in [200.0, 300.0, 450.0, 700.0] {
            rows.push(vec![d]);
        }
        PointSet::from_rows(&rows)
    }

    #[test]
    fn merge_has_union_centers_and_budget() {
        let ps = instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let p = BicriteriaParams {
            eps: 0.0,
            ..Default::default()
        };
        let s1 = median_bicriteria(&m, &w, 2, 1.0, Objective::Median, p);
        let s2 = median_bicriteria(&m, &w, 2, 4.0, Objective::Median, p);
        let merged = merge_solutions(&m, &w, &s1, &s2, 2.0, Objective::Median);
        assert!(merged.centers.len() <= s1.centers.len() + s2.centers.len());
        assert!(merged.outlier_weight() <= 2.0 + 1e-9);
    }

    #[test]
    fn lemma_3_7_interpolation_bound() {
        // Merged cost at t_i must not exceed the interpolation between the
        // two endpoint costs (with both endpoint solutions' center unions
        // available, attaching to nearest and cutting the worst t_i is at
        // least as good as the pairing construction of the proof).
        let ps = instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let p = BicriteriaParams {
            eps: 0.0,
            ..Default::default()
        };
        let (q1, q2) = (1usize, 4usize);
        let s1 = median_bicriteria(&m, &w, 3, q1 as f64, Objective::Median, p);
        let s2 = median_bicriteria(&m, &w, 3, q2 as f64, Objective::Median, p);
        // Re-evaluate endpoint costs at their exact budgets for a fair
        // interpolation.
        let f1 = Solution::evaluate(&m, &w, s1.centers.clone(), q1 as f64, Objective::Median).cost;
        let f2 = Solution::evaluate(&m, &w, s2.centers.clone(), q2 as f64, Objective::Median).cost;
        for ti in q1..=q2 {
            let theta = (ti - q1) as f64 / (q2 - q1) as f64;
            let bound = (1.0 - theta) * f1 + theta * f2;
            let merged = merge_solutions(&m, &w, &s1, &s2, ti as f64, Objective::Median);
            assert!(
                merged.cost <= bound + 1e-9,
                "t_i={ti}: merged {} > interpolation {}",
                merged.cost,
                bound
            );
        }
    }

    #[test]
    fn merge_of_identical_solutions_is_identity() {
        let ps = instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let p = BicriteriaParams {
            eps: 0.0,
            ..Default::default()
        };
        let s = median_bicriteria(&m, &w, 2, 2.0, Objective::Median, p);
        let merged = merge_solutions(&m, &w, &s, &s, 2.0, Objective::Median);
        assert_eq!(merged.centers, s.centers);
    }
}
