//! Per-site cost profiles and their lower convex hulls (Algorithm 1, lines
//! 2–5).
//!
//! Each site evaluates its local solution cost at the geometrically spaced
//! outlier counts `I = {⌊ρ^r⌋ : 1 ≤ r ≤ ⌊log_ρ t⌋} ∪ {0, t}` and takes the
//! *lower convex hull* of the `O(log t)` points `{(q, C_sol(A_i, 2k, q))}`.
//! The hull induces a convex, non-increasing piecewise-linear function
//! `f_i : {0,…,t} → R` whose marginals `ℓ(i,q) = f_i(q−1) − f_i(q)` are
//! non-increasing in `q` — exactly what the exchange argument of Lemma 3.3
//! needs. Raw cost profiles are *not* convex in general (the paper's key
//! observation), but the hull is within the grid's approximation factor of
//! them.

use dpc_metric::{WireReader, WireWriter};

/// The geometric grid `I` for outlier counts: `{⌊ρ^r⌋} ∪ {0, t}`, sorted and
/// deduplicated. `|I| = O(log_ρ t)`.
///
/// # Panics
/// Panics unless `rho > 1`.
pub fn geometric_grid(t: usize, rho: f64) -> Vec<usize> {
    assert!(rho > 1.0, "grid ratio must exceed 1");
    let mut grid = vec![0usize];
    if t > 0 {
        let mut x = 1.0f64;
        loop {
            let q = x.floor() as usize;
            if q >= t {
                break;
            }
            if q >= 1 {
                grid.push(q);
            }
            x *= rho;
        }
        grid.push(t);
    }
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// A convex, non-increasing piecewise-linear function on `{0, …, t}` given
/// by its hull vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexProfile {
    /// Vertex x-coordinates (strictly increasing; first is 0).
    qs: Vec<usize>,
    /// Vertex values (non-increasing).
    fs: Vec<f64>,
}

impl ConvexProfile {
    /// Computes the lower convex hull of a cost profile.
    ///
    /// `points` are `(q, cost)` pairs with strictly increasing `q`, the
    /// first being `q = 0`. Costs need not be monotone (local solvers are
    /// heuristics); the hull of the *running minimum* is taken so the
    /// result is non-increasing, which only tightens the function.
    ///
    /// # Panics
    /// Panics if `points` is empty, `q`s are not strictly increasing, or
    /// the first `q` is non-zero.
    pub fn lower_hull(points: &[(usize, f64)]) -> Self {
        assert!(!points.is_empty(), "profile needs at least one point");
        assert_eq!(points[0].0, 0, "profile must start at q = 0");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "q values must be strictly increasing");
        }
        // Enforce monotone non-increasing costs (running minimum): ignoring
        // more points can never cost more, so any increase is solver noise.
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        let mut run_min = f64::INFINITY;
        for &(q, c) in points {
            run_min = run_min.min(c);
            pts.push((q as f64, run_min));
        }
        // Andrew's monotone chain, lower hull only.
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for &p in &pts {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Keep b only if it is strictly below segment a–p.
                let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
                if cross <= 0.0 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        ConvexProfile {
            qs: hull.iter().map(|&(q, _)| q as usize).collect(),
            fs: hull.iter().map(|&(_, f)| f).collect(),
        }
    }

    /// Largest point of the domain (`t`).
    pub fn max_q(&self) -> usize {
        *self.qs.last().expect("non-empty hull")
    }

    /// Hull vertices `(q, f(q))`.
    pub fn vertices(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.qs.iter().copied().zip(self.fs.iter().copied())
    }

    /// True if `q` is a hull vertex.
    pub fn is_vertex(&self, q: usize) -> bool {
        self.qs.binary_search(&q).is_ok()
    }

    /// The smallest hull vertex `≥ q` (saturates at the last vertex).
    pub fn next_vertex_at_or_after(&self, q: usize) -> usize {
        match self.qs.binary_search(&q) {
            Ok(i) => self.qs[i],
            Err(i) => self.qs[i.min(self.qs.len() - 1)],
        }
    }

    /// Evaluates `f(q)` by linear interpolation between hull vertices;
    /// constant beyond the last vertex.
    pub fn eval(&self, q: f64) -> f64 {
        let q = q.max(0.0);
        if q >= *self.qs.last().expect("non-empty") as f64 {
            return *self.fs.last().expect("non-empty");
        }
        // Find the segment [qs[i], qs[i+1]] containing q.
        let mut lo = 0usize;
        let mut hi = self.qs.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if (self.qs[mid] as f64) <= q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (x0, x1) = (self.qs[lo] as f64, self.qs[hi] as f64);
        let (y0, y1) = (self.fs[lo], self.fs[hi]);
        y0 + (y1 - y0) * (q - x0) / (x1 - x0)
    }

    /// The marginal `ℓ(q) = f(q−1) − f(q)` for `q ≥ 1` (0 beyond the
    /// domain). Non-negative and non-increasing in `q` by convexity.
    pub fn marginal(&self, q: usize) -> f64 {
        if q == 0 {
            return f64::INFINITY;
        }
        (self.eval((q - 1) as f64) - self.eval(q as f64)).max(0.0)
    }

    /// Serializes the hull (vertex count, then `(varint q, f64 f)` pairs).
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.qs.len() as u64);
        for (q, f) in self.vertices() {
            w.put_varint(q as u64);
            w.put_f64(f);
        }
    }

    /// Deserializes a hull written by [`Self::encode`].
    pub fn decode(r: &mut WireReader) -> Self {
        let n = r.get_varint() as usize;
        let mut qs = Vec::with_capacity(n);
        let mut fs = Vec::with_capacity(n);
        for _ in 0..n {
            qs.push(r.get_varint() as usize);
            fs.push(r.get_f64());
        }
        ConvexProfile { qs, fs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_contains_endpoints_and_powers() {
        let g = geometric_grid(100, 2.0);
        assert_eq!(g, vec![0, 1, 2, 4, 8, 16, 32, 64, 100]);
        assert_eq!(geometric_grid(0, 2.0), vec![0]);
        assert_eq!(geometric_grid(1, 2.0), vec![0, 1]);
        assert_eq!(geometric_grid(3, 2.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn grid_size_logarithmic() {
        let g = geometric_grid(1_000_000, 2.0);
        assert!(g.len() <= 23, "grid size {}", g.len());
        let fine = geometric_grid(1000, 1.25);
        assert!(fine.len() > geometric_grid(1000, 4.0).len());
    }

    #[test]
    fn hull_of_convex_profile_is_identity_on_vertices() {
        // f(q) = (10-q)^2 is convex decreasing on 0..=10.
        let pts: Vec<(usize, f64)> = (0..=10).map(|q| (q, ((10 - q) as f64).powi(2))).collect();
        let h = ConvexProfile::lower_hull(&pts);
        for &(q, c) in &pts {
            assert!((h.eval(q as f64) - c).abs() < 1e-9, "q={q}");
        }
    }

    #[test]
    fn hull_below_nonconvex_profile() {
        // A profile with a bump: hull must be below it everywhere and convex.
        let pts = vec![(0, 10.0), (1, 9.5), (2, 4.0), (4, 3.0), (8, 0.0)];
        let h = ConvexProfile::lower_hull(&pts);
        for &(q, c) in &pts {
            assert!(h.eval(q as f64) <= c + 1e-12);
        }
        // Convexity: marginals non-increasing.
        let mut prev = f64::INFINITY;
        for q in 1..=8 {
            let m = h.marginal(q);
            assert!(m <= prev + 1e-12, "marginal increased at q={q}");
            prev = m;
        }
    }

    #[test]
    fn running_minimum_fixes_noise() {
        // Heuristic noise: cost goes UP at q=2; hull uses the running min.
        let pts = vec![(0, 10.0), (1, 5.0), (2, 6.0), (3, 1.0)];
        let h = ConvexProfile::lower_hull(&pts);
        assert!(h.eval(2.0) <= 5.0 + 1e-12);
        let mut prev = f64::INFINITY;
        for q in 1..=3 {
            assert!(h.marginal(q) <= prev + 1e-12);
            prev = h.marginal(q);
        }
    }

    #[test]
    fn eval_beyond_domain_is_constant() {
        let h = ConvexProfile::lower_hull(&[(0, 4.0), (2, 0.0)]);
        assert_eq!(h.eval(5.0), 0.0);
        assert_eq!(h.marginal(5), 0.0);
        assert_eq!(h.max_q(), 2);
    }

    #[test]
    fn vertex_queries() {
        let h = ConvexProfile::lower_hull(&[(0, 4.0), (1, 3.0), (4, 0.0)]);
        assert!(h.is_vertex(0));
        assert!(h.is_vertex(4));
        assert_eq!(h.next_vertex_at_or_after(2), 4);
        assert_eq!(h.next_vertex_at_or_after(4), 4);
        assert_eq!(h.next_vertex_at_or_after(9), 4);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = ConvexProfile::lower_hull(&[(0, 4.0), (1, 3.5), (4, 1.0), (10, 0.25)]);
        let mut w = WireWriter::new();
        h.encode(&mut w);
        let mut r = WireReader::new(w.finish());
        let h2 = ConvexProfile::decode(&mut r);
        assert_eq!(h, h2);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn single_point_profile() {
        let h = ConvexProfile::lower_hull(&[(0, 7.0)]);
        assert_eq!(h.eval(0.0), 7.0);
        assert_eq!(h.eval(3.0), 7.0);
        assert_eq!(h.marginal(1), 0.0);
    }

    #[test]
    fn marginal_at_zero_is_infinite() {
        let h = ConvexProfile::lower_hull(&[(0, 4.0), (2, 0.0)]);
        assert_eq!(h.marginal(0), f64::INFINITY);
    }
}
