//! Ground-truth evaluation of distributed solutions.
//!
//! The coordinator only ever sees preclustered summaries; experiments and
//! tests need the *true* `(k, t')` objective of the returned centers over
//! the union of all site shards. This module recomputes it exactly (it is
//! not part of any protocol and charges no communication).

use dpc_metric::{CenterBlock, Objective, PointSet, ThreadBudget};
use dpc_obs::RecorderHandle;

/// Concatenates site shards into one point set (dimension must agree).
pub fn merge_shards(shards: &[PointSet]) -> PointSet {
    assert!(!shards.is_empty(), "need at least one shard");
    let mut all = PointSet::new(shards[0].dim());
    for s in shards {
        all.extend_from(s);
    }
    all
}

/// Evaluates `centers` against the full data, excluding the `budget` worst
/// points (whole points; the original input is unweighted).
///
/// Returns `(cost, excluded point count)`.
pub fn evaluate_on_full_data(
    shards: &[PointSet],
    centers: &PointSet,
    budget: usize,
    objective: Objective,
) -> (f64, usize) {
    evaluate_on_full_data_with(shards, centers, budget, objective, ThreadBudget::serial())
}

/// [`evaluate_on_full_data`] with an explicit thread budget for the bulk
/// nearest-center pass over the merged data (wall-clock only — the cost
/// and exclusion count are identical at any budget).
pub fn evaluate_on_full_data_with(
    shards: &[PointSet],
    centers: &PointSet,
    budget: usize,
    objective: Objective,
    threads: ThreadBudget,
) -> (f64, usize) {
    evaluate_on_full_data_recorded(
        shards,
        centers,
        budget,
        objective,
        threads,
        &RecorderHandle::noop(),
    )
}

/// [`evaluate_on_full_data_with`] flushing exact kernel counters
/// (queries, candidates scanned/pruned) of the bulk pass to `recorder`.
/// Values are identical to the unrecorded path.
pub fn evaluate_on_full_data_recorded(
    shards: &[PointSet],
    centers: &PointSet,
    budget: usize,
    objective: Objective,
    threads: ThreadBudget,
    recorder: &RecorderHandle,
) -> (f64, usize) {
    let all = merge_shards(shards);
    if all.is_empty() || centers.is_empty() {
        return (0.0, 0);
    }
    let block = CenterBlock::new(centers).with_recorder(recorder.clone());
    let ids: Vec<usize> = (0..all.len()).collect();
    let assigned = block.assign(&all, &ids, threads);
    let mut dists = assigned.dist;
    for d in dists.iter_mut() {
        *d = objective.transform(*d);
    }
    dists.sort_by(|a, b| b.total_cmp(a));
    let excluded = budget.min(dists.len());
    let rest = &dists[excluded..];
    let cost = match objective {
        Objective::Center => rest.first().copied().unwrap_or(0.0),
        _ => rest.iter().sum(),
    };
    (cost, excluded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_order() {
        let a = PointSet::from_rows(&[vec![1.0]]);
        let b = PointSet::from_rows(&[vec![2.0], vec![3.0]]);
        let m = merge_shards(&[a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.point(2), &[3.0]);
    }

    #[test]
    fn full_data_median_eval() {
        let shards = vec![
            PointSet::from_rows(&[vec![0.0], vec![1.0]]),
            PointSet::from_rows(&[vec![2.0], vec![50.0]]),
        ];
        let centers = PointSet::from_rows(&[vec![1.0]]);
        let (c0, e0) = evaluate_on_full_data(&shards, &centers, 0, Objective::Median);
        assert_eq!(c0, 1.0 + 0.0 + 1.0 + 49.0);
        assert_eq!(e0, 0);
        let (c1, e1) = evaluate_on_full_data(&shards, &centers, 1, Objective::Median);
        assert_eq!(c1, 2.0);
        assert_eq!(e1, 1);
    }

    #[test]
    fn full_data_center_eval() {
        let shards = vec![PointSet::from_rows(&[vec![0.0], vec![3.0], vec![10.0]])];
        let centers = PointSet::from_rows(&[vec![0.0]]);
        let (c, _) = evaluate_on_full_data(&shards, &centers, 1, Objective::Center);
        assert_eq!(c, 3.0);
    }

    #[test]
    fn means_eval_squares() {
        let shards = vec![PointSet::from_rows(&[vec![0.0], vec![3.0]])];
        let centers = PointSet::from_rows(&[vec![0.0]]);
        let (c, _) = evaluate_on_full_data(&shards, &centers, 0, Objective::Means);
        assert_eq!(c, 9.0);
    }

    #[test]
    fn budget_exceeding_n_zeroes_cost() {
        let shards = vec![PointSet::from_rows(&[vec![5.0]])];
        let centers = PointSet::from_rows(&[vec![0.0]]);
        let (c, e) = evaluate_on_full_data(&shards, &centers, 10, Objective::Median);
        assert_eq!(c, 0.0);
        assert_eq!(e, 1);
    }
}
