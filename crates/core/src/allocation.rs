//! Water-filling outlier allocation (Algorithm 1, lines 7–14).
//!
//! Given the convex per-site profiles `f_i`, the coordinator must split the
//! global outlier budget: find `{t_i}` minimizing `Σ_i f_i(t_i)` subject to
//! `Σ_i t_i ≤ ρt`. Because every `f_i` is convex and non-increasing, the
//! greedy rule is optimal (Lemma 3.3): take the `ρt` largest marginals
//! `ℓ(i,q) = f_i(q−1) − f_i(q)` over all sites, *stably* sorted so that ties
//! are broken by the lexicographic order `(i, q)` of Equation (4) — the
//! stability is what makes the per-site winners a prefix `1..t_i` and pins
//! down the unique exceptional site `i₀`.

use crate::hull::ConvexProfile;
use crate::wire::ThresholdMsg;

/// Result of the allocation step.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// The threshold marginal `ℓ(i₀, q₀)` (rank `⌊ρt⌋`).
    pub threshold: f64,
    /// Exceptional site index.
    pub i0: usize,
    /// Exceptional rank position `q₀`.
    pub q0: usize,
    /// Per-site outlier counts `t_i` (before the exceptional site's grid
    /// adjustment, which only the site itself can perform — line 13).
    pub t_i: Vec<usize>,
}

impl Allocation {
    /// Total allocated outliers `Σ t_i` (equals the effective rank).
    pub fn total(&self) -> usize {
        self.t_i.iter().sum()
    }
}

/// Runs the coordinator-side allocation.
///
/// Materializes all `s·t` marginals, stably sorts them in decreasing order
/// (ties by `(i, q)` ascending), thresholds at rank `⌊ρt⌋`, and counts each
/// site's prefix of winners. When `t = 0`, everything is zero.
///
/// # Panics
/// Panics if `rho < 1` or `profiles` is empty.
pub fn allocate_outliers(profiles: &[ConvexProfile], t: usize, rho: f64) -> Allocation {
    assert!(!profiles.is_empty(), "need at least one site profile");
    assert!(rho >= 1.0, "rho must be at least 1");
    let s = profiles.len();
    if t == 0 {
        return Allocation {
            threshold: f64::INFINITY,
            i0: 0,
            q0: 0,
            t_i: vec![0; s],
        };
    }

    // All marginals (ℓ, i, q) for q ∈ 1..=t.
    let mut items: Vec<(f64, usize, usize)> = Vec::with_capacity(s * t);
    for (i, p) in profiles.iter().enumerate() {
        for q in 1..=t {
            items.push((p.marginal(q), i, q));
        }
    }
    // Decreasing by ℓ; ties by (i, q) ascending — the paper's stable order.
    items.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let rank = ((rho * t as f64).floor() as usize).clamp(1, items.len());
    let (threshold, i0, q0) = items[rank - 1];

    let mut t_i = vec![0usize; s];
    for &(_, i, _) in &items[..rank] {
        t_i[i] += 1;
    }
    Allocation {
        threshold,
        i0,
        q0,
        t_i,
    }
}

/// Site-side dual of [`allocate_outliers`]: derives `t_i` from the
/// broadcast threshold (Algorithm 1, lines 12–13).
///
/// For the exceptional site `i₀`, `t_i` snaps up to the next hull vertex
/// at or after `q₀`; every other site takes the largest `q` whose marginal
/// ranks at or before the threshold element in the coordinator's stable
/// order (ties broken lexicographically by `(i, q)`, matching Equation
/// (4)). Every protocol deriving budgets from a [`ThresholdMsg`] — the
/// batch Algorithm 1 and the streaming sync alike — must use this one
/// rule, or `Σ t_i` drifts from the allocation's rank.
pub fn site_budget_from_threshold(
    profile: &ConvexProfile,
    site_id: usize,
    t: usize,
    thr: &ThresholdMsg,
) -> usize {
    if thr.exceptional {
        return profile.next_vertex_at_or_after((thr.q0 as usize).min(t));
    }
    let mut ti = 0usize;
    for q in 1..=t {
        let m = profile.marginal(q);
        let wins = m > thr.threshold
            || (m == thr.threshold && (site_id as u64, q as u64) <= (thr.i0, thr.q0));
        if wins {
            ti = q;
        } else {
            break; // marginals are non-increasing in q
        }
    }
    ti
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(points: &[(usize, f64)]) -> ConvexProfile {
        ConvexProfile::lower_hull(points)
    }

    /// DP optimum of `min Σ f_i(t_i)` s.t. `Σ t_i ≤ budget`, `0 ≤ t_i ≤ t`.
    fn dp_optimum(profiles: &[ConvexProfile], t: usize, budget: usize) -> f64 {
        let mut dp = vec![f64::INFINITY; budget + 1];
        dp[0] = 0.0;
        for p in profiles {
            let mut next = vec![f64::INFINITY; budget + 1];
            for used in 0..=budget {
                if dp[used].is_finite() {
                    for ti in 0..=t.min(budget - used) {
                        let v = dp[used] + p.eval(ti as f64);
                        if v < next[used + ti] {
                            next[used + ti] = v;
                        }
                    }
                }
            }
            dp = next;
        }
        dp.iter().copied().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn greedy_matches_dp_on_simple_profiles() {
        // Site 0 benefits hugely from early outliers; site 1 barely.
        let p0 = profile(&[(0, 100.0), (1, 10.0), (2, 5.0), (4, 1.0), (8, 0.0)]);
        let p1 = profile(&[(0, 3.0), (1, 2.5), (2, 2.0), (4, 1.5), (8, 1.0)]);
        let profiles = vec![p0, p1];
        let t = 8;
        let alloc = allocate_outliers(&profiles, t, 2.0);
        let rank = 16; // rho*t
        assert_eq!(alloc.total(), rank);
        let greedy_cost: f64 = profiles
            .iter()
            .zip(&alloc.t_i)
            .map(|(p, &ti)| p.eval(ti as f64))
            .sum();
        let opt = dp_optimum(&profiles, t, rank);
        assert!(
            greedy_cost <= opt + 1e-9,
            "greedy {greedy_cost} vs dp {opt} (t_i {:?})",
            alloc.t_i
        );
    }

    #[test]
    fn zero_budget() {
        let p = profile(&[(0, 5.0), (2, 0.0)]);
        let alloc = allocate_outliers(&[p], 0, 2.0);
        assert_eq!(alloc.t_i, vec![0]);
        assert_eq!(alloc.threshold, f64::INFINITY);
    }

    #[test]
    fn identical_profiles_split_lexicographically() {
        // With equal marginals everywhere the stable order favors low
        // (i, q): site 0 fills up first.
        let mk = || profile(&[(0, 4.0), (4, 0.0)]);
        let profiles = vec![mk(), mk()];
        let t = 4;
        let alloc = allocate_outliers(&profiles, t, 1.0);
        // rank = 4; all marginals equal 1.0 -> winners are (0,1..4).
        assert_eq!(alloc.t_i, vec![4, 0]);
        assert_eq!(alloc.i0, 0);
        assert_eq!(alloc.q0, 4);
    }

    #[test]
    fn rank_clamps_to_available_items() {
        let p = profile(&[(0, 4.0), (2, 0.0)]);
        // rho*t = 40 exceeds s*t = 2 items.
        let alloc = allocate_outliers(&[p], 2, 20.0);
        assert_eq!(alloc.total(), 2);
    }

    #[test]
    fn threshold_is_rank_rho_t() {
        let p0 = profile(&[(0, 10.0), (1, 6.0), (2, 3.0), (3, 1.0), (4, 0.0)]);
        let p1 = profile(&[(0, 2.0), (1, 1.5), (2, 1.1), (3, 0.8), (4, 0.6)]);
        let profiles = vec![p0, p1];
        let alloc = allocate_outliers(&profiles, 4, 1.5);
        // rank = 6 largest of the 8 marginals:
        // site0: 4,3,2,1 ; site1: 0.5,0.4,0.3,0.2
        // sorted: 4,3,2,1,0.5,0.4 | 0.3,0.2 -> threshold 0.4 at (1,2)
        assert!(
            (alloc.threshold - 0.4).abs() < 1e-9,
            "thr {}",
            alloc.threshold
        );
        assert_eq!((alloc.i0, alloc.q0), (1, 2));
        assert_eq!(alloc.t_i, vec![4, 2]);
    }

    #[test]
    fn exchange_optimality_random_convex() {
        // Random convex profiles via random non-increasing positive
        // marginal sequences; greedy must match DP.
        let mut seeds = 0xdeadbeefu64;
        let mut rnd = move || {
            seeds = seeds
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seeds >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..20 {
            let t = 6;
            let s = 3;
            let mut profiles = Vec::new();
            for _ in 0..s {
                let mut marg: Vec<f64> = (0..t).map(|_| rnd() * 5.0).collect();
                marg.sort_by(|a, b| b.total_cmp(a));
                let mut pts = vec![(0usize, 20.0)];
                let mut f = 20.0;
                for (q, m) in marg.iter().enumerate() {
                    f -= m;
                    pts.push((q + 1, f));
                }
                profiles.push(profile(&pts));
            }
            let alloc = allocate_outliers(&profiles, t, 2.0);
            let greedy: f64 = profiles
                .iter()
                .zip(&alloc.t_i)
                .map(|(p, &ti)| p.eval(ti as f64))
                .sum();
            let opt = dp_optimum(&profiles, t, alloc.total());
            assert!(greedy <= opt + 1e-6, "greedy {greedy} vs {opt}");
        }
    }
}
