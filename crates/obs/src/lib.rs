//! `dpc_obs` — structured tracing and metrics for the distributed
//! partial-clustering runtime.
//!
//! Every layer of the workspace emits observations through one tiny
//! interface, the [`Recorder`] trait: the protocol driver reports round,
//! site, and fault *events*; the bulk distance kernels and the streaming
//! tree report monotone *counters*. Three sinks consume what was
//! recorded, all derived from an immutable [`Trace`] snapshot:
//!
//! * a schema-versioned JSONL writer ([`Trace::to_jsonl`],
//!   [`TRACE_SCHEMA`]) that serializes only the *deterministic* subset of
//!   each event — byte counts, round/site indices, fault decisions, and
//!   simulated time as exact integer nanoseconds — so identical
//!   `(seed, fault seed, job)` runs produce **byte-identical** traces on
//!   every transport backend;
//! * an in-memory aggregator ([`Trace::metrics`] →
//!   [`MetricsReport`]) with per-phase and per-site breakdowns,
//!   log-bucketed histograms, and percentiles over rounds;
//! * a Chrome trace-event exporter ([`Trace::to_chrome`]) for
//!   `chrome://tracing` / Perfetto timeline inspection.
//!
//! # The zero-cost no-op contract
//!
//! Recording is opt-in per run. The default recorder is
//! [`NoopRecorder`]; a [`RecorderHandle`] caches the recorder's
//! `enabled()` answer at construction, so the hot-path guard
//! `handle.enabled()` is a plain field read — no virtual call, no
//! atomic, no allocation. Instrumented code follows two rules:
//!
//! 1. **events are gated**: build an [`Event`] only under an
//!    `if handle.enabled()` check, so the disabled path does not even
//!    construct the payload;
//! 2. **counters are amortized**: hot loops tally into plain local
//!    integers (or derive counts from values already in registers) and
//!    flush *once per call* through [`RecorderHandle::add`], again behind
//!    the `enabled()` guard.
//!
//! Under those rules a disabled recorder costs one predictable branch
//! per *batch* of work — unmeasurable next to the work itself, which the
//! pinned kernel benchmarks assert.
//!
//! This crate sits at the very bottom of the workspace DAG (std only, no
//! dependencies) so every other crate can record through it. It also
//! hosts the workspace's hand-rolled JSON layer ([`json`]): the vendored
//! `serde` stand-in provides no real serialization, so the artifact
//! schema and the trace schema share one parser and one set of writer
//! helpers here.

pub mod json;
pub mod metrics;
pub mod record;
pub mod trace;

pub use metrics::{LogHistogram, MetricsReport, MetricsSummary, SiteMetrics};
pub use record::{Collector, Counter, Event, FaultKind, NoopRecorder, Recorder, RecorderHandle};
pub use trace::{Trace, TRACE_SCHEMA};
