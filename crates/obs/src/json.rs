//! The workspace's hand-rolled JSON layer: a minimal parser plus the
//! shared writer helpers used by the artifact schema and the trace
//! schema.
//!
//! The vendored `serde` stand-in only provides no-op derives (the build
//! environment has no registry access), so every JSON document in this
//! workspace is written and read by hand. The reading half is a small
//! recursive-descent parser covering exactly the JSON this workspace
//! emits — objects, arrays, strings (with `\uXXXX` escapes), finite
//! numbers, booleans and `null`. The writing half is a handful of
//! formatting helpers ([`escape`], [`json_f64`], [`usize_array`],
//! [`dur_to_ns`]/[`ns_to_dur`], [`dur_to_ms`]) shared by
//! `dpc_api::Artifact` and [`crate::Trace`] so Duration and byte-vector
//! serialization is defined in exactly one place. Swap for `serde_json`
//! when a registry is available.

use std::collections::BTreeMap;
use std::time::Duration;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with a sign, fraction or exponent (parsed as `f64`).
    Num(f64),
    /// A plain unsigned-integer literal, kept exact — `f64` would
    /// silently round values above 2⁵³ (seeds, ids).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (artifact readers look
    /// fields up by name).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::UInt(v) if *v <= usize::MAX as u64 => Some(*v as usize),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= usize::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one (integer literals keep
    /// full precision; float-shaped integers are accepted below 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing non-whitespace is an error).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{hex} escape"))?,
                            );
                        }
                        other => return Err(format!("invalid escape '\\{}'", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        // Plain digit runs stay exact (u64); anything signed, fractional
        // or exponential goes through f64.
        if s.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        let v: f64 = s
            .parse()
            .map_err(|_| format!("invalid number '{s}' at byte {start}"))?;
        Ok(Json::Num(v))
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for a JSON document: shortest round-trip repr, with
/// non-finite values as `null` (JSON has no inf/NaN literals).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats a `usize` vector as a compact JSON array (`[1,2,3]`).
pub fn usize_array(vs: &[usize]) -> String {
    let parts: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
    format!("[{}]", parts.join(","))
}

/// Reads a `usize` vector back from a JSON array field.
pub fn usize_vec(v: Option<&Json>) -> Result<Vec<usize>, String> {
    v.and_then(Json::as_arr)
        .ok_or("missing integer array")?
        .iter()
        .map(|x| x.as_usize().ok_or_else(|| "bad integer entry".to_string()))
        .collect()
}

/// A `Duration` as exact integer nanoseconds, saturating at `u64::MAX`
/// (≈584 years — nothing this workspace simulates gets close).
pub fn dur_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Inverse of [`dur_to_ns`].
pub fn ns_to_dur(ns: u64) -> Duration {
    Duration::from_nanos(ns)
}

/// A `Duration` as fractional milliseconds — the unit the artifact
/// schema reports times in.
pub fn dur_to_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote\" slash\\ newline\n tab\t";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn usize_extraction() {
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn integer_literals_stay_exact_beyond_f64() {
        // 2^53 + 1 is not representable in f64; the u64 path keeps it.
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v, Json::UInt(9007199254740993));
        assert_eq!(v.as_u64(), Some(9007199254740993));
        // Float-shaped integers still read as u64 (below 2^53).
        assert_eq!(parse("4.0").unwrap().as_u64(), Some(4));
        assert_eq!(parse("-4").unwrap().as_u64(), None);
    }

    #[test]
    fn writer_helpers_round_trip() {
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(usize_array(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(usize_array(&[]), "[]");
        let parsed = parse("[4,5]").unwrap();
        assert_eq!(usize_vec(Some(&parsed)).unwrap(), vec![4, 5]);
        assert!(usize_vec(None).is_err());
        let d = Duration::new(3, 500_000_000);
        assert_eq!(dur_to_ns(d), 3_500_000_000);
        assert_eq!(ns_to_dur(dur_to_ns(d)), d);
        assert_eq!(dur_to_ms(d), 3500.0);
    }
}
