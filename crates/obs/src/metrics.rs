//! The in-memory aggregation sink: [`MetricsReport`] (full per-phase /
//! per-site breakdown with percentiles) and [`MetricsSummary`] (the
//! flat, all-integer digest embedded in artifacts).

use crate::json::Json;
use crate::record::{Counter, Event, COUNTER_COUNT};
use crate::trace::Trace;

/// Number of buckets in a [`LogHistogram`]: one per bit width of a
/// `u64`, plus a zero bucket.
const HIST_BUCKETS: usize = 65;

/// A fixed-size histogram with power-of-two buckets.
///
/// Value `v` lands in bucket `bit_width(v)` (zero in bucket 0), so the
/// 65 buckets cover the full `u64` range with no configuration and no
/// allocation. Quantiles are approximate — correct to within the 2×
/// width of a bucket — while `count`/`sum`/`min`/`max` are exact.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the `⌈q·count⌉`-th observation, clamped to the
    /// exact observed `min`/`max`. Correct to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket b is 2^b - 1 (bucket 0 holds only
                // zero).
                let edge = if bucket == 0 {
                    0
                } else if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Per-site accounting aggregated over a whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SiteMetrics {
    /// Coordinator → site payload bytes.
    pub down_bytes: u64,
    /// Site → coordinator payload bytes.
    pub up_bytes: u64,
    /// Site compute, wall-clock nanoseconds (zero in trace replays).
    pub compute_ns: u64,
    /// Simulated fault wait charged to this site, nanoseconds.
    pub wait_ns: u64,
    /// Rounds in which this site's reply arrived.
    pub deliveries: u64,
    /// Fault decisions (retries, stragglers, dropouts) that hit this
    /// site.
    pub faults: u64,
}

/// Everything a run's trace aggregates to: totals, per-phase time,
/// per-site breakdowns, the per-round network distribution, and the
/// kernel counters.
///
/// Built by [`Trace::metrics`]. The byte/round/fault half reconciles
/// exactly (`u64` equality) with the coordinator's `CommStats` roll-up
/// for the same run — the test suite asserts it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Protocol rounds completed.
    pub rounds: u64,
    /// Continuous-mode syncs completed.
    pub syncs: u64,
    /// Total coordinator → site bytes.
    pub down_bytes: u64,
    /// Total site → coordinator bytes.
    pub up_bytes: u64,
    /// Sites that missed a round entirely, summed over rounds.
    pub dropouts: u64,
    /// Failed delivery attempts, summed over rounds.
    pub retries: u64,
    /// Rounds that ran over a strict subset of sites.
    pub degraded_rounds: u64,
    /// Coordinator planning time, wall-clock nanoseconds.
    pub plan_ns: u64,
    /// Site compute, wall-clock nanoseconds summed over sites.
    pub site_compute_ns: u64,
    /// Simulated network time summed over rounds, nanoseconds.
    pub network_ns: u64,
    /// Per-site breakdowns, indexed by site.
    pub per_site: Vec<SiteMetrics>,
    /// Simulated network time of each round, in round order (exact
    /// percentile source).
    pub round_network_ns: Vec<u64>,
    /// Distribution of per-round network time.
    pub network_hist: LogHistogram,
    /// Kernel/stream/sweep counter totals, indexed by
    /// [`Counter::index`].
    pub counters: [u64; COUNTER_COUNT],
}

impl MetricsReport {
    /// Aggregates a trace.
    pub fn from_trace(trace: &Trace) -> MetricsReport {
        let mut r = MetricsReport {
            counters: trace.counters,
            ..MetricsReport::default()
        };
        let site_slot = |per_site: &mut Vec<SiteMetrics>, site: usize| {
            if per_site.len() <= site {
                per_site.resize(site + 1, SiteMetrics::default());
            }
        };
        for ev in &trace.events {
            match ev {
                Event::RunStart { sites, .. } => {
                    site_slot(&mut r.per_site, sites.saturating_sub(1));
                }
                Event::Plan { wall_ns, .. } => r.plan_ns += wall_ns,
                Event::Fault { site, .. } => {
                    site_slot(&mut r.per_site, *site);
                    r.per_site[*site].faults += 1;
                }
                Event::Site {
                    site,
                    delivered,
                    down_bytes,
                    up_bytes,
                    compute_ns,
                    wait_ns,
                    ..
                } => {
                    site_slot(&mut r.per_site, *site);
                    let s = &mut r.per_site[*site];
                    s.down_bytes += down_bytes;
                    s.up_bytes += up_bytes;
                    s.compute_ns += compute_ns;
                    s.wait_ns += wait_ns;
                    s.deliveries += u64::from(*delivered);
                    r.down_bytes += down_bytes;
                    r.up_bytes += up_bytes;
                    r.site_compute_ns += compute_ns;
                }
                Event::RoundEnd {
                    dropouts,
                    retries,
                    degraded,
                    network_ns,
                    ..
                } => {
                    r.rounds += 1;
                    r.dropouts += *dropouts as u64;
                    r.retries += *retries as u64;
                    r.degraded_rounds += u64::from(*degraded);
                    r.network_ns += network_ns;
                    r.round_network_ns.push(*network_ns);
                    r.network_hist.observe(*network_ns);
                }
                Event::SyncEnd { .. } => r.syncs += 1,
                _ => {}
            }
        }
        r
    }

    /// Total bytes on the simulated wire, both directions.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }

    /// Exact percentile (nearest-rank) of per-round network time, `p`
    /// in `[0, 1]`. Zero when no rounds ran.
    pub fn round_network_percentile(&self, p: f64) -> u64 {
        if self.round_network_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.round_network_ns.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The flat digest embedded in artifacts.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            plan_ns: self.plan_ns,
            site_compute_ns: self.site_compute_ns,
            network_ns: self.network_ns,
            total_bytes: self.total_bytes(),
            down_bytes: self.down_bytes,
            up_bytes: self.up_bytes,
            rounds: self.rounds,
            syncs: self.syncs,
            dropouts: self.dropouts,
            retries: self.retries,
            degraded_rounds: self.degraded_rounds,
            round_network_p50_ns: self.round_network_percentile(0.50),
            round_network_p90_ns: self.round_network_percentile(0.90),
            round_network_max_ns: self.round_network_percentile(1.0),
            counters: self.counters,
        }
    }

    /// Renders the report as the text tables the CLI prints under
    /// `--metrics`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |ns: u64| format!("{:.3} ms", ns as f64 / 1e6);
        out.push_str("phase timing:\n");
        out.push_str(&format!("  {:<14} {:>14}\n", "phase", "total"));
        out.push_str(&format!("  {:<14} {:>14}\n", "plan", ms(self.plan_ns)));
        out.push_str(&format!(
            "  {:<14} {:>14}\n",
            "site compute",
            ms(self.site_compute_ns)
        ));
        out.push_str(&format!(
            "  {:<14} {:>14}\n",
            "network (sim)",
            ms(self.network_ns)
        ));
        out.push_str(&format!(
            "rounds: {} ({} degraded) · dropouts: {} · retries: {}",
            self.rounds, self.degraded_rounds, self.dropouts, self.retries
        ));
        if self.syncs > 0 {
            out.push_str(&format!(" · syncs: {}", self.syncs));
        }
        out.push('\n');
        out.push_str(&format!(
            "bytes: {} total (down {} / up {})\n",
            self.total_bytes(),
            self.down_bytes,
            self.up_bytes
        ));
        if self.rounds > 0 {
            out.push_str(&format!(
                "round network: p50 {} · p90 {} · max {}\n",
                ms(self.round_network_percentile(0.50)),
                ms(self.round_network_percentile(0.90)),
                ms(self.round_network_percentile(1.0)),
            ));
        }
        if !self.per_site.is_empty() {
            out.push_str("per-site:\n");
            out.push_str(&format!(
                "  {:<5} {:>10} {:>10} {:>14} {:>14} {:>6} {:>7}\n",
                "site", "down", "up", "compute", "wait", "deliv", "faults"
            ));
            for (i, s) in self.per_site.iter().enumerate() {
                out.push_str(&format!(
                    "  {:<5} {:>10} {:>10} {:>14} {:>14} {:>6} {:>7}\n",
                    i,
                    s.down_bytes,
                    s.up_bytes,
                    ms(s.compute_ns),
                    ms(s.wait_ns),
                    s.deliveries,
                    s.faults
                ));
            }
        }
        let nonzero: Vec<String> = Counter::ALL
            .iter()
            .filter(|c| self.counters[c.index()] > 0)
            .map(|c| format!("{}={}", c.name(), self.counters[c.index()]))
            .collect();
        if !nonzero.is_empty() {
            out.push_str(&format!("counters: {}\n", nonzero.join(" ")));
        }
        out
    }
}

/// The flat, all-integer digest of a [`MetricsReport`] — what the
/// artifact's optional `metrics` field carries. Fixed field set, fixed
/// JSON key order, so artifact round-trips stay byte-stable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSummary {
    /// Coordinator planning time, wall-clock nanoseconds.
    pub plan_ns: u64,
    /// Site compute, wall-clock nanoseconds summed over sites.
    pub site_compute_ns: u64,
    /// Simulated network time summed over rounds, nanoseconds.
    pub network_ns: u64,
    /// Total bytes on the simulated wire, both directions.
    pub total_bytes: u64,
    /// Coordinator → site bytes.
    pub down_bytes: u64,
    /// Site → coordinator bytes.
    pub up_bytes: u64,
    /// Protocol rounds completed.
    pub rounds: u64,
    /// Continuous-mode syncs completed.
    pub syncs: u64,
    /// Sites that missed a round entirely, summed over rounds.
    pub dropouts: u64,
    /// Failed delivery attempts, summed over rounds.
    pub retries: u64,
    /// Rounds that ran over a strict subset of sites.
    pub degraded_rounds: u64,
    /// Median per-round simulated network time, nanoseconds.
    pub round_network_p50_ns: u64,
    /// 90th-percentile per-round simulated network time, nanoseconds.
    pub round_network_p90_ns: u64,
    /// Worst per-round simulated network time, nanoseconds.
    pub round_network_max_ns: u64,
    /// Kernel/stream/sweep counter totals, indexed by
    /// [`Counter::index`].
    pub counters: [u64; COUNTER_COUNT],
}

impl MetricsSummary {
    /// Field names in serialization order (everything except the
    /// trailing `counters` object).
    const FIELDS: [&'static str; 14] = [
        "plan_ns",
        "site_compute_ns",
        "network_ns",
        "total_bytes",
        "down_bytes",
        "up_bytes",
        "rounds",
        "syncs",
        "dropouts",
        "retries",
        "degraded_rounds",
        "round_network_p50_ns",
        "round_network_p90_ns",
        "round_network_max_ns",
    ];

    fn field_values(&self) -> [u64; 14] {
        [
            self.plan_ns,
            self.site_compute_ns,
            self.network_ns,
            self.total_bytes,
            self.down_bytes,
            self.up_bytes,
            self.rounds,
            self.syncs,
            self.dropouts,
            self.retries,
            self.degraded_rounds,
            self.round_network_p50_ns,
            self.round_network_p90_ns,
            self.round_network_max_ns,
        ]
    }

    /// Serializes as a single JSON object with fixed key order.
    pub fn to_json(&self) -> String {
        let mut parts: Vec<String> = Self::FIELDS
            .iter()
            .zip(self.field_values())
            .map(|(name, v)| format!("\"{name}\":{v}"))
            .collect();
        let counters: Vec<String> = Counter::ALL
            .iter()
            .filter(|c| self.counters[c.index()] != 0 || !c.omitted_when_zero())
            .map(|c| format!("\"{}\":{}", c.name(), self.counters[c.index()]))
            .collect();
        parts.push(format!("\"counters\":{{{}}}", counters.join(",")));
        format!("{{{}}}", parts.join(","))
    }

    /// Reads a summary back from a parsed JSON object.
    pub fn from_json(v: &Json) -> Result<MetricsSummary, String> {
        let uint = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics: missing integer field '{key}'"))
        };
        let mut s = MetricsSummary {
            plan_ns: uint("plan_ns")?,
            site_compute_ns: uint("site_compute_ns")?,
            network_ns: uint("network_ns")?,
            total_bytes: uint("total_bytes")?,
            down_bytes: uint("down_bytes")?,
            up_bytes: uint("up_bytes")?,
            rounds: uint("rounds")?,
            syncs: uint("syncs")?,
            dropouts: uint("dropouts")?,
            retries: uint("retries")?,
            degraded_rounds: uint("degraded_rounds")?,
            round_network_p50_ns: uint("round_network_p50_ns")?,
            round_network_p90_ns: uint("round_network_p90_ns")?,
            round_network_max_ns: uint("round_network_max_ns")?,
            counters: [0; COUNTER_COUNT],
        };
        let counters = v
            .get("counters")
            .ok_or("metrics: missing 'counters' object")?;
        // Counters added after the schema's introduction read as zero
        // when absent, so summaries written before they existed still
        // parse; the original set stays required.
        for c in Counter::ALL {
            s.counters[c.index()] = match counters.get(c.name()).and_then(Json::as_u64) {
                Some(n) => n,
                None if c.optional_in_v1() => 0,
                None => return Err(format!("metrics: missing counter '{}'", c.name())),
            };
        }
        Ok(s)
    }

    /// Compact plain-text rendering of the digest (the per-site detail
    /// of [`MetricsReport::render`] is gone by the time a summary
    /// exists; this is the artifact-level view).
    pub fn render(&self) -> String {
        let ms = |ns: u64| format!("{:.3} ms", ns as f64 / 1e6);
        let mut out = String::new();
        out.push_str(&format!(
            "metrics: plan {} | site compute {} | network {}\n",
            ms(self.plan_ns),
            ms(self.site_compute_ns),
            ms(self.network_ns)
        ));
        out.push_str(&format!(
            "metrics: {} rounds, {} dropouts, {} retries, {} degraded",
            self.rounds, self.dropouts, self.retries, self.degraded_rounds
        ));
        if self.syncs > 0 {
            out.push_str(&format!(", {} syncs", self.syncs));
        }
        out.push('\n');
        out.push_str(&format!(
            "metrics: {} B total ({} down, {} up); round network p50 {} p90 {} max {}\n",
            self.total_bytes,
            self.down_bytes,
            self.up_bytes,
            ms(self.round_network_p50_ns),
            ms(self.round_network_p90_ns),
            ms(self.round_network_max_ns)
        ));
        let nonzero: Vec<String> = Counter::ALL
            .iter()
            .filter(|c| self.counters[c.index()] > 0)
            .map(|c| format!("{}={}", c.name(), self.counters[c.index()]))
            .collect();
        if !nonzero.is_empty() {
            out.push_str(&format!("metrics: counters {}\n", nonzero.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::record::FaultKind;

    fn sample_trace() -> Trace {
        let mut counters = [0u64; COUNTER_COUNT];
        counters[Counter::KernelQueries.index()] = 9;
        Trace {
            events: vec![
                Event::RunStart {
                    label: "median".to_string(),
                    sites: 2,
                    seed: 7,
                    fault_seed: 4,
                },
                Event::RoundStart { round: 0 },
                Event::Plan {
                    round: 0,
                    wall_ns: 100,
                },
                Event::Fault {
                    round: 0,
                    site: 1,
                    attempt: 0,
                    kind: FaultKind::Dropout,
                    wait_ns: 0,
                },
                Event::Site {
                    round: 0,
                    site: 0,
                    delivered: true,
                    down_bytes: 10,
                    up_bytes: 20,
                    compute_ns: 300,
                    wait_ns: 0,
                },
                Event::Site {
                    round: 0,
                    site: 1,
                    delivered: false,
                    down_bytes: 0,
                    up_bytes: 0,
                    compute_ns: 0,
                    wait_ns: 5,
                },
                Event::RoundEnd {
                    round: 0,
                    dropouts: 1,
                    retries: 2,
                    degraded: true,
                    network_ns: 1_000,
                },
                Event::RoundStart { round: 1 },
                Event::Plan {
                    round: 1,
                    wall_ns: 50,
                },
                Event::Site {
                    round: 1,
                    site: 0,
                    delivered: true,
                    down_bytes: 4,
                    up_bytes: 6,
                    compute_ns: 200,
                    wait_ns: 0,
                },
                Event::Site {
                    round: 1,
                    site: 1,
                    delivered: true,
                    down_bytes: 4,
                    up_bytes: 8,
                    compute_ns: 100,
                    wait_ns: 0,
                },
                Event::RoundEnd {
                    round: 1,
                    dropouts: 0,
                    retries: 0,
                    degraded: false,
                    network_ns: 3_000,
                },
                Event::RunEnd { rounds: 2 },
            ],
            counters,
        }
    }

    #[test]
    fn report_aggregates_totals_and_per_site() {
        let r = sample_trace().metrics();
        assert_eq!(r.rounds, 2);
        assert_eq!(r.down_bytes, 18);
        assert_eq!(r.up_bytes, 34);
        assert_eq!(r.total_bytes(), 52);
        assert_eq!(r.dropouts, 1);
        assert_eq!(r.retries, 2);
        assert_eq!(r.degraded_rounds, 1);
        assert_eq!(r.plan_ns, 150);
        assert_eq!(r.site_compute_ns, 600);
        assert_eq!(r.network_ns, 4_000);
        assert_eq!(r.per_site.len(), 2);
        assert_eq!(r.per_site[0].deliveries, 2);
        assert_eq!(r.per_site[0].up_bytes, 26);
        assert_eq!(r.per_site[1].faults, 1);
        assert_eq!(r.per_site[1].wait_ns, 5);
        assert_eq!(r.counters[Counter::KernelQueries.index()], 9);
        assert_eq!(r.round_network_ns, vec![1_000, 3_000]);
        assert_eq!(r.round_network_percentile(0.50), 1_000);
        assert_eq!(r.round_network_percentile(1.0), 3_000);
        assert_eq!(r.network_hist.count(), 2);
        assert_eq!(r.network_hist.max(), 3_000);
    }

    #[test]
    fn histogram_quantiles_are_within_a_bucket() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 100, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.sum(), 1_001_106);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 1_000_000);
        // q=0.5 → rank 3 → value 5 lives in bucket 3 (upper edge 7).
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(LogHistogram::new().quantile(0.5), 0);
        assert_eq!(LogHistogram::new().min(), 0);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample_trace().metrics().summary();
        assert_eq!(s.total_bytes, 52);
        assert_eq!(s.round_network_max_ns, 3_000);
        let doc = s.to_json();
        let back = MetricsSummary::from_json(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, s);
        // Re-serialization is byte-stable (fixed key order).
        assert_eq!(back.to_json(), doc);
        // Missing counters are an error, not a silent zero.
        let truncated = doc.replace("\"kernel_queries\":9", "\"kernel_queries_x\":9");
        assert!(MetricsSummary::from_json(&json::parse(&truncated).unwrap()).is_err());
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample_trace().metrics().render();
        assert!(text.contains("phase timing"));
        assert!(text.contains("site compute"));
        assert!(text.contains("network (sim)"));
        assert!(text.contains("rounds: 2 (1 degraded)"));
        assert!(text.contains("bytes: 52 total"));
        assert!(text.contains("per-site:"));
        assert!(text.contains("kernel_queries=9"));
    }

    #[test]
    fn replayed_trace_reconciles_deterministic_half() {
        // A JSONL round trip drops wall-clock data but must preserve the
        // byte/round/fault aggregates bit for bit.
        let t = sample_trace();
        let replay = Trace::from_jsonl(&t.to_jsonl()).unwrap();
        let (a, b) = (t.metrics(), replay.metrics());
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.dropouts, b.dropouts);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.network_ns, b.network_ns);
        assert_eq!(a.counters, b.counters);
        assert_eq!(b.site_compute_ns, 0); // wall clock zeroed
    }
}
