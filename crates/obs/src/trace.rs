//! Immutable trace snapshots and their serialized forms: the
//! schema-versioned JSONL wire format and the Chrome trace-event export.

use crate::json::{self, escape, Json};
use crate::record::{Counter, Event, FaultKind, COUNTER_COUNT};

/// Schema tag carried by the first line of every JSONL trace.
pub const TRACE_SCHEMA: &str = "dpc.trace/v1";

/// An immutable snapshot of everything a run recorded: the event stream
/// in arrival order plus the final counter totals.
///
/// Obtained from [`Collector::snapshot`](crate::Collector::snapshot);
/// consumed by the three sinks ([`Trace::to_jsonl`], [`Trace::metrics`],
/// [`Trace::to_chrome`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Recorded events, in the order they arrived at the collector.
    pub events: Vec<Event>,
    /// Final counter totals, indexed by [`Counter::index`].
    pub counters: [u64; COUNTER_COUNT],
}

impl Trace {
    /// Serializes the **deterministic** subset of the trace as JSONL
    /// (`dpc.trace/v1`), one event object per line.
    ///
    /// Only fields that are pure functions of `(seed, fault seed, job)`
    /// appear: indices, byte counts, fault decisions, and simulated time
    /// as exact integer nanoseconds. Wall-clock measurements
    /// ([`Event::Plan`], `Site::compute_ns`) and events whose arrival
    /// order depends on thread scheduling ([`Event::CellDone`]) are
    /// excluded, which is what makes traces of identical runs
    /// byte-identical across transport backends. Kernel counters *are*
    /// deterministic (the arithmetic is the same on every backend) and
    /// close the stream as a final `counters` line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                Event::RunStart {
                    label,
                    sites,
                    seed,
                    fault_seed,
                } => {
                    out.push_str(&format!(
                        "{{\"schema\":\"{TRACE_SCHEMA}\",\"ev\":\"run_start\",\"label\":\"{}\",\
                         \"sites\":{sites},\"seed\":{seed},\"fault_seed\":{fault_seed}}}\n",
                        escape(label)
                    ));
                }
                Event::RoundStart { round } => {
                    out.push_str(&format!("{{\"ev\":\"round_start\",\"round\":{round}}}\n"));
                }
                Event::Plan { .. } => {} // wall-clock only
                Event::Fault {
                    round,
                    site,
                    attempt,
                    kind,
                    wait_ns,
                } => {
                    out.push_str(&format!(
                        "{{\"ev\":\"fault\",\"round\":{round},\"site\":{site},\
                         \"attempt\":{attempt},\"kind\":\"{}\",\"wait_ns\":{wait_ns}}}\n",
                        kind.name()
                    ));
                }
                Event::Site {
                    round,
                    site,
                    delivered,
                    down_bytes,
                    up_bytes,
                    compute_ns: _, // wall-clock only
                    wait_ns,
                } => {
                    out.push_str(&format!(
                        "{{\"ev\":\"site\",\"round\":{round},\"site\":{site},\
                         \"delivered\":{delivered},\"down_bytes\":{down_bytes},\
                         \"up_bytes\":{up_bytes},\"wait_ns\":{wait_ns}}}\n"
                    ));
                }
                Event::RoundEnd {
                    round,
                    dropouts,
                    retries,
                    degraded,
                    network_ns,
                } => {
                    out.push_str(&format!(
                        "{{\"ev\":\"round_end\",\"round\":{round},\"dropouts\":{dropouts},\
                         \"retries\":{retries},\"degraded\":{degraded},\
                         \"network_ns\":{network_ns}}}\n"
                    ));
                }
                Event::RunEnd { rounds } => {
                    out.push_str(&format!("{{\"ev\":\"run_end\",\"rounds\":{rounds}}}\n"));
                }
                Event::SyncStart { sync, at } => {
                    out.push_str(&format!(
                        "{{\"ev\":\"sync_start\",\"sync\":{sync},\"at\":{at}}}\n"
                    ));
                }
                Event::SyncEnd { sync, bytes } => {
                    out.push_str(&format!(
                        "{{\"ev\":\"sync_end\",\"sync\":{sync},\"bytes\":{bytes}}}\n"
                    ));
                }
                Event::CellDone { .. } => {} // worker-thread arrival order
                Event::ShardPoll { .. } => {} // poll-wakeup counts are wall-clock only
            }
        }
        let totals: Vec<String> = Counter::ALL
            .iter()
            .filter(|c| {
                !c.wall_clock_only() && (self.counters[c.index()] != 0 || !c.omitted_when_zero())
            })
            .map(|c| format!("\"{}\":{}", c.name(), self.counters[c.index()]))
            .collect();
        out.push_str(&format!("{{\"ev\":\"counters\",{}}}\n", totals.join(",")));
        out
    }

    /// Parses a JSONL trace back into a [`Trace`].
    ///
    /// The first line must carry `"schema": "dpc.trace/v1"`. Wall-clock
    /// fields that the schema omits come back as zero, so a replayed
    /// trace reproduces every deterministic quantity (and therefore the
    /// byte/round/fault half of [`Trace::metrics`]) exactly.
    pub fn from_jsonl(input: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        let mut counters = [0u64; COUNTER_COUNT];
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let bad = |what: &str| format!("line {}: {what}", lineno + 1);
            let uint = |key: &str| {
                v.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(&format!("missing integer field '{key}'")))
            };
            let size = |key: &str| {
                v.get(key)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad(&format!("missing integer field '{key}'")))
            };
            let flag = |key: &str| {
                v.get(key)
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad(&format!("missing boolean field '{key}'")))
            };
            let ev = v
                .get("ev")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing 'ev' field"))?;
            if events.is_empty() {
                match v.get("schema").and_then(Json::as_str) {
                    Some(TRACE_SCHEMA) => {}
                    Some(other) => {
                        return Err(format!(
                            "unsupported trace schema '{other}' (expected '{TRACE_SCHEMA}')"
                        ))
                    }
                    None => return Err(bad("first line must carry the trace schema")),
                }
            }
            match ev {
                "run_start" => events.push(Event::RunStart {
                    label: v
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("missing 'label'"))?
                        .to_string(),
                    sites: size("sites")?,
                    seed: uint("seed")?,
                    fault_seed: uint("fault_seed")?,
                }),
                "round_start" => events.push(Event::RoundStart {
                    round: size("round")?,
                }),
                "fault" => events.push(Event::Fault {
                    round: size("round")?,
                    site: size("site")?,
                    attempt: size("attempt")?,
                    kind: v
                        .get("kind")
                        .and_then(Json::as_str)
                        .and_then(FaultKind::from_name)
                        .ok_or_else(|| bad("bad fault 'kind'"))?,
                    wait_ns: uint("wait_ns")?,
                }),
                "site" => events.push(Event::Site {
                    round: size("round")?,
                    site: size("site")?,
                    delivered: flag("delivered")?,
                    down_bytes: uint("down_bytes")?,
                    up_bytes: uint("up_bytes")?,
                    compute_ns: 0,
                    wait_ns: uint("wait_ns")?,
                }),
                "round_end" => events.push(Event::RoundEnd {
                    round: size("round")?,
                    dropouts: size("dropouts")?,
                    retries: size("retries")?,
                    degraded: flag("degraded")?,
                    network_ns: uint("network_ns")?,
                }),
                "run_end" => events.push(Event::RunEnd {
                    rounds: size("rounds")?,
                }),
                "sync_start" => events.push(Event::SyncStart {
                    sync: size("sync")?,
                    at: uint("at")?,
                }),
                "sync_end" => events.push(Event::SyncEnd {
                    sync: size("sync")?,
                    bytes: uint("bytes")?,
                }),
                "counters" => {
                    // Counters added after the schema's introduction read
                    // as zero when absent, so traces recorded before they
                    // existed still parse; the original set stays required.
                    for c in Counter::ALL {
                        counters[c.index()] = match v.get(c.name()).and_then(Json::as_u64) {
                            Some(n) => n,
                            None if c.optional_in_v1() => 0,
                            None => return Err(bad(&format!("missing counter '{}'", c.name()))),
                        };
                    }
                }
                other => return Err(bad(&format!("unknown event '{other}'"))),
            }
        }
        if events.is_empty() {
            return Err("empty trace".to_string());
        }
        Ok(Trace { events, counters })
    }

    /// Aggregates the trace into a [`MetricsReport`].
    ///
    /// [`MetricsReport`]: crate::MetricsReport
    pub fn metrics(&self) -> crate::MetricsReport {
        crate::MetricsReport::from_trace(self)
    }

    /// Exports the trace in the Chrome trace-event format
    /// (`chrome://tracing` / Perfetto: load the file directly).
    ///
    /// The timeline is schematic: each round lays out as
    /// `plan → site compute (parallel rows) → transfer`, where plan and
    /// compute widths are wall-clock measurements and the transfer width
    /// is the round's *simulated* network time, so the picture mixes
    /// real and modeled time on one axis. Row 0 is the coordinator,
    /// row `i + 1` is site `i`. Unlike the JSONL form this export is
    /// not deterministic across runs — it exists for eyeballs, not
    /// diffing.
    pub fn to_chrome(&self) -> String {
        let mut evs: Vec<String> = Vec::new();
        let span = |name: &str, ts: u64, dur: u64, tid: usize, args: String| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}",
                ts / 1_000,
                (dur / 1_000).max(1)
            )
        };
        let instant = |name: &str, ts: u64, tid: usize, args: String| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}",
                ts / 1_000
            )
        };
        // Cursor in nanoseconds; rounds are laid out back to back.
        let mut cursor = 0u64;
        let mut plan_ns = 0u64;
        let mut compute_end = 0u64; // max site-compute end within the round
        for ev in &self.events {
            match ev {
                Event::RunStart { label, .. } => {
                    evs.push(format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        escape(label)
                    ));
                }
                Event::Plan { round, wall_ns } => {
                    plan_ns = *wall_ns;
                    evs.push(span(
                        "plan",
                        cursor,
                        plan_ns,
                        0,
                        format!("\"round\":{round}"),
                    ));
                }
                Event::Fault {
                    round, site, kind, ..
                } => {
                    evs.push(instant(
                        kind.name(),
                        cursor,
                        site + 1,
                        format!("\"round\":{round}"),
                    ));
                }
                Event::Site {
                    round,
                    site,
                    compute_ns,
                    down_bytes,
                    up_bytes,
                    ..
                } => {
                    let start = cursor + plan_ns;
                    compute_end = compute_end.max(start + compute_ns);
                    evs.push(span(
                        "site_compute",
                        start,
                        *compute_ns,
                        site + 1,
                        format!(
                            "\"round\":{round},\"down_bytes\":{down_bytes},\
                             \"up_bytes\":{up_bytes}"
                        ),
                    ));
                }
                Event::RoundEnd {
                    round, network_ns, ..
                } => {
                    let start = compute_end.max(cursor + plan_ns);
                    evs.push(span(
                        "transfer",
                        start,
                        *network_ns,
                        0,
                        format!("\"round\":{round}"),
                    ));
                    cursor = start + network_ns;
                    plan_ns = 0;
                    compute_end = 0;
                }
                Event::SyncStart { sync, at } => {
                    evs.push(instant(
                        "sync_start",
                        cursor,
                        0,
                        format!("\"sync\":{sync},\"at\":{at}"),
                    ));
                }
                Event::SyncEnd { sync, bytes } => {
                    evs.push(instant(
                        "sync_end",
                        cursor,
                        0,
                        format!("\"sync\":{sync},\"bytes\":{bytes}"),
                    ));
                }
                _ => {}
            }
        }
        format!("{{\"traceEvents\":[{}]}}\n", evs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut counters = [0u64; COUNTER_COUNT];
        counters[Counter::KernelQueries.index()] = 120;
        counters[Counter::CandidatesPruned.index()] = 37;
        Trace {
            events: vec![
                Event::RunStart {
                    label: "median".to_string(),
                    sites: 2,
                    seed: 9007199254740993, // exceeds f64 precision
                    fault_seed: 4,
                },
                Event::RoundStart { round: 0 },
                Event::Plan {
                    round: 0,
                    wall_ns: 123,
                },
                Event::Fault {
                    round: 0,
                    site: 1,
                    attempt: 0,
                    kind: FaultKind::Retry,
                    wait_ns: 50_000_000,
                },
                Event::Site {
                    round: 0,
                    site: 0,
                    delivered: true,
                    down_bytes: 64,
                    up_bytes: 128,
                    compute_ns: 456,
                    wait_ns: 0,
                },
                Event::Site {
                    round: 0,
                    site: 1,
                    delivered: false,
                    down_bytes: 0,
                    up_bytes: 0,
                    compute_ns: 0,
                    wait_ns: 50_000_000,
                },
                Event::RoundEnd {
                    round: 0,
                    dropouts: 1,
                    retries: 1,
                    degraded: true,
                    network_ns: 50_000_000,
                },
                Event::SyncStart { sync: 0, at: 256 },
                Event::SyncEnd {
                    sync: 0,
                    bytes: 192,
                },
                Event::CellDone { cell: 3, total: 9 },
                Event::RunEnd { rounds: 1 },
            ],
            counters,
        }
    }

    #[test]
    fn jsonl_round_trips_the_deterministic_subset() {
        let t = sample();
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        // Wall-clock-only events and fields are gone or zeroed...
        assert!(!back.events.iter().any(|e| matches!(e, Event::Plan { .. })));
        assert!(!back
            .events
            .iter()
            .any(|e| matches!(e, Event::CellDone { .. })));
        assert!(back.events.iter().all(|e| match e {
            Event::Site { compute_ns, .. } => *compute_ns == 0,
            _ => true,
        }));
        // ...and everything else survives, including exact u64 seeds and
        // counter totals.
        assert!(back.events.contains(&Event::RunStart {
            label: "median".to_string(),
            sites: 2,
            seed: 9007199254740993,
            fault_seed: 4,
        }));
        assert_eq!(back.counters, t.counters);
        // Re-serializing the replay is byte-identical: the schema only
        // holds deterministic fields.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn wall_clock_differences_do_not_change_the_bytes() {
        let a = sample();
        let mut b = sample();
        for ev in &mut b.events {
            match ev {
                Event::Plan { wall_ns, .. } => *wall_ns = 999_999,
                Event::Site { compute_ns, .. } => *compute_ns = 777,
                _ => {}
            }
        }
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn wall_clock_counters_and_shard_polls_never_serialize() {
        // A mux run records ShardPoll events and a nonzero PollWakeups
        // total, but both depend on kernel scheduling — the JSONL form
        // must be byte-identical to the same run without them, and the
        // replay reads the counter back as zero.
        let mut t = sample();
        t.counters[Counter::PollWakeups.index()] = 17;
        t.events.push(Event::ShardPoll {
            round: 0,
            shard: 1,
            wakeups: 9,
        });
        let text = t.to_jsonl();
        assert_eq!(text, sample().to_jsonl());
        assert!(!text.contains("poll_wakeups"));
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.counters[Counter::PollWakeups.index()], 0);
        assert!(!back
            .events
            .iter()
            .any(|e| matches!(e, Event::ShardPoll { .. })));
    }

    #[test]
    fn schema_is_first_and_checked() {
        let text = sample().to_jsonl();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"schema\":\"dpc.trace/v1\""));
        let forged = text.replacen("dpc.trace/v1", "dpc.trace/v0", 1);
        assert!(Trace::from_jsonl(&forged).unwrap_err().contains("schema"));
        assert!(Trace::from_jsonl("{\"ev\":\"round_start\",\"round\":0}\n")
            .unwrap_err()
            .contains("schema"));
        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn every_jsonl_line_parses_as_json() {
        for line in sample().to_jsonl().lines() {
            json::parse(line).unwrap();
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_rows() {
        let doc = sample().to_chrome();
        let v = json::parse(doc.trim()).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!evs.is_empty());
        let names: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"plan"));
        assert!(names.contains(&"site_compute"));
        assert!(names.contains(&"transfer"));
        assert!(names.contains(&"retry"));
        // Site 0's compute lands on tid 1 (tid 0 is the coordinator).
        assert!(evs.iter().any(
            |e| e.get("name").and_then(Json::as_str) == Some("site_compute")
                && e.get("tid").and_then(Json::as_usize) == Some(1)
        ));
    }
}
