//! The recording interface: [`Recorder`], the cached [`RecorderHandle`],
//! the canonical [`Event`] schema, and the in-memory [`Collector`] sink.

use crate::trace::Trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Kind of a fault-injection decision surfaced by the protocol driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A site missed the round entirely (all delivery attempts failed).
    Dropout,
    /// One delivery attempt failed and the runtime moved to the next
    /// (the wait is the detection timeout, zero with a perfect failure
    /// detector).
    Retry,
    /// A reply was delayed: either accepted late (wait = the delay) or
    /// abandoned past the timeout (wait = the timeout, and the attempt
    /// also counts as a retry).
    Straggler,
}

impl FaultKind {
    /// Stable lower-case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Retry => "retry",
            FaultKind::Straggler => "straggler",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(s: &str) -> Option<FaultKind> {
        match s {
            "dropout" => Some(FaultKind::Dropout),
            "retry" => Some(FaultKind::Retry),
            "straggler" => Some(FaultKind::Straggler),
            _ => None,
        }
    }
}

/// A monotone counter identity. Counters are incremented through
/// [`Recorder::add`] (atomics in the [`Collector`]) and never appear as
/// individual events — hot code tallies locally and flushes once per
/// batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Nearest-center queries answered by the bulk kernels.
    KernelQueries,
    /// Candidate centers considered across all kernel queries.
    CandidatesScanned,
    /// Candidates rejected by an O(1) bound or a partial-distance abort
    /// before paying for a full exact pass ([`CenterBlock`] scans).
    ///
    /// [`CenterBlock`]: https://docs.rs/dpc_metric
    CandidatesPruned,
    /// Stream engine: input blocks folded into level-0 summaries.
    BlocksSummarized,
    /// Stream engine: carry-merges performed in the binary-counter tree.
    SummariesMerged,
    /// Continuous mode: sync protocols executed.
    SyncsRun,
    /// Parameter sweeps: grid cells completed.
    SweepCellsDone,
    /// Kernel queries whose full candidate scan was skipped because
    /// maintained triangle-inequality bounds already proved the winner
    /// (the `BoundedAssigner` fast path — the query paid for one
    /// distance instead of `k`).
    BoundSkips,
    /// Candidate scores produced by the tiled dot-form micro-kernel
    /// (rows × centers pushed through the GEMM-style tiles).
    TileScores,
    /// Raw (pre-compression) payload bytes moved by protocols running a
    /// non-raw wire [`Encoding`](https://docs.rs/dpc_codec) — what the
    /// same run would have charged without the codec.
    BytesRaw,
    /// Compressed (on-wire) payload bytes moved by protocols running a
    /// non-raw wire encoding. Zero (with [`Counter::BytesRaw`]) on raw
    /// runs, which is what keeps their traces byte-identical to the
    /// pre-codec goldens.
    BytesCompressed,
    /// Mux transport: readiness-loop wakeups (`poll(2)` returns) across
    /// all event-loop shards. The value depends on kernel scheduling
    /// and socket-buffer timing, so it is the one *wall-clock* counter:
    /// never serialized into the deterministic JSONL schema
    /// ([`Counter::wall_clock_only`]), only surfaced by metrics
    /// digests.
    PollWakeups,
}

/// Number of distinct [`Counter`] identities.
pub const COUNTER_COUNT: usize = 12;

impl Counter {
    /// All counters, in index order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::KernelQueries,
        Counter::CandidatesScanned,
        Counter::CandidatesPruned,
        Counter::BlocksSummarized,
        Counter::SummariesMerged,
        Counter::SyncsRun,
        Counter::SweepCellsDone,
        Counter::BoundSkips,
        Counter::TileScores,
        Counter::BytesRaw,
        Counter::BytesCompressed,
        Counter::PollWakeups,
    ];

    /// Dense index of this counter (its slot in counter arrays).
    pub fn index(self) -> usize {
        match self {
            Counter::KernelQueries => 0,
            Counter::CandidatesScanned => 1,
            Counter::CandidatesPruned => 2,
            Counter::BlocksSummarized => 3,
            Counter::SummariesMerged => 4,
            Counter::SyncsRun => 5,
            Counter::SweepCellsDone => 6,
            Counter::BoundSkips => 7,
            Counter::TileScores => 8,
            Counter::BytesRaw => 9,
            Counter::BytesCompressed => 10,
            Counter::PollWakeups => 11,
        }
    }

    /// Stable snake-case name used in the JSONL schema and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::KernelQueries => "kernel_queries",
            Counter::CandidatesScanned => "candidates_scanned",
            Counter::CandidatesPruned => "candidates_pruned",
            Counter::BlocksSummarized => "blocks_summarized",
            Counter::SummariesMerged => "summaries_merged",
            Counter::SyncsRun => "syncs_run",
            Counter::SweepCellsDone => "sweep_cells_done",
            Counter::BoundSkips => "bound_skips",
            Counter::TileScores => "tile_scores",
            Counter::BytesRaw => "bytes_raw",
            Counter::BytesCompressed => "bytes_compressed",
            Counter::PollWakeups => "poll_wakeups",
        }
    }

    /// Whether this counter postdates the `dpc.trace/v1` schema's
    /// introduction. Later additions read as zero when absent so older
    /// traces and summaries still parse; the original set stays
    /// required — a missing one is a malformed document, not a zero.
    pub fn optional_in_v1(self) -> bool {
        matches!(
            self,
            Counter::BoundSkips
                | Counter::TileScores
                | Counter::BytesRaw
                | Counter::BytesCompressed
                | Counter::PollWakeups
        )
    }

    /// Whether the JSONL counters line drops this counter when it is
    /// zero. Only counters added *after* a zero literal for them was
    /// already pinned into checked-in golden traces may set this —
    /// omitting them keeps pre-codec traces byte-identical, and
    /// [`Self::optional_in_v1`] makes the absence parse back as zero.
    pub fn omitted_when_zero(self) -> bool {
        matches!(
            self,
            Counter::BytesRaw | Counter::BytesCompressed | Counter::PollWakeups
        )
    }

    /// Whether this counter measures wall-clock scheduling rather than
    /// a deterministic quantity. Wall-clock counters are excluded from
    /// the JSONL counters line *unconditionally* (the same rule that
    /// drops `Event::Plan`), so traces of seeded runs stay
    /// byte-identical across transport backends; they reach reports
    /// through [`MetricsSummary`](crate::MetricsSummary), which already
    /// carries wall-clock fields. Parsing relies on
    /// [`Self::optional_in_v1`] to read the absence back as zero.
    pub fn wall_clock_only(self) -> bool {
        matches!(self, Counter::PollWakeups)
    }
}

/// One structured observation in the `run > round > phase > site` tree.
///
/// Fields split into two classes. *Deterministic* fields (byte counts,
/// indices, fault decisions, **simulated** time in exact integer
/// nanoseconds) are functions of `(seed, fault seed, job)` alone and are
/// what [`Trace::to_jsonl`] serializes. *Wall-clock* fields
/// (`wall_ns`, `compute_ns`) vary run to run; they feed the
/// [`MetricsReport`](crate::MetricsReport) and the Chrome export but are
/// excluded from the JSONL schema so traces stay byte-identical across
/// transports and runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A protocol run begins (emitted by the API layer with job
    /// metadata).
    RunStart {
        /// Job label (the job kind's name).
        label: String,
        /// Number of simulated sites.
        sites: usize,
        /// Partition/workload seed.
        seed: u64,
        /// Fault-schedule seed (0 when no faults are configured).
        fault_seed: u64,
    },
    /// A protocol round begins.
    RoundStart {
        /// Round index, starting at 0.
        round: usize,
    },
    /// The coordinator planned this round's messages (wall-clock only —
    /// not part of the JSONL schema).
    Plan {
        /// Round index.
        round: usize,
        /// Coordinator compute, wall-clock nanoseconds.
        wall_ns: u64,
    },
    /// One fault-schedule decision.
    Fault {
        /// Round index.
        round: usize,
        /// Site the decision applies to.
        site: usize,
        /// Delivery attempt index, starting at 0.
        attempt: usize,
        /// What happened.
        kind: FaultKind,
        /// Simulated wait charged by the decision, nanoseconds.
        wait_ns: u64,
    },
    /// Per-site accounting of one round.
    Site {
        /// Round index.
        round: usize,
        /// Site index.
        site: usize,
        /// Whether the site's reply arrived this round.
        delivered: bool,
        /// Coordinator → site payload bytes (0 when not delivered).
        down_bytes: u64,
        /// Site → coordinator payload bytes (0 when not delivered).
        up_bytes: u64,
        /// Site compute, wall-clock nanoseconds (not part of the JSONL
        /// schema).
        compute_ns: u64,
        /// Simulated fault wait charged to this site's slot, nanoseconds.
        wait_ns: u64,
    },
    /// A protocol round completed.
    RoundEnd {
        /// Round index.
        round: usize,
        /// Sites that missed the round entirely.
        dropouts: usize,
        /// Failed delivery attempts retried or abandoned.
        retries: usize,
        /// Whether the round ran over a strict subset of sites.
        degraded: bool,
        /// Simulated network time of the round, nanoseconds.
        network_ns: u64,
    },
    /// The protocol run finished.
    RunEnd {
        /// Rounds executed.
        rounds: usize,
    },
    /// A continuous-mode sync begins.
    SyncStart {
        /// Sync index, starting at 0.
        sync: usize,
        /// Fleet-wide ingested point count when the sync fired.
        at: u64,
    },
    /// A continuous-mode sync finished.
    SyncEnd {
        /// Sync index.
        sync: usize,
        /// Bytes the sync moved on the simulated wire.
        bytes: u64,
    },
    /// One sweep grid cell completed (emitted from worker threads, so
    /// arrival order is nondeterministic — excluded from the JSONL
    /// schema).
    CellDone {
        /// Cell index in row-major grid order.
        cell: usize,
        /// Total cells in the grid.
        total: usize,
    },
    /// One mux-transport event-loop shard finished its share of a round
    /// (wall-clock only — the wakeup count depends on kernel scheduling,
    /// so the event is excluded from the JSONL schema).
    ShardPoll {
        /// Round index.
        round: usize,
        /// Shard index within the event-loop pool.
        shard: usize,
        /// `poll(2)` wakeups the shard's readiness loop took to finish
        /// the round.
        wakeups: u64,
    },
}

/// A sink for structured events and counters.
///
/// Implementations must be thread-safe: the protocol driver records from
/// the coordinator thread while kernels flush counters from worker
/// threads. `enabled()` must be constant for the lifetime of the
/// recorder — [`RecorderHandle`] caches it once.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything at all. `false` lets
    /// instrumented code skip event construction entirely.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn record(&self, event: Event);

    /// Adds `delta` to a monotone counter.
    fn add(&self, counter: Counter, delta: u64);
}

/// The default recorder: keeps nothing, reports `enabled() == false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}

    fn add(&self, _counter: Counter, _delta: u64) {}
}

/// A cheap, clonable handle to a shared [`Recorder`].
///
/// The handle caches the recorder's `enabled()` answer at construction,
/// so the guard instrumented code runs on hot paths is one field read.
/// [`RecorderHandle::noop`] (also the `Default`) shares one static
/// no-op recorder — constructing it allocates nothing.
#[derive(Clone)]
pub struct RecorderHandle {
    inner: Arc<dyn Recorder>,
    on: bool,
}

impl RecorderHandle {
    /// Wraps a recorder, caching its `enabled()` answer.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        let on = recorder.enabled();
        Self {
            inner: recorder,
            on,
        }
    }

    /// The shared no-op handle (the disabled default).
    pub fn noop() -> Self {
        static NOOP: OnceLock<Arc<NoopRecorder>> = OnceLock::new();
        Self {
            inner: NOOP.get_or_init(|| Arc::new(NoopRecorder)).clone(),
            on: false,
        }
    }

    /// Whether recording is on. Instrumented code gates event
    /// construction and counter flushes on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Records one event (callers should gate on [`Self::enabled`]).
    #[inline]
    pub fn record(&self, event: Event) {
        self.inner.record(event);
    }

    /// Adds to a counter (callers should gate on [`Self::enabled`] and
    /// flush amortized tallies, not per-element deltas).
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        self.inner.add(counter, delta);
    }
}

impl Default for RecorderHandle {
    fn default() -> Self {
        Self::noop()
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("enabled", &self.on)
            .finish()
    }
}

/// The standard in-memory sink: events under a mutex, counters as
/// atomics. Snapshot with [`Collector::snapshot`] once the run is done.
#[derive(Debug, Default)]
pub struct Collector {
    events: Mutex<Vec<Event>>,
    counters: [AtomicU64; COUNTER_COUNT],
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle recording into this collector.
    pub fn handle(self: &Arc<Self>) -> RecorderHandle {
        RecorderHandle::new(self.clone() as Arc<dyn Recorder>)
    }

    /// Copies the collected state into an immutable [`Trace`].
    pub fn snapshot(&self) -> Trace {
        Trace {
            events: self.events.lock().expect("collector poisoned").clone(),
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
        }
    }
}

impl Recorder for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        self.events.lock().expect("collector poisoned").push(event);
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_inert() {
        let h = RecorderHandle::noop();
        assert!(!h.enabled());
        h.record(Event::RoundStart { round: 0 });
        h.add(Counter::KernelQueries, 5);
        assert_eq!(format!("{h:?}"), "RecorderHandle { enabled: false }");
        assert!(!RecorderHandle::default().enabled());
    }

    #[test]
    fn collector_accumulates_events_and_counters() {
        let c = Arc::new(Collector::new());
        let h = c.handle();
        assert!(h.enabled());
        h.record(Event::RoundStart { round: 0 });
        h.add(Counter::CandidatesPruned, 3);
        h.add(Counter::CandidatesPruned, 4);
        let t = c.snapshot();
        assert_eq!(t.events, vec![Event::RoundStart { round: 0 }]);
        assert_eq!(t.counters[Counter::CandidatesPruned.index()], 7);
        assert_eq!(t.counters[Counter::KernelQueries.index()], 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Arc::new(Collector::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = c.handle();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.add(Counter::KernelQueries, 1);
                    }
                });
            }
        });
        let t = c.snapshot();
        assert_eq!(t.counters[Counter::KernelQueries.index()], 4000);
    }

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::ALL[c.index()], c);
        }
        for k in [FaultKind::Dropout, FaultKind::Retry, FaultKind::Straggler] {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
