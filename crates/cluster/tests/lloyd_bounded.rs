//! Integration pins for the bounded (triangle-inequality) Lloyd path:
//! the recorded run must actually exercise the bound-skip fast path, and
//! recording must not change the result.

use dpc_cluster::lloyd::{lloyd_kmeans, lloyd_kmeans_recorded, LloydParams};
use dpc_metric::{PointSet, ThreadBudget, WeightedSet};
use dpc_obs::{Collector, Counter};
use std::sync::Arc;

fn clustered_points() -> PointSet {
    // Four well-separated clumps with mild in-clump spread: Lloyd needs
    // a few iterations to settle, and once it does the centroid drift is
    // tiny — exactly the regime the bounds are built for.
    let mut rows = Vec::new();
    for c in 0..4 {
        let cx = (c % 2) as f64 * 100.0;
        let cy = (c / 2) as f64 * 100.0;
        for i in 0..60 {
            let dx = ((i * 37 + c * 11) % 17) as f64 * 0.1;
            let dy = ((i * 53 + c * 7) % 13) as f64 * 0.1;
            rows.push(vec![cx + dx, cy + dy]);
        }
    }
    PointSet::from_rows(&rows)
}

#[test]
fn lloyd_bounds_skip_most_scans_after_first_iteration() {
    let ps = clustered_points();
    let w = WeightedSet::unit(ps.len());
    let params = LloydParams {
        restarts: 1,
        max_iters: 20,
        ..Default::default()
    };
    let col = Arc::new(Collector::new());
    let recorded = lloyd_kmeans_recorded(&ps, &w, 4, params, &col.handle());
    let trace = col.snapshot();
    let skips = trace.counters[Counter::BoundSkips.index()];
    let queries = trace.counters[Counter::KernelQueries.index()];
    assert!(skips > 0, "bounded Lloyd must skip some candidate scans");
    // Every iteration queries each of the 240 entries once; the first
    // iteration can never skip. Skips exceeding one full iteration's
    // worth of queries proves iterations after the first skip more than
    // half their scans on this data (in fact nearly all of them).
    assert!(
        skips >= ps.len() as u64,
        "skips {skips} vs {queries} queries over {} entries",
        ps.len()
    );

    // Recording is observation only: the unrecorded run is identical.
    let plain = lloyd_kmeans(&ps, &w, 4, params);
    assert_eq!(recorded.cost, plain.cost);
    assert_eq!(recorded.trimmed, plain.trimmed);
    for c in 0..recorded.centroids.len() {
        assert_eq!(recorded.centroids.point(c), plain.centroids.point(c));
    }
}

#[test]
fn lloyd_identical_across_thread_budgets() {
    let ps = clustered_points();
    let w = WeightedSet::unit(ps.len());
    let serial = lloyd_kmeans(
        &ps,
        &w,
        4,
        LloydParams {
            threads: ThreadBudget::serial(),
            ..Default::default()
        },
    );
    let threaded = lloyd_kmeans(
        &ps,
        &w,
        4,
        LloydParams {
            threads: ThreadBudget::new(4),
            ..Default::default()
        },
    );
    assert_eq!(serial.cost, threaded.cost);
    for c in 0..serial.centroids.len() {
        assert_eq!(serial.centroids.point(c), threaded.centroids.point(c));
    }
}
