//! Property-based tests of the clustering substrates against brute force.

use dpc_cluster::*;
use dpc_metric::*;
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = PointSet> {
    proptest::collection::vec(proptest::collection::vec(-1e3f64..1e3, 2..=2), 4..max_n)
        .prop_map(|rows| PointSet::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn gonzalez_radii_non_increasing(ps in arb_points(24)) {
        let m = EuclideanMetric::new(&ps);
        let ids: Vec<usize> = (0..ps.len()).collect();
        let g = gonzalez(&m, &ids, ps.len(), 0);
        for w in g.radii.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn gonzalez_2_approx_every_prefix(ps in arb_points(12)) {
        let m = EuclideanMetric::new(&ps);
        let n = ps.len();
        let ids: Vec<usize> = (0..n).collect();
        for k in 1..=2.min(n) {
            let g = gonzalez(&m, &ids, k, 0);
            let cost = (0..n)
                .map(|p| g.order.iter().map(|&c| m.dist(p, c)).fold(f64::INFINITY, f64::min))
                .fold(0.0, f64::max);
            let w = WeightedSet::unit(n);
            let opt = exact_best(&m, &w, k, 0.0, Objective::Center, 100_000).cost;
            prop_assert!(cost <= 2.0 * opt + 1e-9, "k={k}: {cost} > 2*{opt}");
        }
    }

    #[test]
    fn charikar_never_worse_than_3x_exact(ps in arb_points(11), t in 0usize..3) {
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let sol = charikar_center(&m, &w, 2, t as f64, CenterParams::default());
        let opt = exact_best(&m, &w, 2, t as f64, Objective::Center, 100_000).cost;
        prop_assert!(sol.cost <= 3.0 * opt + 1e-6, "{} > 3*{}", sol.cost, opt);
        prop_assert!(sol.outlier_weight() <= t as f64 + 1e-9);
    }

    #[test]
    fn bicriteria_within_6x_exact_at_double_budget(ps in arb_points(10), t in 0usize..3) {
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let sol = median_bicriteria(&m, &w, 2, t as f64, Objective::Median, BicriteriaParams::default());
        let opt = exact_best(&m, &w, 2, t as f64, Objective::Median, 100_000).cost;
        // Theorem 3.1 with eps=1: <= 6 opt while excluding <= 2t.
        prop_assert!(sol.cost <= 6.0 * opt + 1e-6, "{} > 6*{}", sol.cost, opt);
        prop_assert!(sol.outlier_weight() <= 2.0 * t as f64 + 1e-9);
    }

    #[test]
    fn local_search_never_increases_cost(ps in arb_points(20), seed in 0u64..64) {
        // The final cost is at most the seeded cost (swaps only improve).
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let params = LocalSearchParams { seed, ..Default::default() };
        let sol = penalty_local_search(&m, &w, 2, f64::INFINITY, params);
        // Compare against the trivial 1-center-at-0 upper bound * anything:
        // cheap sanity — cost is finite and consistent with its centers.
        let check = local_search_cost(&m, &w, &sol.centers);
        prop_assert!((sol.cost - check).abs() <= 1e-6 * check.max(1.0));
    }

    #[test]
    fn exact_best_is_minimum_over_singletons(ps in arb_points(9)) {
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let sol = exact_best(&m, &w, 1, 0.0, Objective::Median, 100_000);
        for c in 0..ps.len() {
            prop_assert!(sol.cost <= median_cost(&m, &[c], 0) + 1e-9);
        }
    }
}

fn local_search_cost<M: Metric>(m: &M, w: &WeightedSet, centers: &[usize]) -> f64 {
    w.iter()
        .map(|(id, wt)| {
            wt * centers
                .iter()
                .map(|&c| m.dist(id, c))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}
