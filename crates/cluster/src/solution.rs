//! Common solution representation: the paper's `sol(Z, k, t, d)`.

use dpc_metric::{cost_excluding_outliers_with, Metric, Objective, ThreadBudget, WeightedSet};

/// A clustering solution over some metric index space.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Chosen center ids (at most `k`).
    pub centers: Vec<usize>,
    /// Objective value over retained weight (`C_sol`).
    pub cost: f64,
    /// Excluded weight: `(position in the evaluated weighted set, weight)`.
    pub outliers: Vec<(usize, f64)>,
    /// Nearest-center position (within `centers`) per weighted-set entry.
    pub assignment: Vec<usize>,
}

impl Solution {
    /// Evaluates fixed `centers` against `points` with outlier budget `t`,
    /// producing a full solution record.
    pub fn evaluate<M: Metric>(
        metric: &M,
        points: &WeightedSet,
        centers: Vec<usize>,
        t: f64,
        objective: Objective,
    ) -> Self {
        Self::evaluate_with(
            metric,
            points,
            centers,
            t,
            objective,
            ThreadBudget::serial(),
        )
    }

    /// [`Self::evaluate`] with an explicit thread budget for the
    /// nearest-center scoring pass (wall-clock only — the record is
    /// identical at any budget).
    pub fn evaluate_with<M: Metric>(
        metric: &M,
        points: &WeightedSet,
        centers: Vec<usize>,
        t: f64,
        objective: Objective,
        threads: ThreadBudget,
    ) -> Self {
        let r = cost_excluding_outliers_with(metric, points, &centers, t, objective, threads);
        Solution {
            centers,
            cost: r.cost,
            outliers: r.excluded,
            assignment: r.assignment,
        }
    }

    /// Total excluded weight.
    pub fn outlier_weight(&self) -> f64 {
        self.outliers.iter().map(|&(_, w)| w).sum()
    }

    /// Entry positions (into the evaluated weighted set) with any excluded
    /// weight.
    pub fn outlier_positions(&self) -> Vec<usize> {
        self.outliers.iter().map(|&(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_metric::{EuclideanMetric, PointSet};

    #[test]
    fn evaluate_records_everything() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![9.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(3);
        let sol = Solution::evaluate(&m, &w, vec![0], 1.0, Objective::Median);
        assert_eq!(sol.cost, 1.0);
        assert_eq!(sol.outlier_weight(), 1.0);
        assert_eq!(sol.outlier_positions(), vec![2]);
        assert_eq!(sol.assignment, vec![0, 0, 0]);
    }
}
