//! Gonzalez's farthest-first traversal \[13\].
//!
//! Produces a re-ordering `p₁, p₂, …` of the points such that for every
//! prefix length `r`, the set `{p₁, …, p_r}` is a 2-approximate solution to
//! the `r`-center problem. The *insertion radius* of `p_r` — its distance to
//! the earlier points — is exactly the quantity Algorithm 2 uses as the
//! marginal `ℓ(i, q) = min{d(a_j, a_{k+q}) : j < k+q}`: it is non-increasing
//! in `r`, so the per-site profiles are automatically "convex enough" for the
//! water-filling allocation, with no hull computation needed.
//!
//! Runs in `O(m · n)` time for an `m`-point prefix over `n` points.

use dpc_metric::{Metric, NearestAssigner, ThreadBudget};
use dpc_obs::RecorderHandle;

/// Output of the traversal: the prefix ordering plus per-point bookkeeping.
#[derive(Clone, Debug)]
pub struct GonzalezOrdering {
    /// Selected point ids, in selection order.
    pub order: Vec<usize>,
    /// `radii[r]` = insertion radius of `order[r]` (distance to the previous
    /// selections); `radii[0] = f64::INFINITY` by convention.
    pub radii: Vec<f64>,
    /// For each input point, position (within `order`) of its nearest
    /// selected point, after the full prefix was selected.
    pub assignment: Vec<usize>,
    /// For each input point, the distance to its assigned selection.
    pub dist_to_center: Vec<f64>,
}

impl GonzalezOrdering {
    /// Number of selected points.
    pub fn prefix_len(&self) -> usize {
        self.order.len()
    }

    /// The maximum assignment distance when only the first `r` selections
    /// are used as centers equals `radii[r]`'s successor; this helper
    /// returns the classic 2-approximation certificate: using `r` centers,
    /// every point is within `radii[r]` of a center **if** `r` equals the
    /// full prefix, and within `radii[r]` of *some* point of the prefix in
    /// general (radii are non-increasing).
    pub fn radius_at(&self, r: usize) -> f64 {
        if r >= self.radii.len() {
            0.0
        } else {
            self.radii[r]
        }
    }
}

/// Runs the farthest-first traversal over `ids`, selecting at most
/// `prefix_len` points (capped to `ids.len()`).
///
/// `start` selects the first point deterministically (position within `ids`);
/// the classic analysis holds for any start.
///
/// # Panics
/// Panics if `ids` is empty or `start >= ids.len()`.
pub fn gonzalez<M: Metric>(
    metric: &M,
    ids: &[usize],
    prefix_len: usize,
    start: usize,
) -> GonzalezOrdering {
    gonzalez_with(metric, ids, prefix_len, start, ThreadBudget::serial())
}

/// [`gonzalez`] with an explicit thread budget for the per-step relax
/// scan (the `O(n)` distance pass against the newest selection).
///
/// The relax runs through the bulk [`Metric::relax_min_block`] kernel —
/// Euclidean metrics skip points whose partial distance already proves no
/// improvement — and the farthest-point bookkeeping stays on the calling
/// thread in index order. When the budget is serial *and* the metric
/// reports its relax kernel cannot prune ([`Metric::relax_min_prunes`],
/// e.g. Euclidean at low dimension), the traversal instead fuses the
/// relax and the farthest scan into one pass over the state — the bulk
/// kernel would otherwise pay for a second full sweep it cannot win
/// back. The ordering, radii, and assignments are identical to the
/// scalar traversal on every path, at any budget.
pub fn gonzalez_with<M: Metric>(
    metric: &M,
    ids: &[usize],
    prefix_len: usize,
    start: usize,
    threads: ThreadBudget,
) -> GonzalezOrdering {
    gonzalez_recorded(
        metric,
        ids,
        prefix_len,
        start,
        threads,
        &RecorderHandle::noop(),
    )
}

/// [`gonzalez_with`] flushing bulk-kernel counters (one relax pass per
/// selection step) to `recorder`. The ordering, radii, and assignments
/// are identical to the unrecorded traversal.
pub fn gonzalez_recorded<M: Metric>(
    metric: &M,
    ids: &[usize],
    prefix_len: usize,
    start: usize,
    threads: ThreadBudget,
    recorder: &RecorderHandle,
) -> GonzalezOrdering {
    assert!(!ids.is_empty(), "gonzalez requires at least one point");
    assert!(start < ids.len(), "start index out of range");
    let n = ids.len();
    let m = prefix_len.min(n);
    let assigner = NearestAssigner::with_recorder(metric, threads, recorder);
    // Per-point norms amortized over every relax round: metrics with a
    // reverse-triangle bound (Euclidean) skip non-improvable points in
    // O(1) per point regardless of dimension, so the bulk relax wins
    // even where partial-distance pruning cannot pay for itself.
    let norms = metric.relax_norms(ids);
    let fused = threads.is_serial() && !metric.relax_min_prunes() && norms.is_empty();

    let mut order = Vec::with_capacity(m);
    let mut radii = Vec::with_capacity(m);
    // Nearest selected distance / position per point (positions are into `order`).
    let mut best_d = vec![f64::INFINITY; n];
    let mut best_pos = vec![0usize; n];

    let mut next = start;
    let mut next_d = f64::INFINITY;
    for step in 0..m {
        let chosen = next;
        order.push(ids[chosen]);
        radii.push(next_d);
        let mut far_idx = 0usize;
        let mut far_d = -1.0f64;
        if fused {
            // Single pass: relax against the new selection and track the
            // farthest survivor as the state streams by. Same strict-`<`
            // relax rule and first-wins farthest rule as the split path.
            let c = ids[chosen];
            let zipped = best_d.iter_mut().zip(best_pos.iter_mut()).zip(ids);
            for (idx, ((bd, bp), &i)) in zipped.enumerate() {
                let d = metric.dist(i, c);
                if d < *bd {
                    *bd = d;
                    *bp = step;
                }
                if *bd > far_d {
                    far_d = *bd;
                    far_idx = idx;
                }
            }
        } else {
            // Bulk relax against the newly selected point (norm-bounded
            // and/or partial-distance pruned for Euclidean metrics), then
            // find the next farthest point in a sequential scan.
            if norms.is_empty() {
                assigner.relax_min(ids[chosen], ids, &mut best_d, &mut best_pos, step);
            } else {
                assigner.relax_min_bounded(
                    ids[chosen],
                    ids,
                    &norms,
                    &mut best_d,
                    &mut best_pos,
                    step,
                );
            }
            for (idx, &bd) in best_d.iter().enumerate() {
                if bd > far_d {
                    far_d = bd;
                    far_idx = idx;
                }
            }
        }
        next = far_idx;
        next_d = far_d;
    }

    GonzalezOrdering {
        order,
        radii,
        assignment: best_pos,
        dist_to_center: best_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_metric::{EuclideanMetric, PointSet};

    fn ids(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn selects_extremes_first() {
        // 0, 1, 2, 100: starting at 0, farthest is 100, then 2 (farthest
        // from {0,100}... actually 2 is at distance 2 from 0 and 98 from
        // 100 -> min 2; point 1 -> min 1; so 2 next).
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![100.0]]);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &ids(4), 3, 0);
        assert_eq!(g.order, vec![0, 3, 2]);
        assert_eq!(g.radii[0], f64::INFINITY);
        assert_eq!(g.radii[1], 100.0);
        assert_eq!(g.radii[2], 2.0);
    }

    #[test]
    fn radii_non_increasing() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i * 37 % 23) as f64, (i * 17 % 11) as f64])
            .collect();
        let ps = PointSet::from_rows(&rows);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &ids(40), 40, 0);
        for w in g.radii.windows(2) {
            assert!(w[0] >= w[1], "radii must be non-increasing: {:?}", g.radii);
        }
    }

    #[test]
    fn assignment_within_last_radius() {
        // Classic invariant: after selecting r points, every point is within
        // the *next* insertion radius of its nearest center; in particular
        // dist_to_center <= radii[r-1].
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64).sin() * 50.0, (i as f64).cos() * 50.0])
            .collect();
        let ps = PointSet::from_rows(&rows);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &ids(30), 5, 0);
        let last_r = g.radii[4];
        for (&d, &a) in g.dist_to_center.iter().zip(&g.assignment) {
            assert!(d <= last_r + 1e-9);
            assert!(a < 5);
        }
    }

    #[test]
    fn two_approximation_for_k_center() {
        // Brute-force optimal 2-center cost vs Gonzalez prefix of 2.
        let ps = PointSet::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![10.0, 10.0],
            vec![11.0, 10.0],
        ]);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &ids(5), 2, 0);
        let gonz_cost = g.dist_to_center.iter().cloned().fold(0.0, f64::max);
        // exact optimum over all pairs
        let mut best = f64::INFINITY;
        for a in 0..5 {
            for b in 0..a {
                let c = (0..5)
                    .map(|p| m.dist(p, a).min(m.dist(p, b)))
                    .fold(0.0, f64::max);
                best = best.min(c);
            }
        }
        assert!(gonz_cost <= 2.0 * best + 1e-9);
    }

    #[test]
    fn prefix_longer_than_input_caps() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![5.0]]);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &ids(2), 10, 0);
        assert_eq!(g.prefix_len(), 2);
        assert_eq!(g.radius_at(5), 0.0);
    }

    #[test]
    fn works_on_subset_ids() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &[1, 3], 2, 0);
        assert_eq!(g.order, vec![1, 3]);
        assert_eq!(g.radii[1], 2.0);
    }

    #[test]
    fn single_point() {
        let ps = PointSet::from_rows(&[vec![42.0]]);
        let m = EuclideanMetric::new(&ps);
        let g = gonzalez(&m, &[0], 3, 0);
        assert_eq!(g.order, vec![0]);
        assert_eq!(g.dist_to_center, vec![0.0]);
    }
}
