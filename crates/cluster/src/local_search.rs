//! Weighted k-median/means local search with a Lagrangian per-point penalty.
//!
//! This is the computational core of the Theorem 3.1 substitute (see
//! DESIGN.md §3): each point either pays its assignment distance or opts out
//! for a fixed penalty `λ`, i.e. we minimize
//!
//! ```text
//!   Σ_e  w_e · min( d(e, K), λ )         over |K| ≤ k
//! ```
//!
//! which is exactly the Lagrangian relaxation of the `(k,t)` objective that
//! the primal-dual algorithms of \[17\] (and their outlier extension in
//! \[4\]) optimize. `λ = ∞` recovers the plain k-median. For the means
//! objective, run this over a [`dpc_metric::SquaredMetric`].
//!
//! The search is the classic single-swap heuristic with the `O(n + k)`
//! per-candidate delta evaluation (maintaining nearest and second-nearest
//! center distances), plus weighted D-sampling seeding. Single-swap local
//! search is a constant-factor approximation for k-median (Arya et al.),
//! which is all the downstream lemmas require of the preclustering oracle.

use crate::solution::Solution;
use dpc_metric::{Assignment2C, Metric, NearestAssigner, ThreadBudget, WeightedSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning for [`penalty_local_search`].
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchParams {
    /// Maximum improving swaps applied.
    pub max_iters: usize,
    /// Candidate insertion points sampled per iteration (capped to `n`).
    pub swap_candidates: usize,
    /// Relative improvement threshold for accepting a swap.
    pub min_rel_gain: f64,
    /// RNG seed (seeding + candidate sampling are the only random choices).
    pub seed: u64,
    /// Thread budget for the bulk distance passes (state recomputation and
    /// swap-delta scoring). Wall-clock only — results are identical at any
    /// budget.
    pub threads: ThreadBudget,
}

impl Default for LocalSearchParams {
    fn default() -> Self {
        Self {
            max_iters: 60,
            swap_candidates: 48,
            min_rel_gain: 1e-6,
            seed: 0x5eed,
            threads: ThreadBudget::serial(),
        }
    }
}

/// State carried by the search: nearest / second-nearest center per entry
/// *with both positions* ([`NearestAssigner::assign2c`]), so an accepted
/// swap updates the state incrementally instead of re-scanning every
/// entry against every center.
type NearestState = Assignment2C;

/// Penalized cost of the current state.
fn penalized_cost(state: &NearestState, weights: &[f64], penalty: f64) -> f64 {
    state
        .d1
        .iter()
        .zip(weights)
        .map(|(&d, &w)| w * d.min(penalty))
        .sum()
}

/// Weighted D-sampling seeding (k-means++ style) under the penalty metric:
/// the first center is the weighted medoid-ish heaviest point, subsequent
/// centers are sampled proportionally to `w · min(d, λ)`.
fn seed_centers<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    penalty: f64,
    rng: &mut SmallRng,
    threads: ThreadBudget,
) -> Vec<usize> {
    let ids = points.ids();
    let weights = points.weights();
    let n = ids.len();
    let k = k.min(n);
    let mut centers = Vec::with_capacity(k);
    let assigner = NearestAssigner::with_threads(metric, threads);

    // First center: the entry with maximum weight (deterministic anchor).
    let first = (0..n)
        .max_by(|&a, &b| weights[a].total_cmp(&weights[b]))
        .expect("non-empty points");
    centers.push(ids[first]);

    let mut d1 = Vec::with_capacity(n);
    assigner.dists_from(ids[first], ids, &mut d1);
    let mut dists = Vec::with_capacity(n);
    while centers.len() < k {
        let scores: Vec<f64> = d1
            .iter()
            .zip(weights)
            .map(|(&d, &w)| w * d.min(penalty))
            .collect();
        let total: f64 = scores.iter().sum();
        let chosen = if total <= 0.0 {
            // Everything already covered at distance 0: any remaining entry.
            (0..n).find(|&e| d1[e] > 0.0).unwrap_or(centers.len() % n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (e, &s) in scores.iter().enumerate() {
                if target < s {
                    pick = e;
                    break;
                }
                target -= s;
            }
            pick
        };
        centers.push(ids[chosen]);
        assigner.dists_from(ids[chosen], ids, &mut dists);
        for (dd, &d) in d1.iter_mut().zip(&dists) {
            if d < *dd {
                *dd = d;
            }
        }
    }
    centers
}

/// Runs the penalized single-swap local search.
///
/// Returns the chosen centers together with the *penalized* objective in
/// `cost`; `outliers` lists entries whose nearest-center distance strictly
/// exceeds `penalty` (their full weight is charged the penalty), and
/// `assignment` is nearest-center as usual. Callers wanting the `(k,t)`
/// semantics should re-evaluate the centers with
/// [`Solution::evaluate`](crate::solution::Solution::evaluate).
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn penalty_local_search<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    penalty: f64,
    params: LocalSearchParams,
) -> Solution {
    assert!(!points.is_empty(), "local search requires points");
    assert!(k > 0, "need at least one center");
    let ids = points.ids();
    let weights = points.weights();
    let n = ids.len();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let assigner = NearestAssigner::with_threads(metric, params.threads);

    let mut centers = seed_centers(metric, points, k, penalty, &mut rng, params.threads);
    let mut state: NearestState = assigner.assign2c(ids, &centers);
    let mut cost = penalized_cost(&state, weights, penalty);
    let mut dx_all = Vec::with_capacity(n);
    let mut stale: Vec<usize> = Vec::new();

    for _ in 0..params.max_iters {
        let kk = centers.len();
        // Sample candidate insertions.
        let cand_count = params.swap_candidates.min(n);
        let mut best: Option<(usize, usize, f64)> = None; // (cand entry, removed pos, delta)
        for _ in 0..cand_count {
            let cand = rng.gen_range(0..n);
            let x = ids[cand];
            if centers.contains(&x) {
                continue;
            }
            // Delta decomposition: delta(x, ci) = a + b[ci], where
            //   a      = Σ_e w_e (min(dx, d1, λ) − min(d1, λ))
            //   b[ci]  = Σ_{e: c1=ci} w_e (min(d2, dx, λ) − min(dx, d1, λ))
            // The candidate's distances to every entry come from one bulk
            // pass; the accumulation stays sequential in entry order.
            assigner.dists_from(x, ids, &mut dx_all);
            let mut a = 0.0f64;
            let mut b = vec![0.0f64; kk];
            for e in 0..n {
                let w = weights[e];
                if w == 0.0 {
                    continue;
                }
                let dx = dx_all[e];
                let old = state.d1[e].min(penalty);
                let with_x = dx.min(state.d1[e]).min(penalty);
                a += w * (with_x - old);
                let without_c1 = state.d2[e].min(dx).min(penalty);
                b[state.c1[e]] += w * (without_c1 - with_x);
            }
            for (ci, &bc) in b.iter().enumerate() {
                let delta = a + bc;
                if best.is_none_or(|(_, _, bd)| delta < bd) {
                    best = Some((cand, ci, delta));
                }
            }
        }
        match best {
            Some((cand, ci, delta)) if delta < -params.min_rel_gain * cost.max(1e-30) => {
                centers[ci] = ids[cand];
                // Incremental state update. Only the center at slot `ci`
                // changed, so for entries whose top-2 did not involve it
                // the new top-2 is the lex merge of the old pair with the
                // one new `(dx, ci)` candidate — a single bulk distance
                // pass. Entries whose nearest or second-nearest *was* the
                // replaced slot lose that anchor and rescan against the
                // full center list, but they are the minority (one
                // cluster's worth per swap).
                assigner.dists_from(ids[cand], ids, &mut dx_all);
                stale.clear();
                for (e, &dx) in dx_all.iter().enumerate().take(n) {
                    if state.c1[e] == ci || state.c2[e] == ci {
                        stale.push(e);
                        continue;
                    }
                    // Lex merge on (distance, position): reproduces the
                    // strict-< first-wins scan under any visit order.
                    if dx < state.d1[e] || (dx == state.d1[e] && ci < state.c1[e]) {
                        state.d2[e] = state.d1[e];
                        state.c2[e] = state.c1[e];
                        state.d1[e] = dx;
                        state.c1[e] = ci;
                    } else if dx < state.d2[e] || (dx == state.d2[e] && ci < state.c2[e]) {
                        state.d2[e] = dx;
                        state.c2[e] = ci;
                    }
                }
                if !stale.is_empty() {
                    let stale_ids: Vec<usize> = stale.iter().map(|&e| ids[e]).collect();
                    let sub = assigner.assign2c(&stale_ids, &centers);
                    for (s, &e) in stale.iter().enumerate() {
                        state.c1[e] = sub.c1[s];
                        state.c2[e] = sub.c2[s];
                        state.d1[e] = sub.d1[s];
                        state.d2[e] = sub.d2[s];
                    }
                }
                #[cfg(debug_assertions)]
                {
                    // The incremental state must agree with a fresh full
                    // rescan: bit-identical for metrics whose bulk hooks
                    // share one distance domain (Euclidean), within the
                    // documented ~1-ulp squared-routing exception
                    // otherwise — so distances are compared with a
                    // tolerance and positions only where the gap is
                    // decisive.
                    let fresh = assigner.assign2c(ids, &centers);
                    let close =
                        |a: f64, b: f64| a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs());
                    for e in 0..n {
                        debug_assert!(
                            close(state.d1[e], fresh.d1[e]) && close(state.d2[e], fresh.d2[e]),
                            "incremental top-2 distances diverged at entry {e}"
                        );
                        if !close(fresh.d1[e], fresh.d2[e]) {
                            debug_assert_eq!(
                                state.c1[e], fresh.c1[e],
                                "incremental nearest position diverged at entry {e}"
                            );
                        }
                    }
                }
                cost += delta;
                // Guard against floating drift.
                debug_assert!(
                    (penalized_cost(&state, weights, penalty) - cost).abs()
                        <= 1e-6 * cost.abs().max(1.0)
                );
                cost = penalized_cost(&state, weights, penalty);
            }
            _ => break,
        }
    }

    let outliers: Vec<(usize, f64)> = state
        .d1
        .iter()
        .enumerate()
        .filter(|&(e, &d)| d > penalty && weights[e] > 0.0)
        .map(|(e, _)| (e, weights[e]))
        .collect();
    Solution {
        centers,
        cost,
        outliers,
        assignment: state.c1,
    }
}

/// Plain weighted k-median local search (no penalty): a convenience wrapper
/// used for `t = 0` instances and baselines.
pub fn kmedian_local_search<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    params: LocalSearchParams,
) -> Solution {
    let mut sol = penalty_local_search(metric, points, k, f64::INFINITY, params);
    sol.outliers.clear();
    sol
}

/// Evaluates the penalized objective for arbitrary centers (test helper and
/// cross-check used by the λ-search).
pub fn penalized_objective<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    centers: &[usize],
    penalty: f64,
) -> f64 {
    points
        .iter()
        .map(|(id, w)| {
            let d = centers
                .iter()
                .map(|&c| metric.dist(id, c))
                .fold(f64::INFINITY, f64::min);
            w * d.min(penalty)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_metric::{EuclideanMetric, PointSet, SquaredMetric};

    fn two_clumps() -> PointSet {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            rows.push(vec![100.0 + 0.01 * i as f64, 0.0]);
        }
        PointSet::from_rows(&rows)
    }

    #[test]
    fn finds_both_clumps() {
        let ps = two_clumps();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(20);
        let sol = kmedian_local_search(&m, &w, 2, LocalSearchParams::default());
        // One center in each clump: cost well below 1.0 (vs ~1000 for a
        // single-clump placement).
        assert!(sol.cost < 1.0, "cost {}", sol.cost);
        let c0 = ps.point(sol.centers[0])[0];
        let c1 = ps.point(sol.centers[1])[0];
        assert!((c0 < 50.0) != (c1 < 50.0), "centers must split the clumps");
    }

    #[test]
    fn penalty_marks_far_points_outliers() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![500.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(4);
        let sol = penalty_local_search(&m, &w, 1, 10.0, LocalSearchParams::default());
        assert_eq!(sol.outliers.len(), 1);
        assert_eq!(sol.outliers[0].0, 3);
        // Penalized cost = within-clump cost + λ for the outlier.
        assert!(sol.cost <= 0.3 + 10.0 + 1e-9);
    }

    #[test]
    fn infinite_penalty_equals_plain() {
        let ps = two_clumps();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(20);
        let a = penalty_local_search(&m, &w, 2, f64::INFINITY, LocalSearchParams::default());
        let b = kmedian_local_search(&m, &w, 2, LocalSearchParams::default());
        assert_eq!(a.centers, b.centers);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn respects_weights() {
        // A weight-100 point far away must attract a center over a weight-1
        // clump when k=1.
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![1000.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::from_parts(vec![0, 1, 2], vec![1.0, 1.0, 100.0]);
        let sol = kmedian_local_search(&m, &w, 1, LocalSearchParams::default());
        assert_eq!(sol.centers, vec![2]);
    }

    #[test]
    fn works_with_squared_metric_for_means() {
        let ps = two_clumps();
        let m = SquaredMetric::new(EuclideanMetric::new(&ps));
        let w = WeightedSet::unit(20);
        let sol = kmedian_local_search(&m, &w, 2, LocalSearchParams::default());
        assert!(sol.cost < 1.0, "means cost {}", sol.cost);
    }

    #[test]
    fn k_larger_than_n_caps() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![5.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(2);
        let sol = kmedian_local_search(&m, &w, 5, LocalSearchParams::default());
        assert!(sol.cost <= 1e-12);
    }

    #[test]
    fn objective_helper_matches_search_cost() {
        let ps = two_clumps();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(20);
        let sol = penalty_local_search(&m, &w, 2, 3.0, LocalSearchParams::default());
        let check = penalized_objective(&m, &w, &sol.centers, 3.0);
        assert!((sol.cost - check).abs() <= 1e-9 * check.max(1.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let ps = two_clumps();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(20);
        let p = LocalSearchParams {
            seed: 42,
            ..Default::default()
        };
        let a = kmedian_local_search(&m, &w, 3, p);
        let b = kmedian_local_search(&m, &w, 3, p);
        assert_eq!(a.centers, b.centers);
    }
}
