//! Lloyd's k-means with optional trimming — the classical baseline the
//! partial-clustering objectives are compared against in the experiments
//! (it has no outlier robustness, which is precisely the paper's
//! motivation for the `(k,t)` objectives).
//!
//! Unlike the other solvers, Lloyd's centers are arbitrary points of `R^d`
//! (centroids), not input points, so it operates directly on a
//! [`PointSet`].

use dpc_metric::{
    sq_dists_to_coords, Assignment, BoundedAssigner, PointSet, ThreadBudget, WeightedSet,
};
use dpc_obs::RecorderHandle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning for [`lloyd_kmeans`].
#[derive(Clone, Copy, Debug)]
pub struct LloydParams {
    /// Maximum assign/update rounds.
    pub max_iters: usize,
    /// Relative cost-improvement threshold for convergence.
    pub tol: f64,
    /// Number of points (by weight) to exclude from centroid updates and the
    /// final cost — `0.0` is classic Lloyd, `t` gives trimmed k-means.
    pub trim: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Independent restarts (the lowest-cost run wins); trimmed k-means in
    /// particular needs restarts to escape seedings that capture outliers.
    pub restarts: usize,
    /// Thread budget for the assignment and seeding distance passes
    /// (wall-clock only — identical results at any budget).
    pub threads: ThreadBudget,
}

impl Default for LloydParams {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-6,
            trim: 0.0,
            seed: 0x5eed,
            restarts: 4,
            threads: ThreadBudget::serial(),
        }
    }
}

/// Output of [`lloyd_kmeans`].
#[derive(Clone, Debug)]
pub struct LloydResult {
    /// Final centroids (row-major, `k × dim`).
    pub centroids: PointSet,
    /// Sum of squared distances over retained weight.
    pub cost: f64,
    /// Entry positions excluded by trimming in the final iteration.
    pub trimmed: Vec<usize>,
}

/// Runs weighted (trimmed) Lloyd's algorithm with k-means++ seeding.
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or weights mismatch.
pub fn lloyd_kmeans(
    points: &PointSet,
    weighted: &WeightedSet,
    k: usize,
    params: LloydParams,
) -> LloydResult {
    lloyd_kmeans_recorded(points, weighted, k, params, &RecorderHandle::noop())
}

/// [`lloyd_kmeans`] flushing kernel scan/skip counters to `recorder` —
/// iterations after the first run through a [`BoundedAssigner`], whose
/// bound-certified skips show up as `Counter::BoundSkips`. Results are
/// identical to [`lloyd_kmeans`] (the bounds never change a winner or a
/// distance bit).
pub fn lloyd_kmeans_recorded(
    points: &PointSet,
    weighted: &WeightedSet,
    k: usize,
    params: LloydParams,
    recorder: &RecorderHandle,
) -> LloydResult {
    let restarts = params.restarts.max(1);
    let mut best: Option<LloydResult> = None;
    for r in 0..restarts {
        let run = lloyd_kmeans_once(
            points,
            weighted,
            k,
            LloydParams {
                seed: params.seed.wrapping_add(r as u64),
                ..params
            },
            recorder,
        );
        if best.as_ref().is_none_or(|b| run.cost < b.cost) {
            best = Some(run);
        }
    }
    best.expect("at least one restart")
}

/// A single seeded run of (trimmed) Lloyd.
fn lloyd_kmeans_once(
    points: &PointSet,
    weighted: &WeightedSet,
    k: usize,
    params: LloydParams,
    recorder: &RecorderHandle,
) -> LloydResult {
    assert!(!weighted.is_empty(), "lloyd requires points");
    assert!(k > 0, "need at least one center");
    let ids = weighted.ids();
    let weights = weighted.weights();
    let n = ids.len();
    let dim = points.dim();
    let k = k.min(n);
    let mut rng = SmallRng::seed_from_u64(params.seed);

    // k-means++ seeding over entries (bulk squared-distance passes).
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    centroids.push(points.point(ids[first]).to_vec());
    let mut d2: Vec<f64> = Vec::with_capacity(n);
    sq_dists_to_coords(points, ids, &centroids[0], &mut d2, params.threads);
    let mut seed_dists = Vec::with_capacity(n);
    while centroids.len() < k {
        let mut scores: Vec<f64> = d2.iter().zip(weights).map(|(&d, &w)| d * w).collect();
        // Robust seeding (k-means-- style): the `trim` most expensive weight
        // is assumed outlier and removed from the sampling distribution, so
        // planted outliers do not capture seeds.
        if params.trim > 0.0 {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| d2[b].total_cmp(&d2[a]));
            let mut budget = params.trim;
            for &e in &order {
                if budget <= 0.0 {
                    break;
                }
                if weights[e] <= budget {
                    budget -= weights[e];
                    scores[e] = 0.0;
                } else {
                    scores[e] *= (weights[e] - budget) / weights[e];
                    budget = 0.0;
                }
            }
        }
        let total: f64 = scores.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut p = n - 1;
            for (e, &s) in scores.iter().enumerate() {
                if target < s {
                    p = e;
                    break;
                }
                target -= s;
            }
            p
        };
        centroids.push(points.point(ids[pick]).to_vec());
        sq_dists_to_coords(
            points,
            ids,
            centroids.last().expect("just pushed"),
            &mut seed_dists,
            params.threads,
        );
        for (dd, &d) in d2.iter_mut().zip(&seed_dists) {
            if d < *dd {
                *dd = d;
            }
        }
    }

    let mut prev_cost = f64::INFINITY;
    let mut trimmed: Vec<usize> = Vec::new();
    // Persistent bounded assigner: the first iteration pays a full
    // blocked pass and seeds per-entry lower bounds; later iterations
    // shrink the bounds by the centroid drift and skip the candidate
    // scan for every entry whose (exact) assigned-center distance still
    // certifies the winner. Outputs are bit-identical to a fresh blocked
    // pass per iteration.
    let mut bounded = BoundedAssigner::with_recorder(recorder.clone());
    let mut assigned = Assignment::default();
    for _ in 0..params.max_iters {
        bounded.assign_sq(points, ids, &centroids, params.threads, &mut assigned);
        let (assign, dist2) = (&assigned.pos, &assigned.dist);
        // Trim: drop the most expensive `trim` weight from updates & cost.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dist2[b].total_cmp(&dist2[a]));
        let mut budget = params.trim;
        let mut keep_w = weights.to_vec();
        trimmed.clear();
        for &e in &order {
            if budget <= 0.0 {
                break;
            }
            let cut = budget.min(keep_w[e]);
            keep_w[e] -= cut;
            budget -= cut;
            if cut > 0.0 {
                trimmed.push(e);
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; centroids.len()];
        let mut wsum = vec![0.0f64; centroids.len()];
        for e in 0..n {
            let w = keep_w[e];
            if w <= 0.0 {
                continue;
            }
            let p = points.point(ids[e]);
            for (s, &c) in sums[assign[e]].iter_mut().zip(p) {
                *s += w * c;
            }
            wsum[assign[e]] += w;
        }
        let mut relocation_order: Option<Vec<usize>> = None;
        let mut relocated = 0usize;
        for (c, cen) in centroids.iter_mut().enumerate() {
            if wsum[c] > 0.0 {
                for (x, s) in cen.iter_mut().zip(&sums[c]) {
                    *x = s / wsum[c];
                }
            } else {
                // Empty (or fully trimmed) cluster: relocate its centroid to
                // the costliest retained point so it cannot strand on a
                // trimmed outlier.
                let order = relocation_order.get_or_insert_with(|| {
                    let mut o: Vec<usize> = (0..n).filter(|&e| keep_w[e] > 0.0).collect();
                    o.sort_by(|&a, &b| dist2[b].total_cmp(&dist2[a]));
                    o
                });
                if relocated < order.len() {
                    let e = order[relocated];
                    relocated += 1;
                    cen.copy_from_slice(points.point(ids[e]));
                }
            }
        }
        // Cost over retained weight.
        let cost: f64 = (0..n).map(|e| keep_w[e] * dist2[e]).sum();
        if prev_cost.is_finite() && (prev_cost - cost).abs() <= params.tol * prev_cost.max(1e-30) {
            prev_cost = cost;
            break;
        }
        prev_cost = cost;
    }

    let mut cps = PointSet::with_capacity(dim, centroids.len());
    for c in &centroids {
        cps.push(c);
    }
    LloydResult {
        centroids: cps,
        cost: prev_cost,
        trimmed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clumps() -> PointSet {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![(i % 4) as f64 * 0.1, 0.0]);
        }
        for i in 0..20 {
            rows.push(vec![50.0 + (i % 4) as f64 * 0.1, 0.0]);
        }
        PointSet::from_rows(&rows)
    }

    #[test]
    fn converges_on_clumps() {
        let ps = clumps();
        let w = WeightedSet::unit(ps.len());
        let r = lloyd_kmeans(&ps, &w, 2, LloydParams::default());
        assert!(r.cost < 1.0, "cost {}", r.cost);
        let a = r.centroids.point(0)[0];
        let b = r.centroids.point(1)[0];
        assert!((a < 25.0) != (b < 25.0));
    }

    #[test]
    fn outlier_wrecks_untrimmed_kmeans() {
        // The motivating phenomenon: one far outlier drags a center away.
        let mut ps = clumps();
        ps.push(&[1e6, 0.0]);
        let w = WeightedSet::unit(ps.len());
        let plain = lloyd_kmeans(&ps, &w, 2, LloydParams::default());
        let trimmed = lloyd_kmeans(
            &ps,
            &w,
            2,
            LloydParams {
                trim: 1.0,
                ..Default::default()
            },
        );
        assert!(
            trimmed.cost < plain.cost / 100.0,
            "trimmed {} vs plain {}",
            trimmed.cost,
            plain.cost
        );
        assert_eq!(trimmed.trimmed, vec![40]);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0], vec![1.0, 3.0]]);
        let w = WeightedSet::unit(3);
        let r = lloyd_kmeans(&ps, &w, 1, LloydParams::default());
        let c = r.centroids.point(0);
        assert!((c[0] - 1.0).abs() < 1e-9 && (c[1] - 1.0).abs() < 1e-9);
    }
}
