//! Centralized clustering substrates.
//!
//! These are the building blocks the paper's distributed algorithms invoke on
//! each site and at the coordinator:
//!
//! * [`mod@gonzalez`] — Gonzalez's farthest-first traversal \[13\]: a single
//!   reordering of the points whose every prefix is a 2-approximate
//!   `r`-center solution. Algorithm 2 derives both the preclustering *and*
//!   the globally comparable marginals `ℓ(i,q)` from it.
//! * [`center_outliers`] — the Charikar et al. \[4\] style greedy-disk
//!   3-approximation for `(k,t)`-center with outliers (weighted), run by the
//!   coordinator in Algorithms 2 and 4.
//! * [`median_outliers`] — the Theorem 3.1 analogue: a Lagrangian λ-penalty
//!   local search for `(k, (1+ε)t)`-median/means (weighted), with a
//!   parametric search on λ. See DESIGN.md §3 for the substitution note.
//! * [`local_search`] — weighted k-median/means local search with an
//!   optional per-point penalty (the Lagrangian core).
//! * [`lloyd`] — Lloyd's k-means (with trimming) as a classical baseline.
//! * [`exact`] — brute-force optimal solvers for small instances; the test
//!   oracle every approximation claim is validated against.
//! * [`solution`] — the common solution representation
//!   (`sol(Z,k,t,d)` of §2).

pub mod center_outliers;
pub mod exact;
pub mod gonzalez;
pub mod lloyd;
pub mod local_search;
pub mod median_outliers;
pub mod solution;

pub use center_outliers::{charikar_center, CenterParams};
pub use exact::{exact_best, ExactSolution};
pub use gonzalez::{gonzalez, gonzalez_recorded, gonzalez_with, GonzalezOrdering};
pub use lloyd::{lloyd_kmeans, LloydParams};
pub use local_search::{kmedian_local_search, penalty_local_search, LocalSearchParams};
pub use median_outliers::{median_bicriteria, median_bicriteria_relaxed_centers, BicriteriaParams};
pub use solution::Solution;
