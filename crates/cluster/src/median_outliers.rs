//! Bicriteria `(k, (1+ε)t)`-median/means — the Theorem 3.1 analogue.
//!
//! Theorem 3.1 promises `sol(Z, k, (1+ε)t)` with cost at most
//! `max{6, 6/ε} · C_opt(Z, k, t)` in `O(|Z|²)` time, built from the
//! Lagrangian primal-dual machinery of \[17\] with the outlier handling of
//! \[4\]. We reproduce the same *interface and guarantee shape* with the
//! λ-penalty local search of [`crate::local_search`] plus a parametric
//! search on λ (see DESIGN.md §3 for the substitution rationale):
//!
//! * for a given λ, the search returns centers where every point pays
//!   `min(d, λ)` — points preferring the penalty are the implied outliers;
//! * λ is bisected until the implied outlier weight lands in
//!   `[0, (1+ε)t]`, keeping the best candidate (evaluated with the full
//!   `(1+ε)t` exclusion budget) seen anywhere along the search;
//! * the `λ = ∞` (no-outlier) solution is always included as a candidate,
//!   which guards degenerate instances where outliers are irrelevant.

use crate::local_search::{penalty_local_search, LocalSearchParams};
use crate::solution::Solution;
use dpc_metric::{Metric, Objective, WeightedSet};

/// Tuning for [`median_bicriteria`].
#[derive(Clone, Copy, Debug)]
pub struct BicriteriaParams {
    /// Outlier budget relaxation: the solution may exclude `(1+ε)t` weight.
    pub eps: f64,
    /// Bisection iterations on λ.
    pub lambda_iters: usize,
    /// Inner local-search parameters.
    pub ls: LocalSearchParams,
}

impl Default for BicriteriaParams {
    fn default() -> Self {
        Self {
            eps: 1.0,
            lambda_iters: 24,
            ls: LocalSearchParams::default(),
        }
    }
}

/// Computes `sol(Z, k, (1+ε)t)` for the median objective (pass a
/// [`dpc_metric::SquaredMetric`] and `Objective::Means` for means).
///
/// `t` is an outlier weight budget. The returned solution excludes at most
/// `(1+ε)t` weight (its `outliers`/`cost` come from a final evaluation with
/// that budget).
///
/// # Panics
/// Panics if `points` is empty or `k == 0` (with points present), or if
/// `eps < 0`.
pub fn median_bicriteria<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    t: f64,
    objective: Objective,
    params: BicriteriaParams,
) -> Solution {
    assert!(params.eps >= 0.0, "eps must be non-negative");
    if points.is_empty() {
        return Solution {
            centers: Vec::new(),
            cost: 0.0,
            outliers: Vec::new(),
            assignment: Vec::new(),
        };
    }
    let budget = (1.0 + params.eps) * t;

    // Candidate 1: ignore the outlier structure entirely (λ = ∞), then let
    // the evaluation discard the worst (1+ε)t weight.
    let plain = penalty_local_search(metric, points, k, f64::INFINITY, params.ls);
    let mut best = Solution::evaluate(metric, points, plain.centers.clone(), budget, objective);

    if t <= 0.0 {
        return best;
    }

    // λ range: [0, upper] where upper is the max assignment distance of the
    // plain solution (λ beyond that implies no outliers at all).
    let ids = points.ids();
    let mut upper = 0.0f64;
    for &id in ids {
        let d = plain
            .centers
            .iter()
            .map(|&c| metric.dist(id, c))
            .fold(f64::INFINITY, f64::min);
        upper = upper.max(d);
    }
    if upper == 0.0 {
        return best;
    }

    // Geometric (log-space) bisection: assignment distances can span many
    // orders of magnitude (squared metrics especially), and the useful λ
    // scale is unknown a priori; halving in log-space reaches any scale in
    // O(log log(Δ)) steps instead of O(log Δ).
    let mut lo = upper * 1e-12;
    for &id in ids {
        let d = plain
            .centers
            .iter()
            .map(|&c| metric.dist(id, c))
            .fold(f64::INFINITY, f64::min);
        if d > 0.0 && d < lo {
            lo = d;
        }
    }
    let mut hi = upper;
    for it in 0..params.lambda_iters {
        let lambda = (lo * hi).sqrt();
        let mut ls = params.ls;
        ls.seed = ls.seed.wrapping_add(it as u64 + 1); // decorrelate restarts
        let cand = penalty_local_search(metric, points, k, lambda, ls);
        let implied_outlier_weight: f64 = cand.outliers.iter().map(|&(_, w)| w).sum();
        let evaluated = Solution::evaluate(metric, points, cand.centers.clone(), budget, objective);
        if evaluated.cost < best.cost
            || (evaluated.cost == best.cost && evaluated.outlier_weight() < best.outlier_weight())
        {
            best = evaluated;
        }
        if implied_outlier_weight > budget {
            // Too many points prefer the penalty: λ too small.
            lo = lambda;
        } else {
            hi = lambda;
        }
        if hi / lo <= 1.0 + 1e-9 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_metric::{median_cost, EuclideanMetric, PointSet, SquaredMetric};

    /// Two tight clumps plus `t` far-flung noise points.
    fn noisy_instance() -> (PointSet, usize) {
        let mut rows = Vec::new();
        for i in 0..15 {
            rows.push(vec![(i % 5) as f64 * 0.05, 0.0]);
        }
        for i in 0..15 {
            rows.push(vec![100.0 + (i % 5) as f64 * 0.05, 0.0]);
        }
        // 3 planted outliers
        rows.push(vec![1e4, 0.0]);
        rows.push(vec![-2e4, 0.0]);
        rows.push(vec![3e4, 3e4]);
        (PointSet::from_rows(&rows), 3)
    }

    #[test]
    fn excludes_planted_outliers() {
        let (ps, t) = noisy_instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let sol = median_bicriteria(
            &m,
            &w,
            2,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        // With the planted outliers removed, two centers cover the clumps
        // at tiny cost; any solution paying for an outlier costs >= 1e4.
        assert!(sol.cost < 50.0, "cost {}", sol.cost);
        assert!(sol.outlier_weight() <= 2.0 * t as f64 + 1e-9);
        let excluded: Vec<usize> = sol.outlier_positions();
        for planted in [30usize, 31, 32] {
            assert!(
                excluded.contains(&planted),
                "planted outlier {planted} kept"
            );
        }
    }

    #[test]
    fn budget_respected() {
        let (ps, t) = noisy_instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let p = BicriteriaParams {
            eps: 0.5,
            ..Default::default()
        };
        let sol = median_bicriteria(&m, &w, 2, t as f64, Objective::Median, p);
        assert!(sol.outlier_weight() <= 1.5 * t as f64 + 1e-9);
    }

    #[test]
    fn t_zero_reduces_to_plain_kmedian() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(4);
        let sol = median_bicriteria(
            &m,
            &w,
            2,
            0.0,
            Objective::Median,
            BicriteriaParams::default(),
        );
        assert!(sol.outliers.is_empty());
        assert!(sol.cost <= 2.0 + 1e-9);
    }

    #[test]
    fn constant_factor_vs_bruteforce() {
        let (ps, t) = noisy_instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let sol = median_bicriteria(
            &m,
            &w,
            2,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        // Brute-force the optimum over all 2-subsets with exactly t outliers.
        let n = ps.len();
        let mut opt = f64::INFINITY;
        for a in 0..n {
            for b in 0..a {
                opt = opt.min(median_cost(&m, &[a, b], t));
            }
        }
        // Theorem 3.1 bound with eps=1 is 6·opt; we check it holds (opt is
        // tiny but nonzero because clump points are spread).
        assert!(
            sol.cost <= 6.0 * opt + 1e-6,
            "sol {} vs opt {}",
            sol.cost,
            opt
        );
    }

    #[test]
    fn means_objective_squares() {
        let (ps, t) = noisy_instance();
        let sq = SquaredMetric::new(EuclideanMetric::new(&ps));
        let w = WeightedSet::unit(ps.len());
        // NOTE: with a squared metric the evaluation objective must be
        // Median (the metric already squares); this mirrors how the solvers
        // are invoked by the distributed layer.
        let sol = median_bicriteria(
            &sq,
            &w,
            2,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        assert!(sol.cost < 100.0, "means cost {}", sol.cost);
    }

    #[test]
    fn weighted_instance_fractional_budget() {
        // One heavy far point (w=4) and budget 2: can only be partially
        // excluded; cost must include the remaining 2 units.
        let ps = PointSet::from_rows(&[vec![0.0], vec![0.5], vec![1000.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::from_parts(vec![0, 1, 2], vec![1.0, 1.0, 4.0]);
        let p = BicriteriaParams {
            eps: 0.0,
            ..Default::default()
        };
        let sol = median_bicriteria(&m, &w, 1, 2.0, Objective::Median, p);
        assert!(sol.outlier_weight() <= 2.0 + 1e-9);
        // Either the center sits on the heavy point (cost ~ small) or 2
        // units of it remain charged; both are valid constant-factor
        // outcomes — just assert evaluation consistency.
        assert!(sol.cost.is_finite());
    }
}

/// The second form of Theorem 3.1: `sol(Z, (1+ε)k, t)` — relax the number
/// of *centers* instead of the outliers, excluding exactly `t` weight.
///
/// Used for Table 2's `(1+ε)k, t` rows, where the output must name exactly
/// `t` outliers but may open up to `⌈(1+ε)k⌉` centers. Internally this is
/// the same λ-penalty machinery with the enlarged center budget; the final
/// evaluation uses the *exact* outlier budget `t`.
pub fn median_bicriteria_relaxed_centers<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    t: f64,
    objective: Objective,
    params: BicriteriaParams,
) -> Solution {
    assert!(params.eps >= 0.0, "eps must be non-negative");
    if points.is_empty() {
        return Solution {
            centers: Vec::new(),
            cost: 0.0,
            outliers: Vec::new(),
            assignment: Vec::new(),
        };
    }
    let k_relaxed = (((1.0 + params.eps) * k as f64).ceil() as usize).max(k);
    let inner = BicriteriaParams { eps: 0.0, ..params };
    // Solve with the enlarged center budget and an exact outlier budget.
    median_bicriteria(metric, points, k_relaxed, t, objective, inner)
}

#[cfg(test)]
mod relaxed_center_tests {
    use super::*;
    use dpc_metric::{EuclideanMetric, PointSet};

    fn instance() -> PointSet {
        let mut rows = Vec::new();
        for c in [0.0, 50.0, 120.0] {
            for i in 0..8 {
                rows.push(vec![c + 0.1 * i as f64]);
            }
        }
        rows.push(vec![9e3]);
        rows.push(vec![-6e3]);
        PointSet::from_rows(&rows)
    }

    #[test]
    fn exact_outlier_budget_respected() {
        let ps = instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let p = BicriteriaParams {
            eps: 0.5,
            ..Default::default()
        };
        let sol = median_bicriteria_relaxed_centers(&m, &w, 2, 2.0, Objective::Median, p);
        assert!(
            sol.outlier_weight() <= 2.0 + 1e-9,
            "must exclude at most exactly t"
        );
        // (1+0.5)*2 = 3 centers allowed: all three clumps can be covered.
        assert!(sol.centers.len() <= 3);
        assert!(sol.cost < 10.0, "cost {}", sol.cost);
    }

    #[test]
    fn beats_unrelaxed_when_k_too_small() {
        let ps = instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let tight = median_bicriteria(
            &m,
            &w,
            2,
            2.0,
            Objective::Median,
            BicriteriaParams {
                eps: 0.0,
                ..Default::default()
            },
        );
        let relaxed = median_bicriteria_relaxed_centers(
            &m,
            &w,
            2,
            2.0,
            Objective::Median,
            BicriteriaParams {
                eps: 0.5,
                ..Default::default()
            },
        );
        // Extra centers can only help (3 clumps, k=2 must merge two).
        assert!(
            relaxed.cost <= tight.cost + 1e-9,
            "relaxed {} > tight {}",
            relaxed.cost,
            tight.cost
        );
    }

    #[test]
    fn eps_zero_is_identity() {
        let ps = instance();
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(ps.len());
        let p = BicriteriaParams {
            eps: 0.0,
            ..Default::default()
        };
        let a = median_bicriteria_relaxed_centers(&m, &w, 2, 1.0, Objective::Median, p);
        let b = median_bicriteria(&m, &w, 2, 1.0, Objective::Median, p);
        assert_eq!(a.centers, b.centers);
    }
}
