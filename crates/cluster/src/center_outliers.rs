//! `(k,t)`-center with outliers — the Charikar et al. \[4\] greedy-disk
//! algorithm, generalized to weighted points.
//!
//! For a guessed radius `r`, the greedy step repeatedly picks the disk of
//! radius `r` covering the most uncovered weight and then removes everything
//! within the expanded radius `3r`; if after `k` picks at most `t` weight is
//! uncovered, radius `r` is feasible and the returned solution costs at most
//! `3r`. The smallest feasible `r` is found by bisection on the distance
//! value range, giving the classic 3-approximation (the paper invokes this
//! as "the algorithm in \[4\] for the k-center problem with exactly t
//! outliers" at the coordinator, Algorithm 2 line 7).
//!
//! Runtime: `O(k n²)` per radius probe, `O(k n² log(Δ/η))` overall — run on
//! coordinator-sized inputs (`O(sk + t)` points), exactly as Table 1 charges.

use crate::solution::Solution;
use dpc_metric::{Metric, NearestAssigner, Objective, ThreadBudget, WeightedSet};

/// Tuning for [`charikar_center`].
#[derive(Clone, Copy, Debug)]
pub struct CenterParams {
    /// Expansion factor applied when removing covered points (3 in \[4\];
    /// raising it trades cost for fewer uncovered points).
    pub expansion: f64,
    /// Bisection iterations over the radius value range.
    pub radius_iters: usize,
    /// Thread budget for the per-radius disk-gain scans (wall-clock only
    /// — identical centers and costs at any budget).
    pub threads: ThreadBudget,
}

impl Default for CenterParams {
    fn default() -> Self {
        Self {
            expansion: 3.0,
            radius_iters: 48,
            threads: ThreadBudget::serial(),
        }
    }
}

/// Runs the weighted greedy-disk algorithm for `(k, t)`-center.
///
/// `t` is an outlier *weight* budget. Returns the best solution found; its
/// `outliers` / `cost` fields come from re-evaluating the chosen centers
/// with budget `t` (so partially excluded aggregated points are handled per
/// Remark 1 of the paper).
///
/// # Panics
/// Panics if `k == 0` while points are present.
pub fn charikar_center<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    t: f64,
    params: CenterParams,
) -> Solution {
    if points.is_empty() {
        return Solution {
            centers: Vec::new(),
            cost: 0.0,
            outliers: Vec::new(),
            assignment: Vec::new(),
        };
    }
    assert!(k > 0, "need at least one center");
    let ids = points.ids();
    let n = ids.len();
    let assigner = NearestAssigner::with_threads(metric, params.threads);

    // Radius value range: [0, max pairwise distance among entries], one
    // bulk row per anchor.
    let mut hi = 0.0f64;
    let mut row = Vec::with_capacity(n);
    for a in 1..n {
        assigner.dists_from(ids[a], &ids[..a], &mut row);
        for &d in &row {
            hi = hi.max(d);
        }
    }
    if hi == 0.0 {
        // All points coincide: any single center is optimal.
        return Solution::evaluate(metric, points, vec![ids[0]], t, Objective::Center);
    }

    let feasible = |r: f64| -> Option<Vec<usize>> {
        let (centers, uncovered) =
            greedy_disks(metric, points, k, r, params.expansion, params.threads);
        if uncovered <= t + 1e-9 {
            Some(centers)
        } else {
            None
        }
    };

    // hi is always feasible (one disk of radius d_max covers everything).
    let mut lo = 0.0f64;
    let mut hi_r = hi;
    let mut best_centers = feasible(hi).expect("max radius must be feasible");
    for _ in 0..params.radius_iters {
        let mid = 0.5 * (lo + hi_r);
        match feasible(mid) {
            Some(c) => {
                best_centers = c;
                hi_r = mid;
            }
            None => lo = mid,
        }
        if hi_r - lo <= 1e-12 * hi {
            break;
        }
    }
    Solution::evaluate(metric, points, best_centers, t, Objective::Center)
}

/// One greedy pass at radius `r`: returns chosen centers and uncovered
/// weight.
fn greedy_disks<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    r: f64,
    expansion: f64,
    threads: ThreadBudget,
) -> (Vec<usize>, f64) {
    let ids = points.ids();
    let weights = points.weights();
    let n = ids.len();
    let mut covered = vec![false; n];
    let mut centers = Vec::with_capacity(k);
    let assigner = NearestAssigner::new(metric);
    let mut row = Vec::with_capacity(n);

    for _ in 0..k {
        // Pick the disk center covering the most uncovered weight.
        let (best_idx, best_gain) = best_disk(metric, ids, weights, &covered, r, threads);
        if best_idx == usize::MAX || best_gain <= 0.0 {
            // Nothing with positive weight left to cover; place remaining
            // centers on any uncovered entry (harmless) or stop.
            if let Some(e) = (0..n).find(|&e| !covered[e]) {
                centers.push(ids[e]);
                covered[e] = true;
                continue;
            }
            break;
        }
        centers.push(ids[best_idx]);
        let er = expansion * r;
        assigner.dists_from(ids[best_idx], ids, &mut row);
        for (c, &d) in covered.iter_mut().zip(&row) {
            if !*c && d <= er {
                *c = true;
            }
        }
    }

    let uncovered: f64 = covered
        .iter()
        .zip(weights)
        .filter(|(&c, _)| !c)
        .map(|(_, &w)| w)
        .sum();
    (centers, uncovered)
}

/// The candidate with the largest uncovered weight inside radius `r`
/// (first candidate wins ties, like the sequential scan). Candidates are
/// scored with one bulk distance row each; chunks of candidates fan out
/// across the thread budget and chunk winners combine in candidate order,
/// so the result is identical at any budget.
fn best_disk<M: Metric>(
    metric: &M,
    ids: &[usize],
    weights: &[f64],
    covered: &[bool],
    r: f64,
    threads: ThreadBudget,
) -> (usize, f64) {
    let n = ids.len();
    let gain_scan = |range: std::ops::Range<usize>| -> (usize, f64) {
        let assigner = NearestAssigner::new(metric);
        let mut row = Vec::with_capacity(n);
        let mut best = (usize::MAX, -1.0f64);
        for c in range {
            assigner.dists_from(ids[c], ids, &mut row);
            let mut gain = 0.0;
            for ((&cov, &d), &w) in covered.iter().zip(&row).zip(weights) {
                if !cov && d <= r {
                    gain += w;
                }
            }
            if gain > best.1 {
                best = (c, gain);
            }
        }
        best
    };
    let nthreads = threads.get().min(n).max(1);
    if nthreads <= 1 {
        return gain_scan(0..n);
    }
    let chunk = n.div_ceil(nthreads);
    let gain_scan = &gain_scan;
    let chunk_bests: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|lo| scope.spawn(move || gain_scan(lo..(lo + chunk).min(n))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut best = (usize::MAX, -1.0f64);
    for (idx, gain) in chunk_bests {
        if gain > best.1 {
            best = (idx, gain);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_metric::{center_cost, EuclideanMetric, PointSet};

    #[test]
    fn two_clusters_one_outlier() {
        let ps = PointSet::from_rows(&[
            vec![0.0],
            vec![0.5],
            vec![1.0],
            vec![10.0],
            vec![10.5],
            vec![11.0],
            vec![100.0], // outlier
        ]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(7);
        let sol = charikar_center(&m, &w, 2, 1.0, CenterParams::default());
        // optimal cost with 2 centers ignoring the outlier is 0.5;
        // 3-approximation allows up to 1.5.
        assert!(sol.cost <= 1.5 + 1e-9, "cost {}", sol.cost);
        assert!(sol.outlier_weight() <= 1.0 + 1e-9);
    }

    #[test]
    fn outlier_budget_zero_covers_all() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![4.0], vec![8.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(3);
        let sol = charikar_center(&m, &w, 1, 0.0, CenterParams::default());
        // single center must cover everything: optimal 4 (center at 4),
        // 3-approx bound 12.
        assert!(sol.cost <= 12.0 + 1e-9);
        assert!(sol.cost >= 4.0 - 1e-9);
    }

    #[test]
    fn weighted_outliers_prefer_light_points() {
        // A heavy far clump cannot be discarded with budget 1, but a light
        // singleton can.
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![50.0], vec![200.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::from_parts(vec![0, 1, 2, 3], vec![1.0, 1.0, 5.0, 1.0]);
        let sol = charikar_center(&m, &w, 2, 1.0, CenterParams::default());
        // Must keep the weight-5 point covered: centers near {0/1} and {50},
        // discarding the 200 singleton -> small cost.
        assert!(sol.cost <= 3.0 + 1e-9, "cost {}", sol.cost);
    }

    #[test]
    fn coincident_points_zero_cost() {
        let ps = PointSet::from_rows(&[vec![2.0], vec![2.0], vec![2.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(3);
        let sol = charikar_center(&m, &w, 1, 0.0, CenterParams::default());
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::from_rows(&[vec![0.0]]);
        let m = EuclideanMetric::new(&ps);
        let sol = charikar_center(&m, &WeightedSet::new(), 3, 0.0, CenterParams::default());
        assert!(sol.centers.is_empty());
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn three_approximation_vs_bruteforce() {
        // Small random-ish instance; compare to exact (k=2, t=1).
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![((i * 31) % 17) as f64, ((i * 7) % 13) as f64])
            .collect();
        let ps = PointSet::from_rows(&rows);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(12);
        let sol = charikar_center(&m, &w, 2, 1.0, CenterParams::default());
        let mut opt = f64::INFINITY;
        for a in 0..12 {
            for b in 0..a {
                opt = opt.min(center_cost(&m, &[a, b], 1));
            }
        }
        assert!(
            sol.cost <= 3.0 * opt + 1e-9,
            "sol {} vs opt {}",
            sol.cost,
            opt
        );
    }
}
