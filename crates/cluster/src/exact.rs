//! Brute-force optimal solvers for small instances.
//!
//! These are the *test oracles*: every approximation-ratio claim in the
//! workspace is validated against `exact_best` on instances small enough to
//! enumerate all `C(n, k)` center subsets.

use dpc_metric::{cost_excluding_outliers, Metric, Objective, WeightedSet};

/// An exact optimum over enumerated center subsets.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// Optimal centers (ids into the metric space).
    pub centers: Vec<usize>,
    /// Optimal cost (`C_opt(Z, k, t, d)`).
    pub cost: f64,
}

/// Enumerates all `k`-subsets of the weighted set's ids as centers and
/// returns the minimum `(k,t)` objective.
///
/// # Panics
/// Panics if the number of subsets exceeds `max_subsets` (guards against
/// accidental exponential blow-ups in tests), if `points` is empty, or if
/// `k == 0`.
pub fn exact_best<M: Metric>(
    metric: &M,
    points: &WeightedSet,
    k: usize,
    t: f64,
    objective: Objective,
    max_subsets: u64,
) -> ExactSolution {
    assert!(!points.is_empty(), "exact solver requires points");
    assert!(k > 0, "need at least one center");
    // Candidate centers: distinct ids.
    let mut cands: Vec<usize> = points.ids().to_vec();
    cands.sort_unstable();
    cands.dedup();
    let n = cands.len();
    let k = k.min(n);

    let total = binomial(n as u64, k as u64);
    assert!(
        total <= max_subsets,
        "C({n},{k}) = {total} exceeds the {max_subsets}-subset guard"
    );

    let mut best_cost = f64::INFINITY;
    let mut best_centers = Vec::new();
    let mut subset: Vec<usize> = (0..k).collect();
    loop {
        let centers: Vec<usize> = subset.iter().map(|&i| cands[i]).collect();
        let c = cost_excluding_outliers(metric, points, &centers, t, objective).cost;
        if c < best_cost {
            best_cost = c;
            best_centers = centers;
        }
        // Next combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return ExactSolution {
                    centers: best_centers,
                    cost: best_cost,
                };
            }
            i -= 1;
            if subset[i] != i + n - k {
                break;
            }
        }
        subset[i] += 1;
        for j in i + 1..k {
            subset[j] = subset[j - 1] + 1;
        }
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_metric::{EuclideanMetric, PointSet};

    #[test]
    fn exact_two_clusters() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(4);
        let sol = exact_best(&m, &w, 2, 0.0, Objective::Median, 1_000);
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn exact_with_outlier() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(3);
        let sol = exact_best(&m, &w, 1, 1.0, Objective::Median, 1_000);
        assert_eq!(sol.cost, 1.0); // center at 0 or 1, exclude 100
    }

    #[test]
    fn center_objective() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![4.0], vec![8.0]]);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(3);
        let sol = exact_best(&m, &w, 1, 0.0, Objective::Center, 1_000);
        assert_eq!(sol.cost, 4.0);
        assert_eq!(sol.centers, vec![1]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn guard_trips() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ps = PointSet::from_rows(&rows);
        let m = EuclideanMetric::new(&ps);
        let w = WeightedSet::unit(30);
        let _ = exact_best(&m, &w, 10, 0.0, Objective::Median, 100);
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
    }
}
