//! `dpc` — distributed partial clustering on CSV data from the command
//! line. See `dpc --help` (or [`dpc_cli::args::USAGE`]).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match dpc_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // Typed validation before any data is read: hard ConfigErrors (e.g.
    // `stream --eps 0`) abort here; structured no-effect warnings go to
    // stderr so JSON output stays clean.
    let warnings = match dpc_cli::preflight(&opts) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for w in warnings {
        eprintln!("warning: {w}");
    }
    // Rows stream through a buffered reader; the file is never held in
    // memory whole. `blobs:` specs generate their workload in-process and
    // read nothing.
    let reader: Box<dyn std::io::BufRead> = if dpc_cli::is_synthetic_input(&opts.input) {
        Box::new(std::io::empty())
    } else {
        match std::fs::File::open(&opts.input) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("cannot read '{}': {e}", opts.input);
                return ExitCode::from(1);
            }
        }
    };
    if opts.command == dpc_cli::Command::Sweep {
        return match dpc_cli::execute_sweep(&opts, reader) {
            Ok(artifacts) => {
                if opts.json {
                    println!("{}", dpc::api::json_table(&artifacts));
                } else {
                    print!("{}", dpc::api::csv_table(&artifacts));
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    match dpc_cli::execute(&opts, reader) {
        Ok(artifact) => {
            if opts.json {
                println!("{}", artifact.to_json());
            } else {
                print!("{}", artifact.text());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
