//! `dpc` — distributed partial clustering on CSV data from the command
//! line. See `dpc --help` (or [`dpc_cli::args::USAGE`]).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match dpc_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // Non-fatal footguns (e.g. `stream --eps 0`, transport flags on
    // centralized commands) go to stderr so JSON output stays clean.
    for w in opts.warnings() {
        eprintln!("warning: {w}");
    }
    // Rows stream through a buffered reader; the file is never held in
    // memory whole.
    let file = match std::fs::File::open(&opts.input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read '{}': {e}", opts.input);
            return ExitCode::from(1);
        }
    };
    match dpc_cli::execute(&opts, std::io::BufReader::new(file)) {
        Ok(report) => {
            if opts.json {
                println!("{}", report.json());
            } else {
                print!("{}", report.text());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
